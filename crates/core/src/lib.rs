//! # lsm-core
//!
//! A from-scratch LSM-tree storage engine in which every design dimension
//! the tutorial surveys is a first-class configuration axis ([`LsmConfig`]):
//! merge policy (leveling / tiering / lazy-leveling / hybrid per-level run
//! caps), size ratio, compaction granularity and file-picking policy,
//! point-filter family and memory allocation (uniform vs Monkey), range
//! filters, block index family (fence pointers / sparse / learned), block
//! cache policy with post-compaction prefetching, and WiscKey-style
//! key-value separation.
//!
//! Design notes:
//!
//! - **Two maintenance modes.** In [`config::BackgroundMode::Inline`]
//!   (the default) flushes and compactions run inline with the write that
//!   triggers them, so experiments are deterministic and I/O attribution
//!   is exact. [`config::BackgroundMode::Threaded`] moves them to a
//!   background worker pool ([`background`]): a full memtable is frozen
//!   into an immutable slot, readers snapshot the copy-on-write version
//!   and never block on maintenance, and writers block only on L0
//!   backpressure. The costs are identical, only the interleaving
//!   differs.
//! - **I/O accounting.** Every storage access is charged to the shared
//!   [`lsm_storage::IoStats`] with a category (data/filter/index/WAL),
//!   which is what the experiment suite reports.
//! - **Immutability.** Sorted runs are immutable SSTables; versions are
//!   copy-on-write snapshots, so scans see a consistent view while
//!   compactions replace files underneath.
//!
//! ## Example
//!
//! ```
//! use lsm_core::{Db, LsmConfig};
//!
//! let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
//! for i in 0..100u32 {
//!     db.put(format!("key{i:04}").into_bytes(), vec![i as u8]).unwrap();
//! }
//! assert_eq!(db.get(b"key0042").unwrap(), Some(vec![42]));
//! let scan = db.scan(b"key0010".to_vec()..b"key0015".to_vec(), 100).unwrap();
//! assert_eq!(scan.len(), 5);
//! ```

// The hot paths run on borrowed views; a stray `.to_owned()`/`.to_vec()`
// where a borrow suffices is exactly the regression the zero-copy work
// removed, so it is a hard error here.
#![deny(clippy::unnecessary_to_owned)]

pub mod background;
pub mod compaction;
pub mod config;
pub mod db;
pub mod dynamic;
pub mod entry;
pub mod iter;
pub mod kv_sep;
pub mod manifest;
pub mod memtable;
pub mod obs;
pub mod partitioned;
pub mod snapshot;
pub mod sstable;
pub mod stats;
pub mod txn;
pub mod version;
pub mod wal;

pub use config::{
    BackgroundMode, CompactionGranularity, FilePicker, FilterAllocation, LsmConfig, MergeLayout,
};
pub use db::{Db, DbCore, DbIterator, WriteBatch};
pub use dynamic::{DynamicConfig, DynamicSnapshot, DynamicUpdate};
pub use partitioned::PartitionedDb;
pub use snapshot::Snapshot;
pub use txn::{commit_parts, Conflict, Txn, TxnError, TxnPart};
pub use entry::{InternalEntry, ValueKind};
pub use stats::DbStats;
pub use version::{SortedRun, Version};

// Re-export the configuration enums that come from substrate crates, so
// users configure everything through `lsm_core`.
pub use lsm_cache::CachePolicy;
// Observability types surfaced by `Db::metrics()` / `Db::drain_events()`.
pub use lsm_obs::{
    Event, EventKind, HistogramSnapshot, MetricsSnapshot, StallReason,
};
pub use lsm_filters::{FilterKind, RangeFilterKind};
pub use lsm_index::IndexKind;
