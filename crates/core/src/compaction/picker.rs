//! File-picking policies for partial compaction (tutorial Module I.2:
//! "the design decision on which file(s) to compact affects ingestion
//! performance" — Sarkar et al.'s data-movement-policy primitive).

use crate::config::FilePicker;
use crate::version::SortedRun;

/// Picks the index of the table in `run` that the next partial compaction
/// should move into `next_run`.
///
/// * `RoundRobin` rotates `cursor` through the run (LevelDB's key cursor).
/// * `MinOverlap` minimizes bytes of `next_run` that must be rewritten.
/// * `Coldest` picks the least-recently-accessed table.
/// * `Oldest` picks the smallest table id (oldest data first).
/// * `MostTombstones` picks the most tombstone-dense table (Lethe-style
///   delete-aware compaction: deletes reach the last level sooner, so
///   tombstone GC reclaims their space earlier).
pub fn pick_file(
    picker: FilePicker,
    run: &SortedRun,
    next_run: Option<&SortedRun>,
    cursor: &mut usize,
) -> usize {
    debug_assert!(!run.tables.is_empty());
    match picker {
        FilePicker::RoundRobin => {
            let idx = *cursor % run.tables.len();
            *cursor = cursor.wrapping_add(1);
            idx
        }
        FilePicker::MinOverlap => (0..run.tables.len())
            .min_by_key(|&i| {
                let t = &run.tables[i];
                match next_run {
                    None => 0,
                    Some(next) => next
                        .overlapping(&t.meta().min_key, &t.meta().max_key)
                        .iter()
                        .map(|o| o.data_bytes())
                        .sum::<u64>(),
                }
            })
            .unwrap_or(0),
        FilePicker::Coldest => (0..run.tables.len())
            .min_by_key(|&i| run.tables[i].accesses())
            .unwrap_or(0),
        FilePicker::Oldest => (0..run.tables.len())
            .min_by_key(|&i| run.tables[i].id())
            .unwrap_or(0),
        FilePicker::MostTombstones => (0..run.tables.len())
            .max_by_key(|&i| {
                let m = run.tables[i].meta();
                // tombstone density in parts-per-million, tie-broken by age
                let density = m.num_tombstones * 1_000_000 / m.num_entries.max(1);
                (density, u64::MAX - run.tables[i].id())
            })
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsmConfig;
    use crate::entry::ValueKind;
    use crate::sstable::{Table, TableBuilder};
    use lsm_index::IndexKind;
    use lsm_storage::{DeviceProfile, MemDevice, StorageDevice};
    use std::sync::Arc;

    /// Tables share one device so ids are ordered by creation.
    fn tables_on(dev: &Arc<MemDevice>, ranges: &[std::ops::Range<usize>]) -> Vec<Arc<Table>> {
        let cfg = LsmConfig {
            block_size: 512,
            ..LsmConfig::small_for_tests()
        };
        ranges
            .iter()
            .map(|r| {
                let dyn_dev: Arc<dyn StorageDevice> = dev.clone();
                let mut b = TableBuilder::new(dyn_dev, &cfg, 10.0).unwrap();
                for i in r.clone() {
                    b.add(format!("key{i:06}").as_bytes(), i as u64, ValueKind::Put, &[0u8; 32])
                        .unwrap();
                }
                let (f, _) = b.finish().unwrap();
                Table::open(f, IndexKind::Fence).unwrap()
            })
            .collect()
    }

    fn dev() -> Arc<MemDevice> {
        Arc::new(MemDevice::new(512, DeviceProfile::free()))
    }

    #[test]
    fn round_robin_rotates() {
        let d = dev();
        let run = SortedRun::from_tables(tables_on(&d, &[0..10, 20..30, 40..50]));
        let mut cursor = 0;
        let picks: Vec<usize> = (0..6)
            .map(|_| pick_file(FilePicker::RoundRobin, &run, None, &mut cursor))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn min_overlap_prefers_gap_files() {
        let d = dev();
        let run = SortedRun::from_tables(tables_on(&d, &[0..100, 200..300]));
        // next level covers only keys 0..100 heavily
        let next = SortedRun::from_tables(tables_on(&d, std::slice::from_ref(&(0..150))));
        let mut cursor = 0;
        let pick = pick_file(FilePicker::MinOverlap, &run, Some(&next), &mut cursor);
        assert_eq!(pick, 1, "file 200..300 has zero overlap");
    }

    #[test]
    fn min_overlap_without_next_run_picks_first() {
        let d = dev();
        let run = SortedRun::from_tables(tables_on(&d, &[0..10, 20..30]));
        let mut cursor = 0;
        assert_eq!(pick_file(FilePicker::MinOverlap, &run, None, &mut cursor), 0);
    }

    #[test]
    fn coldest_picks_least_accessed() {
        let d = dev();
        let run = SortedRun::from_tables(tables_on(&d, &[0..10, 20..30, 40..50]));
        // heat tables 0 and 2
        run.tables[0].get(b"key000001", None).unwrap();
        run.tables[2].get(b"key000041", None).unwrap();
        run.tables[2].get(b"key000042", None).unwrap();
        let mut cursor = 0;
        assert_eq!(pick_file(FilePicker::Coldest, &run, None, &mut cursor), 1);
    }

    #[test]
    fn most_tombstones_picks_delete_dense_file() {
        let d = dev();
        let cfg = LsmConfig {
            block_size: 512,
            ..LsmConfig::small_for_tests()
        };
        // one ordinary table, one tombstone-dense table
        let mk = |range: std::ops::Range<usize>, tombstones: bool| {
            let dyn_dev: Arc<dyn StorageDevice> = d.clone();
            let mut b = TableBuilder::new(dyn_dev, &cfg, 10.0).unwrap();
            for i in range {
                let kind = if tombstones && i % 2 == 0 {
                    ValueKind::Delete
                } else {
                    ValueKind::Put
                };
                b.add(format!("key{i:06}").as_bytes(), i as u64, kind, &[0u8; 16])
                    .unwrap();
            }
            let (f, _) = b.finish().unwrap();
            Table::open(f, IndexKind::Fence).unwrap()
        };
        let run = SortedRun::from_tables(vec![mk(0..50, false), mk(100..150, true)]);
        let mut cursor = 0;
        assert_eq!(
            pick_file(FilePicker::MostTombstones, &run, None, &mut cursor),
            1
        );
    }

    #[test]
    fn oldest_picks_lowest_id() {
        let d = dev();
        let run = SortedRun::from_tables(tables_on(&d, &[0..10, 20..30]));
        let mut cursor = 0;
        let pick = pick_file(FilePicker::Oldest, &run, None, &mut cursor);
        assert_eq!(run.tables[pick].id(), run.tables.iter().map(|t| t.id()).min().unwrap());
    }
}
