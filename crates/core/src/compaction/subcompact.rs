//! Key-range sub-compactions: one merge job split into shards that can
//! fan out across the background worker pool (Sarkar et al.'s *degree of
//! parallelism* axis of the compaction design space).
//!
//! ## Determinism by construction
//!
//! The headline guarantee is that the sharded path produces **byte
//! identical** output tables (and therefore an identical manifest) to the
//! serial [`merge_tables`](super::exec::merge_tables) path, for any shard
//! count and any boundary choice. That falls out of the phase split:
//!
//! 1. **Shard phase (parallel).** Each shard merges its key range
//!    `[lo, hi)` of the inputs into an in-memory entry vector, with
//!    per-shard conserved accounting (`entries_in = written +
//!    tombstones_dropped + versions_dropped`). Shards touch disjoint key
//!    ranges, so their outputs concatenate into exactly the entry stream
//!    the serial merge would have produced.
//! 2. **Stitch phase (serial).** The concatenated stream is fed through
//!    the same [`OutputWriter`](super::exec::OutputWriter) cut loop the
//!    serial path uses, so output tables are cut at the same entries and
//!    files are allocated in the same order.
//!
//! Parallelism therefore accelerates the read/merge/GC phase (the bulk of
//! compaction work) while file layout stays bit-for-bit reproducible.
//!
//! Boundaries come from the input tables' index blocks
//! ([`shard_boundaries`]): fence keys are weighted by their block's entry
//! count, so shards receive balanced entry counts even when input tables
//! are skewed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use lsm_index::IndexKind;
use lsm_storage::{StorageDevice, StorageError, StorageResult};

use super::exec::{MergeResult, OutputWriter};
use crate::config::LsmConfig;
use crate::entry::InternalEntry;
use crate::iter::{BoundedTableIter, MergingIter, Source};
use crate::sstable::Table;

/// One shard's merged output: the visible entries of its key range plus
/// the accounting needed to prove conservation.
pub struct ShardMerge {
    /// Visible entries (newest version per key, tombstones GC'd when
    /// allowed), in ascending key order.
    pub entries: Vec<InternalEntry>,
    /// Input entries the shard consumed (every version, every source).
    pub entries_in: u64,
    /// Tombstones garbage-collected by this shard.
    pub tombstones_dropped: u64,
}

impl ShardMerge {
    /// Shadowed versions dropped: the conservation residue
    /// `entries_in - written - tombstones_dropped`.
    pub fn versions_dropped(&self) -> u64 {
        self.entries_in
            .saturating_sub(self.entries.len() as u64)
            .saturating_sub(self.tombstones_dropped)
    }
}

/// Per-shard accounting retained after the stitch consumed the entries.
#[derive(Clone, Copy, Debug)]
pub struct ShardAccounting {
    /// Input entries the shard consumed.
    pub entries_in: u64,
    /// Visible entries the shard contributed to the output.
    pub entries_written: u64,
    /// Tombstones the shard garbage-collected.
    pub tombstones_dropped: u64,
    /// Shadowed versions the shard dropped.
    pub versions_dropped: u64,
}

/// A sharded merge's outcome: the (byte-identical-to-serial) merge result
/// plus per-shard accounting for the event trace.
pub struct ShardedMergeResult {
    /// The stitched outputs and aggregate accounting — field-for-field
    /// what serial [`merge_tables`](super::exec::merge_tables) returns.
    pub merge: MergeResult,
    /// Per-shard accounting, one entry per key-range shard in order.
    pub shards: Vec<ShardAccounting>,
}

/// Picks up to `max_shards - 1` boundary keys from the input tables'
/// fence pointers (per-data-block last keys), weighted by each block's
/// approximate entry count so the resulting shards hold balanced entry
/// counts. Returned boundaries are strictly increasing; shard `i` covers
/// `[boundaries[i-1], boundaries[i])` with the first shard unbounded
/// below and the last unbounded above.
///
/// A boundary is the *successor* of a fence key (`fence ++ 0x00`), so a
/// fence's own block stays whole inside the left shard.
pub fn shard_boundaries(inputs: &[Arc<Table>], max_shards: usize) -> Vec<Vec<u8>> {
    if max_shards <= 1 {
        return Vec::new();
    }
    // candidate cut points: every block's last key, weighted by the
    // table's average entries per block (the index has no per-block count)
    let mut cands: Vec<(Vec<u8>, u64)> = Vec::new();
    for t in inputs {
        let m = t.meta();
        let blocks = m.fences.len().max(1) as u64;
        let weight = (m.num_entries / blocks).max(1);
        for fence in &m.fences {
            let mut key = fence.clone();
            key.push(0);
            cands.push((key, weight));
        }
    }
    cands.sort();
    let total: u64 = cands.iter().map(|(_, w)| w).sum();
    if total == 0 {
        return Vec::new();
    }
    let shards = max_shards as u64;
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut acc = 0u64;
    let mut next_cut = 1u64;
    for (key, w) in cands {
        acc += w;
        // cut after crossing each i/shards fraction of the total weight
        if next_cut < shards && acc * shards >= total * next_cut {
            if out.last() != Some(&key) {
                out.push(key);
            }
            while next_cut < shards && acc * shards >= total * next_cut {
                next_cut += 1;
            }
        }
    }
    // a trailing boundary at (or past) the global max key would only make
    // an empty shard; harmless, but trim it for tidiness
    if let Some(max_key) = inputs.iter().map(|t| t.meta().max_key.clone()).max() {
        while out.last().is_some_and(|b| b.as_slice() > max_key.as_slice()) {
            out.pop();
        }
    }
    out
}

/// Merges one key-range shard `[lo, hi)` of `inputs_young_first` into
/// memory, with the same youngest-wins / tombstone-GC semantics as the
/// serial merge (it reuses [`MergingIter`] verbatim).
pub fn merge_shard(
    inputs_young_first: &[Arc<Table>],
    lo: &[u8],
    hi: Option<&[u8]>,
    drop_tombstones: bool,
) -> StorageResult<ShardMerge> {
    let pulled = Arc::new(AtomicU64::new(0));
    let mut sources = Vec::new();
    for t in inputs_young_first {
        let m = t.meta();
        // skip tables entirely outside the shard range (no I/O at all);
        // relative youngest-first order of the rest is preserved
        if m.max_key.as_slice() < lo {
            continue;
        }
        if let Some(hi) = hi {
            if m.min_key.as_slice() >= hi {
                continue;
            }
        }
        sources.push(Source::BoundedTable(BoundedTableIter::new(
            t,
            lo,
            hi.map(|h| h.to_vec()),
            Arc::clone(&pulled),
        )?));
    }
    let mut merger = MergingIter::new(sources, true)?;
    let mut entries = Vec::new();
    let mut tombstones_dropped = 0u64;
    while let Some(e) = merger.next_visible()? {
        if drop_tombstones && e.is_tombstone() {
            tombstones_dropped += 1;
            continue;
        }
        entries.push(e);
    }
    Ok(ShardMerge {
        entries,
        entries_in: pulled.load(Ordering::Relaxed),
        tombstones_dropped,
    })
}

/// Expands `boundaries` into the shard ranges `[lo, hi)` they induce.
fn shard_ranges(boundaries: &[Vec<u8>]) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
    let mut ranges = Vec::with_capacity(boundaries.len() + 1);
    let mut lo: Vec<u8> = Vec::new();
    for b in boundaries {
        ranges.push((lo.clone(), Some(b.clone())));
        lo = b.clone();
    }
    ranges.push((lo, None));
    ranges
}

/// How the shard phase executes.
pub(crate) enum ShardExec<'a> {
    /// Shards run one after another on the calling thread (Inline mode
    /// and the differential test battery).
    Serial,
    /// Shards fan out across the background worker pool; the calling
    /// thread helps drain the shard queue, so a one-worker pool cannot
    /// deadlock.
    Pool(&'a crate::background::BgState),
}

/// Runs every shard of `boundaries` over `inputs`, serially or on the
/// pool, returning the per-shard merges in shard (= key) order.
pub(crate) fn run_shards(
    inputs: &[Arc<Table>],
    boundaries: &[Vec<u8>],
    drop_tombstones: bool,
    exec: ShardExec<'_>,
) -> StorageResult<Vec<ShardMerge>> {
    let ranges = shard_ranges(boundaries);
    match exec {
        ShardExec::Serial => ranges
            .iter()
            .map(|(lo, hi)| merge_shard(inputs, lo, hi.as_deref(), drop_tombstones))
            .collect(),
        ShardExec::Pool(bg) => {
            let n = ranges.len();
            let slots: Arc<Mutex<Vec<Option<StorageResult<ShardMerge>>>>> =
                Arc::new(Mutex::new((0..n).map(|_| None).collect()));
            let mut tasks: Vec<Box<dyn FnOnce() + Send + 'static>> =
                Vec::with_capacity(n);
            for (i, (lo, hi)) in ranges.into_iter().enumerate() {
                let inputs: Vec<Arc<Table>> = inputs.to_vec();
                let slots = Arc::clone(&slots);
                tasks.push(Box::new(move || {
                    let r = merge_shard(&inputs, &lo, hi.as_deref(), drop_tombstones);
                    slots.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(r);
                }));
            }
            bg.run_shard_batch(tasks);
            let mut slots = slots.lock().unwrap_or_else(PoisonError::into_inner);
            slots
                .iter_mut()
                .map(|s| {
                    s.take().unwrap_or_else(|| {
                        Err(StorageError::Corruption(
                            "sub-compaction shard produced no result".into(),
                        ))
                    })
                })
                .collect()
        }
    }
}

/// Sharded equivalent of [`merge_tables`](super::exec::merge_tables):
/// merges each boundary-induced key range independently (serially here;
/// the engine uses the pool under `Threaded`), then stitches the shard
/// streams through the shared output cut loop. Output tables, accounting,
/// and manifest effect are byte-identical to the serial merge for **any**
/// `boundaries` — the property the differential battery enforces.
pub fn merge_tables_sharded(
    device: &Arc<dyn StorageDevice>,
    cfg: &LsmConfig,
    index_kind: IndexKind,
    bits_per_key: f64,
    inputs_young_first: &[Arc<Table>],
    drop_tombstones: bool,
    boundaries: &[Vec<u8>],
) -> StorageResult<ShardedMergeResult> {
    merge_tables_sharded_with(
        device,
        cfg,
        index_kind,
        bits_per_key,
        inputs_young_first,
        drop_tombstones,
        boundaries,
        ShardExec::Serial,
    )
}

/// [`merge_tables_sharded`] with an explicit shard executor (the engine
/// passes the worker pool here).
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_tables_sharded_with(
    device: &Arc<dyn StorageDevice>,
    cfg: &LsmConfig,
    index_kind: IndexKind,
    bits_per_key: f64,
    inputs_young_first: &[Arc<Table>],
    drop_tombstones: bool,
    boundaries: &[Vec<u8>],
    exec: ShardExec<'_>,
) -> StorageResult<ShardedMergeResult> {
    let shard_merges = run_shards(inputs_young_first, boundaries, drop_tombstones, exec)?;
    let mut writer = OutputWriter::new(device, cfg, index_kind, bits_per_key);
    let mut shards = Vec::with_capacity(shard_merges.len());
    let mut entries_in_total = 0u64;
    let mut tombstones_total = 0u64;
    for sm in &shard_merges {
        for e in &sm.entries {
            writer.push(e)?;
        }
        shards.push(ShardAccounting {
            entries_in: sm.entries_in,
            entries_written: sm.entries.len() as u64,
            tombstones_dropped: sm.tombstones_dropped,
            versions_dropped: sm.versions_dropped(),
        });
        entries_in_total += sm.entries_in;
        tombstones_total += sm.tombstones_dropped;
    }
    let (tables, entries_written) = writer.finish()?;
    let versions_dropped = entries_in_total
        .saturating_sub(entries_written)
        .saturating_sub(tombstones_total);
    let output_bytes = tables.iter().map(|t| t.data_bytes()).sum();
    Ok(ShardedMergeResult {
        merge: MergeResult {
            tables,
            entries_written,
            tombstones_dropped: tombstones_total,
            versions_dropped,
            output_bytes,
        },
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ValueKind;
    use crate::sstable::TableBuilder;
    use lsm_storage::{DeviceProfile, MemDevice};

    fn device() -> Arc<dyn StorageDevice> {
        Arc::new(MemDevice::new(512, DeviceProfile::free()))
    }

    fn cfg() -> LsmConfig {
        LsmConfig {
            block_size: 512,
            target_table_bytes: 4 << 10,
            ..LsmConfig::small_for_tests()
        }
    }

    fn build(dev: &Arc<dyn StorageDevice>, entries: &[(String, u64, ValueKind, Vec<u8>)]) -> Arc<Table> {
        let mut b = TableBuilder::new(Arc::clone(dev), &cfg(), 10.0).unwrap();
        for (k, s, kind, v) in entries {
            b.add(k.as_bytes(), *s, *kind, v).unwrap();
        }
        let (f, _) = b.finish().unwrap();
        Table::open(f, IndexKind::Fence).unwrap()
    }

    fn keyed_table(dev: &Arc<dyn StorageDevice>, ids: std::ops::Range<u32>, seq0: u64) -> Arc<Table> {
        let entries: Vec<_> = ids
            .map(|i| {
                (
                    format!("key{i:06}"),
                    seq0 + i as u64,
                    ValueKind::Put,
                    vec![7u8; 40],
                )
            })
            .collect();
        build(dev, &entries)
    }

    #[test]
    fn boundaries_are_strictly_increasing_and_bounded() {
        let dev = device();
        let t = keyed_table(&dev, 0..800, 1);
        for shards in 1..=8usize {
            let b = shard_boundaries(&[Arc::clone(&t)], shards);
            assert!(b.len() < shards.max(1), "{} boundaries for {shards} shards", b.len());
            for w in b.windows(2) {
                assert!(w[0] < w[1], "boundaries must be strictly increasing");
            }
        }
        assert!(shard_boundaries(&[t], 1).is_empty());
    }

    #[test]
    fn shards_partition_every_input_entry() {
        let dev = device();
        let young = keyed_table(&dev, 100..500, 10_000);
        let old = keyed_table(&dev, 0..600, 1);
        let inputs = vec![young, old];
        let total: u64 = inputs.iter().map(|t| t.meta().num_entries).sum();
        let boundaries = shard_boundaries(&inputs, 4);
        assert!(!boundaries.is_empty());
        let merges = run_shards(&inputs, &boundaries, false, ShardExec::Serial).unwrap();
        let pulled: u64 = merges.iter().map(|m| m.entries_in).sum();
        assert_eq!(pulled, total, "every input entry consumed by exactly one shard");
        // balanced: no shard holds more than ~2x its fair share (block
        // granularity puts a floor on the imbalance)
        let fair = total as usize / merges.len();
        for (i, m) in merges.iter().enumerate() {
            assert!(
                m.entries_in as usize <= 2 * fair + 64,
                "shard {i} got {} of {} entries",
                m.entries_in,
                total
            );
        }
    }

    #[test]
    fn sharded_output_matches_serial_bytes() {
        let dev = device();
        let young = keyed_table(&dev, 50..300, 10_000);
        let old = keyed_table(&dev, 0..400, 1);
        let inputs = vec![young, old];
        let serial =
            super::super::exec::merge_tables(&dev, &cfg(), IndexKind::Fence, 10.0, &inputs, false)
                .unwrap();
        let boundaries = shard_boundaries(&inputs, 4);
        let sharded = merge_tables_sharded(
            &dev,
            &cfg(),
            IndexKind::Fence,
            10.0,
            &inputs,
            false,
            &boundaries,
        )
        .unwrap();
        assert_eq!(serial.entries_written, sharded.merge.entries_written);
        assert_eq!(serial.tombstones_dropped, sharded.merge.tombstones_dropped);
        assert_eq!(serial.versions_dropped, sharded.merge.versions_dropped);
        assert_eq!(serial.output_bytes, sharded.merge.output_bytes);
        assert_eq!(serial.tables.len(), sharded.merge.tables.len());
        for (a, b) in serial.tables.iter().zip(&sharded.merge.tables) {
            let (fa, fb) = (lsm_storage::FileId(a.id()), lsm_storage::FileId(b.id()));
            let n = dev.len_blocks(fa).unwrap();
            assert_eq!(n, dev.len_blocks(fb).unwrap());
            let ba = dev.read(fa, 0, n, lsm_storage::IoCategory::Misc).unwrap();
            let bb = dev.read(fb, 0, n, lsm_storage::IoCategory::Misc).unwrap();
            assert_eq!(ba, bb, "output tables must be byte-identical");
        }
    }

    #[test]
    fn per_shard_accounting_conserves() {
        let dev = device();
        // overlapping tables with deletes so tombstone GC and version
        // drops both fire
        let mut newer: Vec<(String, u64, ValueKind, Vec<u8>)> = Vec::new();
        for i in 0..300u32 {
            let kind = if i % 5 == 0 { ValueKind::Delete } else { ValueKind::Put };
            newer.push((format!("key{i:06}"), 10_000 + i as u64, kind, vec![1u8; 24]));
        }
        let older: Vec<(String, u64, ValueKind, Vec<u8>)> = (0..300u32)
            .map(|i| (format!("key{i:06}"), 1 + i as u64, ValueKind::Put, vec![2u8; 24]))
            .collect();
        let inputs = vec![build(&dev, &newer), build(&dev, &older)];
        let boundaries = shard_boundaries(&inputs, 3);
        let sharded = merge_tables_sharded(
            &dev,
            &cfg(),
            IndexKind::Fence,
            10.0,
            &inputs,
            true,
            &boundaries,
        )
        .unwrap();
        let mut in_sum = 0;
        for (i, s) in sharded.shards.iter().enumerate() {
            assert_eq!(
                s.entries_in,
                s.entries_written + s.tombstones_dropped + s.versions_dropped,
                "shard {i} accounting must conserve"
            );
            in_sum += s.entries_in;
        }
        let m = &sharded.merge;
        assert_eq!(in_sum, 600);
        assert_eq!(
            in_sum,
            m.entries_written + m.tombstones_dropped + m.versions_dropped,
            "aggregate accounting must conserve"
        );
        assert_eq!(m.tombstones_dropped, 60);
        // every key's older version is shadowed: 600 - 240 written - 60 GC'd
        assert_eq!(m.versions_dropped, 300);
    }

    #[test]
    fn degenerate_boundaries_are_harmless() {
        let dev = device();
        let t = keyed_table(&dev, 0..100, 1);
        // boundaries before, inside, and after the key range — including
        // adjacent cuts that make an empty middle shard
        let boundaries = vec![
            b"aaa".to_vec(),
            b"key000050".to_vec(),
            b"key000050\x00".to_vec(),
            b"zzz".to_vec(),
        ];
        let sharded = merge_tables_sharded(
            &dev,
            &cfg(),
            IndexKind::Fence,
            10.0,
            &[Arc::clone(&t)],
            false,
            &boundaries,
        )
        .unwrap();
        let serial =
            super::super::exec::merge_tables(&dev, &cfg(), IndexKind::Fence, 10.0, &[t], false)
                .unwrap();
        assert_eq!(sharded.merge.entries_written, serial.entries_written);
        assert_eq!(sharded.merge.output_bytes, serial.output_bytes);
        let empty_shards = sharded.shards.iter().filter(|s| s.entries_in == 0).count();
        assert!(empty_shards >= 2, "out-of-range shards must be empty, not wrong");
    }
}
