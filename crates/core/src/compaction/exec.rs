//! Merge execution: sort-merges input tables into new partitioned tables,
//! garbage-collecting obsolete versions and (when allowed) tombstones —
//! the mechanics of tutorial Module I.1's `compaction` operation.

use std::sync::Arc;

use lsm_index::IndexKind;
use lsm_storage::{StorageDevice, StorageResult};

use crate::config::LsmConfig;
use crate::entry::InternalEntry;
use crate::iter::{MergingIter, Source};
use crate::sstable::{Table, TableBuilder};

/// Outcome of one merge.
pub struct MergeResult {
    /// New tables, in key order, partitioned at `target_table_bytes`.
    pub tables: Vec<Arc<Table>>,
    /// Entries written to the new tables.
    pub entries_written: u64,
    /// Tombstones garbage-collected.
    pub tombstones_dropped: u64,
    /// Obsolete (shadowed) versions dropped by the merge.
    pub versions_dropped: u64,
    /// Data bytes across the output tables (event-trace accounting).
    pub output_bytes: u64,
}

/// Streams merged entries into output tables partitioned at
/// `target_table_bytes`. This is the one and only cut loop: both the
/// serial [`merge_tables`] path and the sharded stitch phase
/// ([`crate::compaction::subcompact`]) feed it the same global-key-order
/// entry stream, which is what makes their outputs byte-identical.
pub(crate) struct OutputWriter<'a> {
    device: &'a Arc<dyn StorageDevice>,
    cfg: &'a LsmConfig,
    index_kind: IndexKind,
    bits_per_key: f64,
    builder: Option<TableBuilder>,
    tables: Vec<Arc<Table>>,
    entries_written: u64,
}

impl<'a> OutputWriter<'a> {
    pub(crate) fn new(
        device: &'a Arc<dyn StorageDevice>,
        cfg: &'a LsmConfig,
        index_kind: IndexKind,
        bits_per_key: f64,
    ) -> Self {
        OutputWriter {
            device,
            cfg,
            index_kind,
            bits_per_key,
            builder: None,
            tables: Vec::new(),
            entries_written: 0,
        }
    }

    /// Appends one visible entry, cutting a new output table whenever the
    /// current one reaches the target size. The builder is created lazily
    /// so an all-dropped merge creates no file at all.
    pub(crate) fn push(&mut self, e: &InternalEntry) -> StorageResult<()> {
        self.push_parts(&e.key, e.seqno, e.kind, &e.value)
    }

    /// Borrowed-slice variant of [`OutputWriter::push`]: lets the merge
    /// cursor feed entry bytes straight from pinned blocks into the
    /// builder — one copy, block to builder.
    pub(crate) fn push_parts(
        &mut self,
        key: &[u8],
        seqno: u64,
        kind: crate::entry::ValueKind,
        value: &[u8],
    ) -> StorageResult<()> {
        let b = match &mut self.builder {
            Some(b) => b,
            None => {
                self.builder = Some(TableBuilder::new(
                    Arc::clone(self.device),
                    self.cfg,
                    self.bits_per_key,
                )?);
                self.builder.as_mut().unwrap()
            }
        };
        b.add(key, seqno, kind, value)?;
        self.entries_written += 1;
        if b.estimated_file_bytes() >= self.cfg.target_table_bytes {
            let full = self.builder.take().unwrap();
            let (file, _meta) = full.finish()?;
            self.tables.push(Table::open(file, self.index_kind)?);
        }
        Ok(())
    }

    /// Seals the trailing partial table (if any) and returns the outputs
    /// with the entry count written.
    pub(crate) fn finish(mut self) -> StorageResult<(Vec<Arc<Table>>, u64)> {
        if let Some(b) = self.builder.take() {
            if !b.is_empty() {
                let (file, _meta) = b.finish()?;
                self.tables.push(Table::open(file, self.index_kind)?);
            }
        }
        Ok((self.tables, self.entries_written))
    }
}

/// Sort-merges `inputs` (ordered youngest first; tables within one run may
/// be supplied in any relative order since their ranges are disjoint) into
/// new tables on `device`.
///
/// `bits_per_key` is the filter budget for the output level.
/// `drop_tombstones` enables tombstone GC (only sound at the last level —
/// the caller checks [`crate::compaction::may_drop_tombstones`]).
pub fn merge_tables(
    device: &Arc<dyn StorageDevice>,
    cfg: &LsmConfig,
    index_kind: IndexKind,
    bits_per_key: f64,
    inputs_young_first: &[Arc<Table>],
    drop_tombstones: bool,
) -> StorageResult<MergeResult> {
    let entries_in: u64 = inputs_young_first.iter().map(|t| t.meta().num_entries).sum();
    let mut sources = Vec::with_capacity(inputs_young_first.len());
    for t in inputs_young_first {
        sources.push(Source::Table(t.iter_from(b"", None)?));
    }
    let mut merger = MergingIter::new(sources, true)?;
    let mut writer = OutputWriter::new(device, cfg, index_kind, bits_per_key);
    let mut tombstones_dropped = 0u64;
    // cursor merge: each surviving entry's bytes move once, from the
    // pinned input block into the output builder
    while merger.advance_visible()? {
        if drop_tombstones && merger.kind() == crate::entry::ValueKind::Delete {
            tombstones_dropped += 1;
            continue;
        }
        writer.push_parts(merger.key(), merger.seqno(), merger.kind(), merger.value())?;
    }
    let (out_tables, entries_written) = writer.finish()?;
    let versions_dropped = entries_in
        .saturating_sub(entries_written)
        .saturating_sub(tombstones_dropped);
    let output_bytes = out_tables.iter().map(|t| t.data_bytes()).sum();
    Ok(MergeResult {
        tables: out_tables,
        entries_written,
        tombstones_dropped,
        versions_dropped,
        output_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ValueKind;
    use lsm_storage::{DeviceProfile, MemDevice};

    fn device() -> Arc<dyn StorageDevice> {
        Arc::new(MemDevice::new(512, DeviceProfile::free()))
    }

    fn cfg() -> LsmConfig {
        LsmConfig {
            block_size: 512,
            target_table_bytes: 4 << 10,
            ..LsmConfig::small_for_tests()
        }
    }

    fn build(dev: &Arc<dyn StorageDevice>, entries: &[(&str, u64, ValueKind, &str)]) -> Arc<Table> {
        let mut b = TableBuilder::new(Arc::clone(dev), &cfg(), 10.0).unwrap();
        for (k, s, kind, v) in entries {
            b.add(k.as_bytes(), *s, *kind, v.as_bytes()).unwrap();
        }
        let (f, _) = b.finish().unwrap();
        Table::open(f, IndexKind::Fence).unwrap()
    }

    #[test]
    fn merge_dedups_versions() {
        let dev = device();
        let newer = build(&dev, &[("a", 10, ValueKind::Put, "new"), ("b", 11, ValueKind::Put, "b")]);
        let older = build(&dev, &[("a", 1, ValueKind::Put, "old"), ("c", 2, ValueKind::Put, "c")]);
        let r = merge_tables(&dev, &cfg(), IndexKind::Fence, 10.0, &[newer, older], false).unwrap();
        assert_eq!(r.entries_written, 3);
        assert_eq!(r.versions_dropped, 1);
        assert_eq!(r.tables.len(), 1);
        let t = &r.tables[0];
        let hit = t.get(b"a", None).unwrap().entry.unwrap();
        assert_eq!(hit.value, b"new".to_vec());
        assert_eq!(hit.seqno, 10);
    }

    #[test]
    fn tombstone_gc_only_when_allowed() {
        let dev = device();
        let newer = build(&dev, &[("a", 10, ValueKind::Delete, "")]);
        let older = build(&dev, &[("a", 1, ValueKind::Put, "old")]);
        // without GC: tombstone kept, old version dropped
        let keep = merge_tables(
            &dev,
            &cfg(),
            IndexKind::Fence,
            10.0,
            &[newer.clone(), older.clone()],
            false,
        )
        .unwrap();
        assert_eq!(keep.entries_written, 1);
        assert_eq!(keep.tombstones_dropped, 0);
        assert_eq!(keep.tables[0].get(b"a", None).unwrap().entry.unwrap().kind, ValueKind::Delete);
        // with GC: key vanishes entirely
        let gc = merge_tables(&dev, &cfg(), IndexKind::Fence, 10.0, &[newer, older], true).unwrap();
        assert_eq!(gc.entries_written, 0);
        assert_eq!(gc.tombstones_dropped, 1);
        assert!(gc.tables.is_empty());
    }

    #[test]
    fn output_partitioned_at_target_size() {
        let dev = device();
        let mut b = TableBuilder::new(Arc::clone(&dev), &cfg(), 10.0).unwrap();
        for i in 0..2000u32 {
            b.add(format!("key{i:06}").as_bytes(), i as u64, ValueKind::Put, &[7u8; 64])
                .unwrap();
        }
        let (f, _) = b.finish().unwrap();
        let big = Table::open(f, IndexKind::Fence).unwrap();
        let r = merge_tables(&dev, &cfg(), IndexKind::Fence, 10.0, &[big], false).unwrap();
        assert!(r.tables.len() > 2, "{} output tables", r.tables.len());
        // outputs are disjoint and ordered
        for w in r.tables.windows(2) {
            assert!(w[0].meta().max_key < w[1].meta().min_key);
        }
        assert_eq!(r.entries_written, 2000);
        // every key still readable
        for i in (0..2000u32).step_by(97) {
            let key = format!("key{i:06}");
            let found = r
                .tables
                .iter()
                .any(|t| t.get(key.as_bytes(), None).unwrap().entry.is_some());
            assert!(found, "{key} lost in merge");
        }
    }

    #[test]
    fn empty_inputs_produce_no_tables() {
        let dev = device();
        let r = merge_tables(&dev, &cfg(), IndexKind::Fence, 10.0, &[], false).unwrap();
        assert!(r.tables.is_empty());
        assert_eq!(r.entries_written, 0);
    }

    #[test]
    fn disjoint_run_tables_merge_in_order() {
        let dev = device();
        let t1 = build(&dev, &[("a", 1, ValueKind::Put, "1"), ("b", 2, ValueKind::Put, "2")]);
        let t2 = build(&dev, &[("x", 3, ValueKind::Put, "3"), ("z", 4, ValueKind::Put, "4")]);
        let r = merge_tables(&dev, &cfg(), IndexKind::Fence, 10.0, &[t2, t1], false).unwrap();
        assert_eq!(r.entries_written, 4);
        assert_eq!(r.tables[0].meta().min_key, b"a".to_vec());
        assert_eq!(r.tables[0].meta().max_key, b"z".to_vec());
    }
}
