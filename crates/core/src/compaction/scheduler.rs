//! Compaction scheduling: admission control for N concurrent compaction
//! jobs on disjoint (level, key-range) footprints, with priority ordering
//! (L0 pressure first), per-job I/O accounting, and a token-bucket byte
//! throttle.
//!
//! The scheduler is deliberately engine-agnostic: it holds no locks of the
//! engine's and performs no I/O itself, which is what makes its invariants
//! — never admit overlapping jobs, always dequeue L0-pressure first, never
//! wedge after an error — directly property-testable (see
//! `crates/core/tests/parallel_compaction.rs`). The engine submits one job
//! per prepared compaction, runs the merge, then completes the job with an
//! I/O report; "Towards Flexibility and Robustness of LSM Trees" (Huynh et
//! al.) motivates keeping this policy layer separate from merge mechanics.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Scheduler-assigned job handle.
pub type JobId = u64;

/// Why a job wants to run; higher variants dequeue first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobPriority {
    /// Explicit `major_compact` or test-driven work.
    Manual = 0,
    /// A level crossed its size/run threshold.
    SizeTriggered = 1,
    /// L0 run count is at or near the stall threshold — dequeues before
    /// everything else, because L0 pressure is what blocks writers.
    L0Pressure = 2,
}

/// The footprint and urgency of one compaction job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Source level.
    pub level: usize,
    /// Destination level (≥ `level`; the job holds `level..=target`).
    pub target: usize,
    /// Smallest user key the job reads or writes.
    pub lo: Vec<u8>,
    /// Largest user key the job reads or writes (inclusive).
    pub hi: Vec<u8>,
    /// Dequeue priority.
    pub priority: JobPriority,
}

impl JobSpec {
    /// Whether two jobs' footprints collide: both their level spans and
    /// their key ranges intersect. Jobs touching disjoint level spans or
    /// disjoint key ranges can safely run concurrently.
    pub fn conflicts(&self, other: &JobSpec) -> bool {
        let levels_overlap = self.level <= other.target && other.level <= self.target;
        let keys_overlap = self.lo <= other.hi && other.lo <= self.hi;
        levels_overlap && keys_overlap
    }
}

/// Per-job I/O totals reported at completion.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobIoReport {
    /// Bytes read from input tables.
    pub input_bytes: u64,
    /// Bytes written to output tables.
    pub output_bytes: u64,
    /// Input entries consumed.
    pub input_entries: u64,
    /// Entries written to outputs.
    pub entries_written: u64,
}

/// Aggregate scheduler accounting, mirrored into the metrics registry.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedTotals {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs admitted (dequeued to run).
    pub admitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs completed with an error.
    pub failed: u64,
    /// Σ input bytes across completed jobs.
    pub input_bytes: u64,
    /// Σ output bytes across completed jobs.
    pub output_bytes: u64,
    /// Throttle debits that had to wait.
    pub throttle_waits: u64,
    /// Total nanoseconds of throttle-imposed waiting.
    pub throttle_wait_ns: u64,
}

struct QueuedJob {
    id: JobId,
    spec: JobSpec,
    /// Submission order: FIFO tiebreak within a priority class.
    seq: u64,
}

#[derive(Default)]
struct SchedInner {
    queue: Vec<QueuedJob>,
    running: Vec<(JobId, JobSpec)>,
    /// First error message, latched until taken; later errors are counted
    /// but not stored.
    error: Option<String>,
    failed: bool,
    totals: SchedTotals,
    next_id: JobId,
    next_seq: u64,
}

/// Deterministic token-bucket throttle over compaction bytes.
///
/// The bucket state machine is pure — `debit_at` takes the current time in
/// nanoseconds and returns how long the caller must wait — so tests drive
/// it with a synthetic clock and assert exact waits. [`TokenBucket::debit`]
/// is the wall-clock wrapper the engine uses. A rate of 0 disables the
/// throttle entirely.
pub struct TokenBucket {
    rate_per_sec: u64,
    burst: u64,
    state: Mutex<BucketState>,
}

struct BucketState {
    tokens: u64,
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` bytes/s with `burst` capacity
    /// (the bucket starts full). `rate_per_sec == 0` disables throttling.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        TokenBucket {
            rate_per_sec,
            burst,
            state: Mutex::new(BucketState {
                tokens: burst,
                last_ns: 0,
            }),
        }
    }

    /// Whether the throttle is active.
    pub fn enabled(&self) -> bool {
        self.rate_per_sec > 0
    }

    /// Debits `bytes` at time `now_ns` (monotone, caller-supplied) and
    /// returns the nanoseconds the caller must wait before proceeding.
    /// Debits larger than the burst are allowed; they simply owe
    /// proportionally more wait.
    pub fn debit_at(&self, bytes: u64, now_ns: u64) -> u64 {
        if self.rate_per_sec == 0 || bytes == 0 {
            return 0;
        }
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let elapsed = now_ns.saturating_sub(s.last_ns);
        s.last_ns = now_ns;
        let refill = (elapsed as u128 * self.rate_per_sec as u128 / 1_000_000_000) as u64;
        s.tokens = s.tokens.saturating_add(refill).min(self.burst);
        if bytes <= s.tokens {
            s.tokens -= bytes;
            0
        } else {
            let deficit = bytes - s.tokens;
            s.tokens = 0;
            (deficit as u128 * 1_000_000_000 / self.rate_per_sec as u128) as u64
        }
    }

    /// Wall-clock debit: computes the owed wait from a monotonic clock and
    /// returns it (the caller decides whether to actually sleep).
    pub fn debit(&self, bytes: u64, epoch: Instant) -> Duration {
        let now_ns = epoch.elapsed().as_nanos() as u64;
        Duration::from_nanos(self.debit_at(bytes, now_ns))
    }
}

/// Admission control + accounting for concurrent compaction jobs.
pub struct CompactionScheduler {
    inner: Mutex<SchedInner>,
    max_jobs: usize,
    throttle: TokenBucket,
    /// Epoch for the wall-clock throttle path.
    epoch: Instant,
}

impl CompactionScheduler {
    /// A scheduler admitting at most `max_jobs` concurrent jobs, throttled
    /// by `throttle`.
    pub fn new(max_jobs: usize, throttle: TokenBucket) -> Self {
        CompactionScheduler {
            inner: Mutex::new(SchedInner::default()),
            max_jobs: max_jobs.max(1),
            throttle,
            epoch: Instant::now(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queues a job and returns its id. Submission never blocks; conflicts
    /// are resolved at dequeue time.
    pub fn submit(&self, spec: JobSpec) -> JobId {
        let mut s = self.lock();
        s.next_id += 1;
        let id = s.next_id;
        let seq = s.next_seq;
        s.next_seq += 1;
        s.totals.submitted += 1;
        s.queue.push(QueuedJob { id, spec, seq });
        id
    }

    /// Admits the best runnable job, if any: highest priority first (L0
    /// pressure beats everything), FIFO within a class, skipping any job
    /// whose (level span, key range) footprint conflicts with a running
    /// job. Returns `None` when at `max_jobs`, the queue is empty, or
    /// every queued job conflicts.
    ///
    /// An earlier error does **not** stop admission: the error is latched
    /// for the caller, and remaining jobs drain normally — the scheduler
    /// never wedges.
    pub fn try_dequeue(&self) -> Option<(JobId, JobSpec)> {
        let mut s = self.lock();
        if s.running.len() >= self.max_jobs {
            return None;
        }
        let mut best: Option<usize> = None;
        for (i, j) in s.queue.iter().enumerate() {
            if s.running.iter().any(|(_, r)| r.conflicts(&j.spec)) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let bj = &s.queue[b];
                    if (j.spec.priority, std::cmp::Reverse(j.seq))
                        > (bj.spec.priority, std::cmp::Reverse(bj.seq))
                    {
                        best = Some(i);
                    }
                }
            }
        }
        let idx = best?;
        let job = s.queue.remove(idx);
        s.totals.admitted += 1;
        s.running.push((job.id, job.spec.clone()));
        Some((job.id, job.spec))
    }

    /// Records a job's completion, merging its I/O report into the totals
    /// (success) or latching the first error message (failure). The job
    /// leaves the running set either way, so queued jobs behind it stay
    /// admissible.
    pub fn complete(&self, id: JobId, result: Result<JobIoReport, String>) {
        let mut s = self.lock();
        s.running.retain(|(rid, _)| *rid != id);
        match result {
            Ok(r) => {
                s.totals.completed += 1;
                s.totals.input_bytes += r.input_bytes;
                s.totals.output_bytes += r.output_bytes;
            }
            Err(msg) => {
                s.totals.failed += 1;
                s.failed = true;
                if s.error.is_none() {
                    s.error = Some(msg);
                }
            }
        }
    }

    /// Takes the latched first error, if any. `has_failed` stays sticky.
    pub fn take_error(&self) -> Option<String> {
        self.lock().error.take()
    }

    /// Whether any job has ever failed.
    pub fn has_failed(&self) -> bool {
        self.lock().failed
    }

    /// Jobs waiting in the queue.
    pub fn queued_len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Jobs currently admitted.
    pub fn running_len(&self) -> usize {
        self.lock().running.len()
    }

    /// Snapshot of the aggregate accounting.
    pub fn totals(&self) -> SchedTotals {
        self.lock().totals
    }

    /// Debits `bytes` against the token bucket and returns the owed wait
    /// (recorded in the totals). The caller sleeps — or not: the Inline
    /// engine accounts but never sleeps, keeping tests wall-clock-free.
    pub fn throttle_debit(&self, bytes: u64) -> Duration {
        if !self.throttle.enabled() {
            return Duration::ZERO;
        }
        let wait = self.throttle.debit(bytes, self.epoch);
        if !wait.is_zero() {
            let mut s = self.lock();
            s.totals.throttle_waits += 1;
            s.totals.throttle_wait_ns += wait.as_nanos() as u64;
        }
        wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(level: usize, target: usize, lo: &str, hi: &str, pri: JobPriority) -> JobSpec {
        JobSpec {
            level,
            target,
            lo: lo.as_bytes().to_vec(),
            hi: hi.as_bytes().to_vec(),
            priority: pri,
        }
    }

    #[test]
    fn conflict_requires_both_level_and_key_overlap() {
        let a = spec(1, 2, "a", "m", JobPriority::SizeTriggered);
        assert!(a.conflicts(&spec(2, 3, "k", "z", JobPriority::Manual)));
        assert!(!a.conflicts(&spec(3, 4, "k", "z", JobPriority::Manual)), "disjoint levels");
        assert!(!a.conflicts(&spec(1, 2, "n", "z", JobPriority::Manual)), "disjoint keys");
        assert!(a.conflicts(&a.clone()));
    }

    #[test]
    fn l0_pressure_dequeues_first() {
        let s = CompactionScheduler::new(4, TokenBucket::new(0, 0));
        s.submit(spec(2, 3, "a", "m", JobPriority::SizeTriggered));
        s.submit(spec(3, 4, "n", "z", JobPriority::Manual));
        let l0 = s.submit(spec(0, 1, "A", "Z", JobPriority::L0Pressure));
        let (first, _) = s.try_dequeue().unwrap();
        assert_eq!(first, l0, "L0-pressure job must dequeue first");
    }

    #[test]
    fn fifo_within_priority_class() {
        let s = CompactionScheduler::new(4, TokenBucket::new(0, 0));
        let a = s.submit(spec(1, 2, "a", "f", JobPriority::SizeTriggered));
        let b = s.submit(spec(3, 4, "g", "m", JobPriority::SizeTriggered));
        assert_eq!(s.try_dequeue().unwrap().0, a);
        assert_eq!(s.try_dequeue().unwrap().0, b);
    }

    #[test]
    fn conflicting_job_held_until_blocker_completes() {
        let s = CompactionScheduler::new(4, TokenBucket::new(0, 0));
        let a = s.submit(spec(1, 2, "a", "m", JobPriority::SizeTriggered));
        let b = s.submit(spec(2, 3, "c", "k", JobPriority::SizeTriggered));
        let c = s.submit(spec(4, 5, "a", "z", JobPriority::SizeTriggered));
        assert_eq!(s.try_dequeue().unwrap().0, a);
        // b overlaps a in both levels and keys → skipped; c is disjoint
        assert_eq!(s.try_dequeue().unwrap().0, c);
        assert!(s.try_dequeue().is_none());
        s.complete(a, Ok(JobIoReport::default()));
        assert_eq!(s.try_dequeue().unwrap().0, b);
    }

    #[test]
    fn max_jobs_bounds_admission() {
        let s = CompactionScheduler::new(1, TokenBucket::new(0, 0));
        let a = s.submit(spec(1, 2, "a", "b", JobPriority::SizeTriggered));
        s.submit(spec(3, 4, "x", "z", JobPriority::SizeTriggered));
        assert!(s.try_dequeue().is_some());
        assert!(s.try_dequeue().is_none(), "max_jobs=1 admits one at a time");
        s.complete(a, Ok(JobIoReport::default()));
        assert!(s.try_dequeue().is_some());
    }

    #[test]
    fn error_latches_and_queue_drains() {
        let s = CompactionScheduler::new(2, TokenBucket::new(0, 0));
        let a = s.submit(spec(1, 1, "a", "b", JobPriority::SizeTriggered));
        s.submit(spec(2, 2, "a", "b", JobPriority::SizeTriggered));
        s.submit(spec(3, 3, "a", "b", JobPriority::SizeTriggered));
        let (id, _) = s.try_dequeue().unwrap();
        assert_eq!(id, a);
        s.complete(a, Err("disk on fire".into()));
        // remaining jobs still drain
        while let Some((id, _)) = s.try_dequeue() {
            s.complete(id, Ok(JobIoReport::default()));
        }
        assert_eq!(s.queued_len(), 0);
        assert_eq!(s.running_len(), 0);
        assert!(s.has_failed());
        assert_eq!(s.take_error().unwrap(), "disk on fire");
        assert!(s.take_error().is_none(), "error taken once");
        assert!(s.has_failed(), "failed flag stays sticky");
        let t = s.totals();
        assert_eq!((t.submitted, t.completed, t.failed), (3, 2, 1));
    }

    #[test]
    fn token_bucket_is_deterministic() {
        let b = TokenBucket::new(1_000, 500); // 1000 B/s, 500 B burst
        assert_eq!(b.debit_at(500, 0), 0, "burst absorbs the first debit");
        // empty bucket: 250 bytes owes 250ms
        assert_eq!(b.debit_at(250, 0), 250_000_000);
        // after 1s the bucket refilled 1000, capped at 500
        assert_eq!(b.debit_at(400, 1_000_000_000), 0);
        // oversize debit allowed, owes proportionally
        let owed = b.debit_at(2_100, 1_000_000_000);
        assert_eq!(owed, 2_000_000_000, "100 tokens left, 2000 deficit at 1000 B/s");
        let disabled = TokenBucket::new(0, 0);
        assert_eq!(disabled.debit_at(u64::MAX, 0), 0);
        assert!(!disabled.enabled());
    }

    #[test]
    fn throttle_totals_account_waits() {
        let s = CompactionScheduler::new(1, TokenBucket::new(1 << 20, 1 << 10));
        // first debit spends the burst; the rest owe waits
        let _ = s.throttle_debit(1 << 10);
        let w = s.throttle_debit(1 << 20);
        assert!(!w.is_zero());
        let t = s.totals();
        assert!(t.throttle_waits >= 1);
        assert!(t.throttle_wait_ns > 0);
    }
}
