//! Compaction: planning (which level, which shape of merge), file picking
//! (partial compaction), and merge execution — the compaction primitives
//! of Sarkar et al. that tutorial Module I.2 builds on:
//! *trigger* ([`plan`]), *data layout* ([`crate::config::MergeLayout`]),
//! *granularity* ([`crate::config::CompactionGranularity`]), and *data
//! movement policy* ([`picker`]).

pub mod exec;
pub mod picker;
pub mod scheduler;
pub mod subcompact;

use crate::config::LsmConfig;
use crate::version::Version;

/// A planned compaction step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionTask {
    /// Merge every run of `level` with the overlapping tables of the
    /// single run in `level + 1` (leveled target).
    MergeIntoNext {
        /// Source level.
        level: usize,
    },
    /// Merge every run of `level` into one new run appended to `level + 1`
    /// (tiered target) — no data from `level + 1` is rewritten.
    AppendToNext {
        /// Source level.
        level: usize,
    },
    /// Merge the runs of `level` into a single run in place (major
    /// compaction of the last level).
    MergeInPlace {
        /// The level.
        level: usize,
    },
    /// Move one picked table from `level`'s run into `level + 1`
    /// (partial compaction).
    PartialIntoNext {
        /// Source level.
        level: usize,
    },
}

impl CompactionTask {
    /// The source level of the task.
    pub fn level(&self) -> usize {
        match *self {
            CompactionTask::MergeIntoNext { level }
            | CompactionTask::AppendToNext { level }
            | CompactionTask::MergeInPlace { level }
            | CompactionTask::PartialIntoNext { level } => level,
        }
    }
}

/// The compaction trigger: finds the shallowest level violating its run
/// cap or byte capacity and plans one step. Returns `None` when the tree
/// satisfies every constraint. Callers loop until `None` (each step can
/// create a violation one level deeper — the compaction cascade).
pub fn plan(version: &Version, cfg: &LsmConfig) -> Option<CompactionTask> {
    let last = version.last_occupied_level()?;
    let t = cfg.size_ratio;
    for i in 0..=last {
        let level = &version.levels[i];
        if level.is_empty() {
            continue;
        }
        let cap_runs = if i == 0 {
            cfg.l0_run_cap
        } else {
            cfg.layout.run_cap(i, last + 1, t)
        };
        let over_runs = level.runs.len() > cap_runs;
        let over_bytes = level.bytes() > cfg.level_capacity_bytes(i);
        if !over_runs && !over_bytes {
            continue;
        }
        // the target's layout decides merge-vs-append
        let target_cap = cfg.layout.run_cap(i + 1, (last + 1).max(i + 2), t);
        let target_tiered = target_cap > 1;
        if over_runs && i == last && cap_runs == 1 && level.runs.len() > 1 {
            return Some(CompactionTask::MergeInPlace { level: i });
        }
        if over_bytes && !over_runs && i != 0 {
            if cap_runs == 1 {
                if let crate::config::CompactionGranularity::Partial(_) = cfg.granularity {
                    return Some(CompactionTask::PartialIntoNext { level: i });
                }
            }
            return Some(if target_tiered {
                CompactionTask::AppendToNext { level: i }
            } else {
                CompactionTask::MergeIntoNext { level: i }
            });
        }
        return Some(if target_tiered {
            CompactionTask::AppendToNext { level: i }
        } else {
            CompactionTask::MergeIntoNext { level: i }
        });
    }
    None
}

/// Whether tombstones may be garbage-collected by a merge whose output
/// lands at `target_level`: allowed iff nothing deeper holds data and the
/// merge consumes every run that could contain older versions of the
/// merged keys.
pub fn may_drop_tombstones(version: &Version, target_level: usize, consumes_whole_target: bool) -> bool {
    let deeper_empty = version
        .levels
        .iter()
        .skip(target_level + 1)
        .all(|l| l.is_empty());
    let target_single_run = version
        .levels
        .get(target_level)
        .is_none_or(|l| l.runs.iter().filter(|r| !r.is_empty()).count() <= 1);
    deeper_empty && (consumes_whole_target || target_single_run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompactionGranularity, FilePicker, MergeLayout};

    // Plan logic is exercised end-to-end through `Db` tests; here we cover
    // the pure decision function with synthetic versions built from real
    // tiny tables.
    use crate::entry::ValueKind;
    use crate::sstable::{Table, TableBuilder};
    use crate::version::SortedRun;
    use lsm_index::IndexKind;
    use lsm_storage::{DeviceProfile, MemDevice, StorageDevice};
    use std::sync::Arc;

    fn tiny_table(tag: usize, n: usize) -> Arc<Table> {
        let dev: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
        let cfg = LsmConfig {
            block_size: 512,
            ..LsmConfig::small_for_tests()
        };
        let mut b = TableBuilder::new(dev, &cfg, 10.0).unwrap();
        for i in 0..n {
            b.add(
                format!("t{tag:02}k{i:06}").as_bytes(),
                i as u64,
                ValueKind::Put,
                &[0u8; 64],
            )
            .unwrap();
        }
        let (f, _) = b.finish().unwrap();
        Table::open(f, IndexKind::Fence).unwrap()
    }

    fn version_with(l0_runs: usize, per_run_entries: usize) -> Version {
        let mut v = Version::new();
        v.ensure_levels(4);
        for r in 0..l0_runs {
            v.levels[0]
                .runs
                .push(SortedRun::single(tiny_table(r, per_run_entries)));
        }
        v
    }

    fn cfg(layout: MergeLayout) -> LsmConfig {
        LsmConfig {
            layout,
            l0_run_cap: 2,
            size_ratio: 4,
            buffer_bytes: 4 << 10,
            block_size: 512,
            ..LsmConfig::small_for_tests()
        }
    }

    #[test]
    fn no_violation_no_plan() {
        let v = version_with(1, 10);
        assert_eq!(plan(&v, &cfg(MergeLayout::Leveled)), None);
    }

    #[test]
    fn l0_over_runs_plans_merge_into_next_for_leveled() {
        let v = version_with(3, 10);
        assert_eq!(
            plan(&v, &cfg(MergeLayout::Leveled)),
            Some(CompactionTask::MergeIntoNext { level: 0 })
        );
    }

    #[test]
    fn l0_over_runs_plans_append_for_tiered() {
        let v = version_with(3, 10);
        assert_eq!(
            plan(&v, &cfg(MergeLayout::Tiered)),
            Some(CompactionTask::AppendToNext { level: 0 })
        );
    }

    #[test]
    fn lazy_leveling_appends_until_last_level() {
        // lazy: level 1 is the last occupied → target of L0 is leveled
        let mut v = version_with(3, 10);
        v.levels[1].runs.push(SortedRun::single(tiny_table(9, 10)));
        let task = plan(&v, &cfg(MergeLayout::LazyLeveled)).unwrap();
        assert_eq!(task, CompactionTask::MergeIntoNext { level: 0 });
    }

    #[test]
    fn size_violation_with_partial_granularity() {
        let mut config = cfg(MergeLayout::Leveled);
        config.granularity = CompactionGranularity::Partial(FilePicker::RoundRobin);
        config.buffer_bytes = 512; // level 1 capacity = 512 * 4 = 2 KiB
        let mut v = Version::new();
        v.ensure_levels(3);
        // a single large run at level 1, over its byte budget
        v.levels[1].runs.push(SortedRun::from_tables(vec![tiny_table(0, 300)]));
        let task = plan(&v, &config).unwrap();
        assert_eq!(task, CompactionTask::PartialIntoNext { level: 1 });
    }

    #[test]
    fn last_level_run_cap_violation_merges_in_place() {
        let mut v = Version::new();
        v.ensure_levels(2);
        // two runs in level 1, which lazy-leveling wants single-run
        v.levels[1].runs.push(SortedRun::single(tiny_table(0, 200)));
        v.levels[1].runs.push(SortedRun::single(tiny_table(1, 200)));
        let mut config = cfg(MergeLayout::LazyLeveled);
        config.buffer_bytes = 1 << 20; // no byte violation
        let task = plan(&v, &config).unwrap();
        assert_eq!(task, CompactionTask::MergeInPlace { level: 1 });
    }

    #[test]
    fn tombstone_drop_rules() {
        let mut v = Version::new();
        v.ensure_levels(4);
        v.levels[1].runs.push(SortedRun::single(tiny_table(0, 10)));
        // target 2, nothing deeper → allowed
        assert!(may_drop_tombstones(&v, 2, true));
        // target 0 but level 1 has data → not allowed
        assert!(!may_drop_tombstones(&v, 0, true));
        // deeper data present
        v.levels[3].runs.push(SortedRun::single(tiny_table(1, 10)));
        assert!(!may_drop_tombstones(&v, 2, true));
        // appending a run to a multi-run last level without consuming it
        let mut v2 = Version::new();
        v2.ensure_levels(2);
        v2.levels[1].runs.push(SortedRun::single(tiny_table(2, 10)));
        v2.levels[1].runs.push(SortedRun::single(tiny_table(3, 10)));
        assert!(!may_drop_tombstones(&v2, 1, false));
        assert!(may_drop_tombstones(&v2, 1, true));
    }

    #[test]
    fn task_level_accessor() {
        assert_eq!(CompactionTask::MergeIntoNext { level: 3 }.level(), 3);
        assert_eq!(CompactionTask::MergeInPlace { level: 1 }.level(), 1);
    }
}
