//! Background maintenance: the worker pool behind
//! [`BackgroundMode::Threaded`](crate::config::BackgroundMode).
//!
//! The pool drains two job kinds: **flush** (persist the frozen immutable
//! memtable as an L0 table) and **compact** (run the compaction cascade
//! picked by the existing planner to quiescence). Jobs are queued by the
//! write path (memtable freeze) and by flush completion; a dedupe flag
//! keeps at most one compact job queued or running, which preserves the
//! single-compactor invariant the version-install rebase relies on.
//!
//! Lock hierarchy (outermost first): `DbCore::compaction_lock` →
//! `DbCore::inner` → `BgState::q`. Condition-variable waits hold only the
//! innermost queue mutex, and every wait uses a bounded timeout so a
//! missed notification degrades to a short delay, never a hang.
//!
//! The primitives are `std::sync` (`Mutex` + `Condvar`); the offline
//! `parking_lot` shim has no `Condvar`, and poisoning is stripped so a
//! panicking worker cannot wedge the engine.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::time::Duration;

use lsm_storage::StorageError;

use crate::db::DbCore;

/// One unit of background work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Job {
    /// Persist the frozen immutable memtable as an L0 table.
    Flush,
    /// Run the compaction cascade to quiescence.
    Compact,
}

/// One sub-compaction shard, boxed for the queue. Tasks own everything
/// they touch (`Arc` clones), so workers need no engine reference to run
/// them.
pub(crate) type ShardTask = Box<dyn FnOnce() + Send + 'static>;

/// What a worker pulled off the queue.
enum Work {
    Job(Job),
    Shard(ShardTask),
}

/// Completion tracker for one batch of shard tasks.
struct ShardBatch {
    remaining: Mutex<usize>,
    done_cv: Condvar,
}

/// Decrements the batch counter on drop, so a panicking shard task still
/// releases the coordinator instead of wedging it.
struct ShardDoneGuard {
    batch: Arc<ShardBatch>,
}

impl Drop for ShardDoneGuard {
    fn drop(&mut self) {
        let mut n = self
            .batch
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *n -= 1;
        drop(n);
        self.batch.done_cv.notify_all();
    }
}

/// Queue state shared by user handles and workers.
#[derive(Default)]
pub(crate) struct BgQueue {
    jobs: VecDeque<Job>,
    /// Sub-compaction shards awaiting a thread. Workers prefer these over
    /// whole jobs (a shard is part of an already-running compaction, so
    /// finishing it unblocks more than starting new work would).
    shard_tasks: VecDeque<ShardTask>,
    /// Jobs popped but not yet completed.
    inflight: usize,
    /// A freeze happened and its flush has not completed yet. Writers
    /// needing the immutable slot wait on `done_cv` for this to clear.
    flush_pending: bool,
    /// A compact job is queued or running (dedupe flag).
    compact_scheduled: bool,
    /// Compact jobs are held in the queue (test hook; flushes still run).
    paused_compaction: bool,
    shutdown: bool,
    /// First background error, surfaced once on the next maintenance call.
    error: Option<StorageError>,
    /// Sticky: a background job failed at some point.
    failed: bool,
}

/// Condvar-based scheduler state. Shared via its own `Arc` so idle
/// workers can wait on it without keeping the engine alive.
#[derive(Default)]
pub(crate) struct BgState {
    q: Mutex<BgQueue>,
    /// Workers wait here for runnable jobs.
    work_cv: Condvar,
    /// Writers/quiescers wait here for progress (flush done, L0 drained).
    done_cv: Condvar,
}

fn lock(q: &Mutex<BgQueue>) -> MutexGuard<'_, BgQueue> {
    q.lock().unwrap_or_else(PoisonError::into_inner)
}

impl BgState {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Marks a freeze and queues its flush. The caller guarantees the
    /// immutable slot was empty, so at most one flush is ever pending.
    pub(crate) fn enqueue_flush(&self) {
        let mut q = lock(&self.q);
        q.flush_pending = true;
        q.jobs.push_back(Job::Flush);
        drop(q);
        self.work_cv.notify_all();
    }

    /// Queues a compact job unless one is already queued or running.
    pub(crate) fn schedule_compact(&self) {
        let mut q = lock(&self.q);
        if q.compact_scheduled || q.shutdown {
            return;
        }
        q.compact_scheduled = true;
        q.jobs.push_back(Job::Compact);
        drop(q);
        self.work_cv.notify_all();
    }

    /// Re-queues a compact job that observed the pause flag mid-run; the
    /// dedupe flag stays set (the job is still "scheduled").
    fn requeue_compact(&self) {
        let mut q = lock(&self.q);
        q.jobs.push_back(Job::Compact);
    }

    /// Clears the compact dedupe flag when the cascade reaches
    /// quiescence. Returns `true` if the caller should re-check the
    /// planner (a flush may have landed during the final iteration).
    fn compact_finished(&self) -> bool {
        let mut q = lock(&self.q);
        q.compact_scheduled = false;
        true
    }

    /// Takes the stored background error, if any. The `failed` flag stays
    /// sticky so later calls still refuse cheaply.
    pub(crate) fn take_error(&self) -> Option<StorageError> {
        let mut q = lock(&self.q);
        match q.error.take() {
            Some(e) => Some(e),
            None if q.failed => Some(StorageError::Corruption(
                "a background maintenance job failed earlier".into(),
            )),
            None => None,
        }
    }

    pub(crate) fn has_failed(&self) -> bool {
        lock(&self.q).failed
    }

    /// Records a *foreground* failure as the sticky engine error. Used
    /// when a fallible step between freezing the memtable and enqueuing
    /// its flush dies: the immutable slot is occupied but no flush will
    /// ever drain it, so waiters must bail on `failed` instead of
    /// blocking (or spinning) on a drain that cannot come.
    pub(crate) fn record_failure(&self, e: StorageError) {
        let mut q = lock(&self.q);
        q.failed = true;
        if q.error.is_none() {
            q.error = Some(e);
        }
        drop(q);
        self.done_cv.notify_all();
    }

    pub(crate) fn pause_compaction(&self) {
        lock(&self.q).paused_compaction = true;
    }

    pub(crate) fn resume_compaction(&self) {
        lock(&self.q).paused_compaction = false;
        self.work_cv.notify_all();
    }

    /// Clears `flush_pending` after an explicit (foreground) flush drained
    /// the immutable memtable, so stalled writers stop waiting for the
    /// queued background job.
    pub(crate) fn flush_drained(&self) {
        lock(&self.q).flush_pending = false;
        self.done_cv.notify_all();
    }

    /// Wakes everyone waiting for progress (version installed, L0 changed).
    pub(crate) fn notify_progress(&self) {
        self.done_cv.notify_all();
    }

    /// Blocks until the pending flush completes (or shutdown/failure).
    pub(crate) fn wait_flush_drained(&self) {
        let mut q = lock(&self.q);
        while q.flush_pending && !q.shutdown && !q.failed {
            let (g, _) = self
                .done_cv
                .wait_timeout(q, Duration::from_millis(20))
                .unwrap_or_else(PoisonError::into_inner);
            q = g;
        }
    }

    /// Blocks until `cond()` holds (or shutdown/failure). `cond` must not
    /// take any engine lock above the queue mutex in the hierarchy.
    pub(crate) fn wait_progress_until(&self, cond: impl Fn() -> bool) {
        let mut q = lock(&self.q);
        while !cond() && !q.shutdown && !q.failed {
            let (g, _) = self
                .done_cv
                .wait_timeout(q, Duration::from_millis(20))
                .unwrap_or_else(PoisonError::into_inner);
            q = g;
        }
    }

    /// Blocks until no job is queued, running, or pending.
    pub(crate) fn wait_idle(&self) {
        let mut q = lock(&self.q);
        while !q.shutdown && (!q.jobs.is_empty() || q.inflight > 0 || q.flush_pending) {
            // a failed flush never clears flush_pending; don't wait on it
            if q.failed && q.jobs.is_empty() && q.inflight == 0 {
                break;
            }
            let (g, _) = self
                .done_cv
                .wait_timeout(q, Duration::from_millis(20))
                .unwrap_or_else(PoisonError::into_inner);
            q = g;
        }
    }

    /// Runs a batch of sub-compaction shard tasks, fanning them out across
    /// the worker pool, and returns once every task has finished.
    ///
    /// The calling thread (the compaction coordinator) **helps**: it pops
    /// and runs queued shard tasks itself while waiting. That makes the
    /// batch deadlock-free by construction — even with every worker busy
    /// (or a one-worker pool whose only worker *is* the coordinator), the
    /// coordinator alone drains the queue. Shutdown mid-batch is likewise
    /// safe: workers stop taking shard tasks, and the coordinator finishes
    /// the remainder before returning.
    pub(crate) fn run_shard_batch(&self, tasks: Vec<ShardTask>) {
        let batch = Arc::new(ShardBatch {
            remaining: Mutex::new(tasks.len()),
            done_cv: Condvar::new(),
        });
        {
            let mut q = lock(&self.q);
            for task in tasks {
                let guard = ShardDoneGuard {
                    batch: Arc::clone(&batch),
                };
                q.shard_tasks.push_back(Box::new(move || {
                    let _guard = guard;
                    task();
                }));
            }
        }
        self.work_cv.notify_all();
        loop {
            let task = lock(&self.q).shard_tasks.pop_front();
            match task {
                Some(t) => t(),
                None => {
                    let n = batch
                        .remaining
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    if *n == 0 {
                        return;
                    }
                    // bounded wait: a worker may still be mid-shard
                    let (n, _) = batch
                        .done_cv
                        .wait_timeout(n, Duration::from_millis(20))
                        .unwrap_or_else(PoisonError::into_inner);
                    if *n == 0 {
                        return;
                    }
                }
            }
        }
    }

    /// Signals shutdown and wakes every waiter. Called by `DbCore::drop`.
    pub(crate) fn begin_shutdown(&self) {
        lock(&self.q).shutdown = true;
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Pops the next runnable work item; blocks while none is runnable.
    /// Returns `None` on shutdown. Shard tasks take priority (they belong
    /// to a compaction already in flight); flushes always run; compact
    /// jobs are skipped while compaction is paused.
    fn next_work(&self) -> Option<Work> {
        let mut q = lock(&self.q);
        loop {
            if q.shutdown {
                return None;
            }
            if let Some(t) = q.shard_tasks.pop_front() {
                return Some(Work::Shard(t));
            }
            let runnable = q
                .jobs
                .iter()
                .position(|j| *j == Job::Flush || !q.paused_compaction);
            if let Some(idx) = runnable {
                let job = q.jobs.remove(idx).unwrap();
                q.inflight += 1;
                return Some(Work::Job(job));
            }
            let (g, _) = self
                .work_cv
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            q = g;
        }
    }

    /// Records a job's completion: clears per-job flags, stores the first
    /// error, and wakes progress waiters.
    fn complete(&self, job: Job, result: Result<(), StorageError>) {
        let mut q = lock(&self.q);
        q.inflight -= 1;
        if job == Job::Flush {
            q.flush_pending = false;
        }
        if let Err(e) = result {
            q.failed = true;
            if q.error.is_none() {
                q.error = Some(e);
            }
        }
        drop(q);
        self.done_cv.notify_all();
    }
}

/// Worker thread body. Holds only a `Weak` engine reference while idle,
/// so dropping the last user handle shuts the pool down; a strong
/// reference is taken per job. If the last handle drops *during* a job,
/// `DbCore::drop` runs on this worker thread — its join loop skips the
/// current thread to avoid self-join.
pub(crate) fn worker_loop(bg: Arc<BgState>, core: Weak<DbCore>) {
    while let Some(work) = bg.next_work() {
        let job = match work {
            // shard tasks are self-contained (they own their inputs); run
            // and go back for more without touching the engine
            Work::Shard(t) => {
                t();
                continue;
            }
            Work::Job(job) => job,
        };
        let Some(db) = core.upgrade() else {
            bg.complete(job, Ok(()));
            return;
        };
        let result = match job {
            Job::Flush => {
                db.obs().registry().counter("bg.flush_jobs").inc();
                db.run_flush()
            }
            Job::Compact => {
                db.obs().registry().counter("bg.compact_jobs").inc();
                run_compact_job(&bg, &db)
            }
        };
        bg.complete(job, result);
        drop(db);
    }
}

/// Runs the compaction cascade to quiescence, re-queuing itself if paused
/// and closing the finished-vs-new-flush race by re-checking the planner
/// after clearing the dedupe flag.
fn run_compact_job(bg: &BgState, db: &DbCore) -> Result<(), StorageError> {
    if lock(&bg.q).paused_compaction {
        bg.requeue_compact();
        return Ok(());
    }
    db.compact_to_quiescence(|| lock(&bg.q).paused_compaction || lock(&bg.q).shutdown)?;
    if lock(&bg.q).paused_compaction {
        bg.requeue_compact();
        return Ok(());
    }
    bg.compact_finished();
    if db.compaction_needed() {
        bg.schedule_compact();
    }
    Ok(())
}
