//! Internal entry representation: user key + sequence number + kind.
//!
//! Deletes are out-of-place tombstones (tutorial Module I.1): a `Delete`
//! entry shadows older versions of its key until compaction garbage-
//! collects both at the last level.

/// What an entry represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// A live value.
    Put,
    /// A tombstone.
    Delete,
}

impl ValueKind {
    /// Single-byte encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            ValueKind::Put => 0,
            ValueKind::Delete => 1,
        }
    }

    /// Decodes [`ValueKind::to_u8`].
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(ValueKind::Put),
            1 => Some(ValueKind::Delete),
            _ => None,
        }
    }
}

/// A fully-resolved internal entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InternalEntry {
    /// User key.
    pub key: Vec<u8>,
    /// Monotone sequence number; higher = newer.
    pub seqno: u64,
    /// Put or tombstone.
    pub kind: ValueKind,
    /// Value bytes (empty for tombstones).
    pub value: Vec<u8>,
}

impl InternalEntry {
    /// A live entry.
    pub fn put(key: Vec<u8>, seqno: u64, value: Vec<u8>) -> Self {
        InternalEntry {
            key,
            seqno,
            kind: ValueKind::Put,
            value,
        }
    }

    /// A tombstone.
    pub fn delete(key: Vec<u8>, seqno: u64) -> Self {
        InternalEntry {
            key,
            seqno,
            kind: ValueKind::Delete,
            value: Vec::new(),
        }
    }

    /// Whether this entry is a tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.kind == ValueKind::Delete
    }

    /// Internal ordering: ascending user key, then descending seqno, so a
    /// forward merge sees the newest version of each key first.
    pub fn internal_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| other.seqno.cmp(&self.seqno))
    }

    /// Approximate in-memory footprint in bytes.
    pub fn footprint(&self) -> usize {
        self.key.len() + self.value.len() + 16
    }
}

/// Variable-length integer encoding (LEB128), used throughout the block
/// and log formats.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a varint; returns `(value, bytes_consumed)`.
pub fn get_varint(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        assert_eq!(ValueKind::from_u8(ValueKind::Put.to_u8()), Some(ValueKind::Put));
        assert_eq!(
            ValueKind::from_u8(ValueKind::Delete.to_u8()),
            Some(ValueKind::Delete)
        );
        assert_eq!(ValueKind::from_u8(9), None);
    }

    #[test]
    fn internal_order_newest_first() {
        let a = InternalEntry::put(b"k".to_vec(), 5, vec![]);
        let b = InternalEntry::put(b"k".to_vec(), 9, vec![]);
        assert_eq!(b.internal_cmp(&a), std::cmp::Ordering::Less, "newer sorts first");
        let c = InternalEntry::put(b"a".to_vec(), 1, vec![]);
        assert_eq!(c.internal_cmp(&a), std::cmp::Ordering::Less, "key order dominates");
    }

    #[test]
    fn tombstones() {
        let t = InternalEntry::delete(b"k".to_vec(), 3);
        assert!(t.is_tombstone());
        assert!(t.value.is_empty());
        assert!(!InternalEntry::put(b"k".to_vec(), 3, vec![1]).is_tombstone());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let (back, used) = get_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_sizes() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_varint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        put_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        assert_eq!(get_varint(&[]), None);
        assert_eq!(get_varint(&[0x80]), None);
        assert_eq!(get_varint(&[0x80; 11]), None);
    }

    #[test]
    fn varint_ignores_trailing_bytes() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 300);
        buf.extend_from_slice(b"rest");
        let (v, used) = get_varint(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(used, 2);
    }
}
