//! Long-lived snapshots (tutorial Module I.1: "a scan operates over a
//! version (or snapshot) of the data — the collection of files that were
//! active and live at the time the scan began").
//!
//! A [`Snapshot`] pins a memtable copy and a [`Version`]; the `Arc`ed
//! tables keep their files alive even after compactions supersede them
//! (physical deletion happens when the last reference drops), so a
//! snapshot stays readable for as long as it is held — without blocking
//! writers, unlike [`crate::Db::iter_range`]'s lock-holding iterator.

use std::ops::{Bound, Range};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lsm_cache::ShardedCache;
use lsm_storage::{Block, StorageDevice, StorageError, StorageResult};

use crate::entry::{InternalEntry, ValueKind};
use crate::iter::{MergingIter, RunIterator, Source};
use crate::kv_sep::{decode_value, read_pointer_from_device};
use crate::memtable::Memtable;
use crate::version::Version;

/// An immutable point-in-time view of the database.
pub struct Snapshot {
    pub(crate) mem: Memtable,
    /// Frozen memtable awaiting flush at snapshot time (`Threaded` mode);
    /// older than `mem`, younger than every sorted run.
    pub(crate) imm: Option<Arc<Memtable>>,
    pub(crate) version: Arc<Version>,
    pub(crate) cache: Option<Arc<ShardedCache<Block>>>,
    pub(crate) device: Arc<dyn StorageDevice>,
    pub(crate) kv_separation: bool,
    /// Keeps the engine's snapshot count accurate; value-log GC refuses to
    /// run while snapshots are outstanding (their pointers reference logs
    /// GC would destroy). Held purely for its `Drop`.
    #[allow(dead_code)]
    pub(crate) pin: SnapshotPin,
}

/// RAII pin on the engine's outstanding-snapshot counter.
pub(crate) struct SnapshotPin {
    pub(crate) counter: Arc<AtomicUsize>,
}

impl SnapshotPin {
    pub(crate) fn new(counter: Arc<AtomicUsize>) -> Self {
        counter.fetch_add(1, Ordering::AcqRel);
        SnapshotPin { counter }
    }
}

impl Drop for SnapshotPin {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Snapshot {
    fn resolve(&self, raw: Vec<u8>) -> StorageResult<Vec<u8>> {
        if !self.kv_separation {
            return Ok(raw);
        }
        match decode_value(&raw) {
            Some(Ok(inline)) => Ok(inline.to_vec()),
            Some(Err(ptr)) => read_pointer_from_device(&self.device, ptr),
            None => Err(StorageError::Corruption("bad separated value".into())),
        }
    }

    /// Point lookup against the snapshot.
    pub fn get(&self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        let mem_hit = self
            .mem
            .get(key)
            .or_else(|| self.imm.as_ref().and_then(|m| m.get(key)));
        if let Some(e) = mem_hit {
            return match e.kind {
                ValueKind::Delete => Ok(None),
                ValueKind::Put => Ok(Some(self.resolve(e.value)?)),
            };
        }
        for level in &self.version.levels {
            for run in &level.runs {
                let Some(table) = run.table_for(key) else { continue };
                let got = table.get(key, self.cache.as_deref())?;
                if let Some(e) = got.entry {
                    return match e.kind {
                        ValueKind::Delete => Ok(None),
                        ValueKind::Put => Ok(Some(self.resolve(e.value)?)),
                    };
                }
            }
        }
        Ok(None)
    }

    /// Range scan against the snapshot: up to `limit` live entries with
    /// `range.start ≤ key < range.end`, in key order.
    pub fn scan(
        &self,
        range: Range<Vec<u8>>,
        limit: usize,
    ) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        if range.start >= range.end {
            return Ok(Vec::new());
        }
        let start = range.start.as_slice();
        let end = range.end.as_slice();
        let mut sources = Vec::new();
        let mem_entries: Vec<InternalEntry> = self
            .mem
            .range(Bound::Included(start), Bound::Excluded(end))
            .collect();
        sources.push(Source::mem(mem_entries));
        if let Some(imm) = &self.imm {
            let imm_entries: Vec<InternalEntry> = imm
                .range(Bound::Included(start), Bound::Excluded(end))
                .collect();
            sources.push(Source::mem(imm_entries));
        }
        for level in &self.version.levels {
            for run in &level.runs {
                let tables: Vec<_> = run.overlapping(start, end).to_vec();
                if !tables.is_empty() {
                    sources.push(Source::Run(RunIterator::new(
                        tables,
                        start.to_vec(),
                        self.cache.clone(),
                    )));
                }
            }
        }
        let mut merger = MergingIter::new(sources, false)?;
        let entries = merger.collect_until(Some(end), false, limit)?;
        entries
            .into_iter()
            .map(|e| Ok((e.key, self.resolve(e.value)?)))
            .collect()
    }

    /// Number of entries visible to the snapshot (approximate: shadowed
    /// versions across runs counted once per run).
    pub fn approximate_entries(&self) -> u64 {
        self.version.total_entries()
            + self.mem.len() as u64
            + self.imm.as_ref().map_or(0, |m| m.len() as u64)
    }
}
