//! Versions: immutable snapshots of the tree's storage layout.
//!
//! A [`Version`] is the list of levels; each level holds sorted runs
//! (youngest first); each [`SortedRun`] is a list of key-disjoint tables.
//! Leveled layouts keep one (partitioned) run per level; tiered layouts
//! accumulate up to `T-1`. Versions are copy-on-write: flush and
//! compaction build a new `Version` and swap it in atomically, so readers
//! and scans keep a consistent view — the "snapshot" the tutorial's scan
//! semantics require.

use std::sync::Arc;

use crate::sstable::Table;

/// A sorted run: tables with pairwise-disjoint key ranges, in key order.
#[derive(Clone, Default)]
pub struct SortedRun {
    /// The run's tables, ascending by key range.
    pub tables: Vec<Arc<Table>>,
}

impl SortedRun {
    /// A run of one table.
    pub fn single(table: Arc<Table>) -> Self {
        SortedRun {
            tables: vec![table],
        }
    }

    /// A run from key-ordered tables.
    pub fn from_tables(tables: Vec<Arc<Table>>) -> Self {
        debug_assert!(
            tables
                .windows(2)
                .all(|w| w[0].meta().max_key < w[1].meta().min_key),
            "run tables must be disjoint and ordered"
        );
        SortedRun { tables }
    }

    /// Smallest key in the run.
    pub fn min_key(&self) -> Option<&[u8]> {
        self.tables.first().map(|t| t.meta().min_key.as_slice())
    }

    /// Largest key in the run.
    pub fn max_key(&self) -> Option<&[u8]> {
        self.tables.last().map(|t| t.meta().max_key.as_slice())
    }

    /// Total entries across tables.
    pub fn num_entries(&self) -> u64 {
        self.tables.iter().map(|t| t.meta().num_entries).sum()
    }

    /// Approximate bytes across tables.
    pub fn bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.data_bytes()).sum()
    }

    /// The table that may contain `key` (tables are disjoint, so at most
    /// one).
    pub fn table_for(&self, key: &[u8]) -> Option<&Arc<Table>> {
        let idx = self
            .tables
            .partition_point(|t| t.meta().max_key.as_slice() < key);
        let t = self.tables.get(idx)?;
        t.meta().key_in_range(key).then_some(t)
    }

    /// Tables whose key range intersects `[lo, hi]` (inclusive).
    pub fn overlapping(&self, lo: &[u8], hi: &[u8]) -> &[Arc<Table>] {
        let start = self
            .tables
            .partition_point(|t| t.meta().max_key.as_slice() < lo);
        let end = self
            .tables
            .partition_point(|t| t.meta().min_key.as_slice() <= hi);
        &self.tables[start.min(end)..end]
    }

    /// Whether the run holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// One level of the tree.
#[derive(Clone, Default)]
pub struct Level {
    /// Sorted runs, youngest first.
    pub runs: Vec<SortedRun>,
}

impl Level {
    /// Total bytes across runs.
    pub fn bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.bytes()).sum()
    }

    /// Total entries across runs.
    pub fn num_entries(&self) -> u64 {
        self.runs.iter().map(|r| r.num_entries()).sum()
    }

    /// Whether the level holds no data.
    pub fn is_empty(&self) -> bool {
        self.runs.iter().all(|r| r.is_empty())
    }
}

/// An immutable snapshot of the storage layout.
#[derive(Clone, Default)]
pub struct Version {
    /// Levels, level 0 (youngest) first. May contain empty trailing levels.
    pub levels: Vec<Level>,
}

impl Version {
    /// Empty tree.
    pub fn new() -> Self {
        Version::default()
    }

    /// Index of the deepest non-empty level, if any.
    pub fn last_occupied_level(&self) -> Option<usize> {
        self.levels.iter().rposition(|l| !l.is_empty())
    }

    /// Number of levels with data.
    pub fn occupied_levels(&self) -> usize {
        self.last_occupied_level().map_or(0, |i| i + 1)
    }

    /// Total sorted runs (the quantity lookups probe).
    pub fn total_runs(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.runs.iter().filter(|r| !r.is_empty()).count())
            .sum()
    }

    /// Total entries stored.
    pub fn total_entries(&self) -> u64 {
        self.levels.iter().map(|l| l.num_entries()).sum()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.bytes()).sum()
    }

    /// Per-level entry counts (for Monkey allocation), level 0 first;
    /// empty levels report 0.
    pub fn entries_per_level(&self) -> Vec<u64> {
        self.levels.iter().map(|l| l.num_entries()).collect()
    }

    /// Every table id referenced by this version.
    pub fn all_table_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        for l in &self.levels {
            for r in &l.runs {
                for t in &r.tables {
                    ids.push(t.id());
                }
            }
        }
        ids
    }

    /// Ensures `levels` has at least `n` entries.
    pub fn ensure_levels(&mut self, n: usize) {
        while self.levels.len() < n {
            self.levels.push(Level::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsmConfig;
    use crate::entry::ValueKind;
    use crate::sstable::TableBuilder;
    use lsm_index::IndexKind;
    use lsm_storage::{DeviceProfile, MemDevice, StorageDevice};

    fn table(range: std::ops::Range<usize>) -> Arc<Table> {
        let dev: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
        let cfg = LsmConfig {
            block_size: 512,
            ..LsmConfig::small_for_tests()
        };
        let mut b = TableBuilder::new(dev, &cfg, 10.0).unwrap();
        for i in range {
            b.add(format!("key{i:06}").as_bytes(), i as u64, ValueKind::Put, b"v")
                .unwrap();
        }
        let (file, _) = b.finish().unwrap();
        Table::open(file, IndexKind::Fence).unwrap()
    }

    #[test]
    fn run_table_for_uses_disjointness() {
        let run = SortedRun::from_tables(vec![table(0..100), table(200..300), table(400..500)]);
        assert!(run.table_for(b"key000050").is_some());
        assert!(run.table_for(b"key000150").is_none(), "gap between tables");
        assert!(run.table_for(b"key000250").is_some());
        assert!(run.table_for(b"key999999").is_none());
        assert_eq!(run.min_key().unwrap(), b"key000000");
        assert_eq!(run.max_key().unwrap(), b"key000499");
    }

    #[test]
    fn run_overlapping_slices() {
        let run = SortedRun::from_tables(vec![table(0..100), table(200..300), table(400..500)]);
        assert_eq!(run.overlapping(b"key000050", b"key000250").len(), 2);
        assert_eq!(run.overlapping(b"key000100x", b"key000150").len(), 0);
        assert_eq!(run.overlapping(b"", b"zzz").len(), 3);
        assert_eq!(run.overlapping(b"key000400", b"key000400").len(), 1);
    }

    #[test]
    fn version_accounting() {
        let mut v = Version::new();
        v.ensure_levels(3);
        v.levels[0].runs.push(SortedRun::single(table(0..100)));
        v.levels[0].runs.push(SortedRun::single(table(100..200)));
        v.levels[2].runs.push(SortedRun::single(table(0..500)));
        assert_eq!(v.occupied_levels(), 3);
        assert_eq!(v.last_occupied_level(), Some(2));
        assert_eq!(v.total_runs(), 3);
        assert_eq!(v.total_entries(), 700);
        assert_eq!(v.entries_per_level(), vec![200, 0, 500]);
        assert_eq!(v.all_table_ids().len(), 3);
        assert!(v.levels[1].is_empty());
    }

    #[test]
    fn empty_version() {
        let v = Version::new();
        assert_eq!(v.occupied_levels(), 0);
        assert_eq!(v.last_occupied_level(), None);
        assert_eq!(v.total_runs(), 0);
        assert_eq!(v.total_bytes(), 0);
    }

    #[test]
    fn clone_is_cheap_snapshot() {
        let mut v = Version::new();
        v.ensure_levels(1);
        v.levels[0].runs.push(SortedRun::single(table(0..50)));
        let snap = v.clone();
        v.levels[0].runs.clear();
        assert_eq!(snap.total_entries(), 50, "snapshot unaffected by mutation");
        assert_eq!(v.total_entries(), 0);
    }
}
