//! Merging iterators: the scan path (tutorial Module I.1's `scan`).
//!
//! A scan assigns one iterator per qualifying source (memtable + every
//! sorted run), merges them in key order, keeps only the newest version of
//! each key (sources are ranked youngest-first), and suppresses tombstoned
//! keys. Compaction reuses the same merge with tombstone retention.
//!
//! Every source is a *cursor* — `advance()` then `key()`/`value()` — so
//! merged entries are borrowed views into pinned blocks; bytes are copied
//! only where a caller materializes them ([`MergingIter::next_visible`],
//! a table builder, a wire encoder).

use std::sync::Arc;

use lsm_cache::ShardedCache;
use lsm_storage::{Block, StorageResult};

use crate::entry::{InternalEntry, ValueKind};
use crate::sstable::block::KeyBuf;
use crate::sstable::{Table, TableIterator};

/// Lazily chains the iterators of a run's key-ordered, disjoint tables:
/// a table is opened (and its first block read) only when the scan
/// actually reaches its key range — a 10-entry scan over a 100-table run
/// touches one or two tables, not all of them.
pub struct RunIterator {
    tables: std::vec::IntoIter<Arc<Table>>,
    cache: Option<Arc<ShardedCache<Block>>>,
    start: Vec<u8>,
    current: Option<TableIterator>,
    first: bool,
}

impl RunIterator {
    /// Iterator over `tables` (key-ordered, disjoint) from `start`.
    pub fn new(
        tables: Vec<Arc<Table>>,
        start: Vec<u8>,
        cache: Option<Arc<ShardedCache<Block>>>,
    ) -> Self {
        RunIterator {
            tables: tables.into_iter(),
            cache,
            start,
            current: None,
            first: true,
        }
    }

    /// Moves to the next entry; `Ok(false)` = run exhausted.
    pub fn advance(&mut self) -> StorageResult<bool> {
        loop {
            if let Some(it) = &mut self.current {
                if it.advance()? {
                    return Ok(true);
                }
                self.current = None;
            }
            let Some(table) = self.tables.next() else {
                return Ok(false);
            };
            // only the first table needs to seek; later tables start past
            // `start` by disjointness
            let from: &[u8] = if self.first { &self.start } else { b"" };
            self.first = false;
            self.current = Some(table.iter_from(from, self.cache.clone())?);
        }
    }

    fn cur(&self) -> &TableIterator {
        self.current.as_ref().expect("valid cursor")
    }

    /// Current key.
    pub fn key(&self) -> &[u8] {
        self.cur().key()
    }

    /// Current value, borrowed from the pinned block.
    pub fn value(&self) -> &[u8] {
        self.cur().value()
    }

    /// Current sequence number.
    pub fn seqno(&self) -> u64 {
        self.cur().seqno()
    }

    /// Current entry kind.
    pub fn kind(&self) -> ValueKind {
        self.cur().kind()
    }
}

/// A table iterator clipped to `[start, hi)` that counts every entry it
/// yields — the per-shard input view of a sub-compaction (see
/// [`crate::compaction::subcompact`]). The entry that first reaches `hi`
/// belongs to the next shard; it ends this source without being counted.
pub struct BoundedTableIter {
    it: TableIterator,
    hi: Option<Vec<u8>>,
    /// Entries pulled in-range, shared so a shard can sum its sources.
    pulled: Arc<std::sync::atomic::AtomicU64>,
    done: bool,
}

impl BoundedTableIter {
    /// Iterator over `table` from `start` (inclusive) up to `hi`
    /// (exclusive; `None` = unbounded), counting pulls into `pulled`.
    pub fn new(
        table: &Arc<Table>,
        start: &[u8],
        hi: Option<Vec<u8>>,
        pulled: Arc<std::sync::atomic::AtomicU64>,
    ) -> StorageResult<Self> {
        Ok(BoundedTableIter {
            it: table.iter_from(start, None)?,
            hi,
            pulled,
            done: false,
        })
    }

    /// Moves to the next in-range entry; `Ok(false)` = clipped or done.
    pub fn advance(&mut self) -> StorageResult<bool> {
        if self.done {
            return Ok(false);
        }
        if !self.it.advance()? {
            self.done = true;
            return Ok(false);
        }
        if let Some(hi) = &self.hi {
            if self.it.key() >= hi.as_slice() {
                self.done = true;
                return Ok(false);
            }
        }
        self.pulled
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(true)
    }

    /// Current key.
    pub fn key(&self) -> &[u8] {
        self.it.key()
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        self.it.value()
    }

    /// Current sequence number.
    pub fn seqno(&self) -> u64 {
        self.it.seqno()
    }

    /// Current entry kind.
    pub fn kind(&self) -> ValueKind {
        self.it.kind()
    }
}

/// In-memory source over already-sorted owned entries (memtable drains,
/// tests).
pub struct MemSource {
    entries: Vec<InternalEntry>,
    /// Index of the next entry to serve; `cur = next - 1` once advanced.
    next: usize,
}

impl MemSource {
    fn cur(&self) -> &InternalEntry {
        &self.entries[self.next - 1]
    }
}

/// A source of key-ordered entries.
pub enum Source {
    /// Drained memtable entries (already key-ordered).
    Mem(MemSource),
    /// A table iterator.
    Table(TableIterator),
    /// A lazy iterator over one sorted run.
    Run(RunIterator),
    /// A key-range-clipped, pull-counting table iterator (sub-compactions).
    BoundedTable(BoundedTableIter),
}

impl Source {
    /// In-memory source over sorted owned entries.
    pub fn mem(entries: Vec<InternalEntry>) -> Source {
        Source::Mem(MemSource { entries, next: 0 })
    }

    fn advance(&mut self) -> StorageResult<bool> {
        match self {
            Source::Mem(s) => {
                if s.next < s.entries.len() {
                    s.next += 1;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            Source::Table(it) => it.advance(),
            Source::Run(it) => it.advance(),
            Source::BoundedTable(it) => it.advance(),
        }
    }

    fn key(&self) -> &[u8] {
        match self {
            Source::Mem(s) => &s.cur().key,
            Source::Table(it) => it.key(),
            Source::Run(it) => it.key(),
            Source::BoundedTable(it) => it.key(),
        }
    }

    fn value(&self) -> &[u8] {
        match self {
            Source::Mem(s) => &s.cur().value,
            Source::Table(it) => it.value(),
            Source::Run(it) => it.value(),
            Source::BoundedTable(it) => it.value(),
        }
    }

    fn seqno(&self) -> u64 {
        match self {
            Source::Mem(s) => s.cur().seqno,
            Source::Table(it) => it.seqno(),
            Source::Run(it) => it.seqno(),
            Source::BoundedTable(it) => it.seqno(),
        }
    }

    fn kind(&self) -> ValueKind {
        match self {
            Source::Mem(s) => s.cur().kind,
            Source::Table(it) => it.kind(),
            Source::Run(it) => it.kind(),
            Source::BoundedTable(it) => it.kind(),
        }
    }
}

/// K-way merge with newest-version-wins semantics.
///
/// Sources must be supplied **youngest first**: on equal keys the
/// lowest-index source provides the visible version (its seqno is
/// necessarily the highest, by the LSM invariant).
///
/// The merge itself is a cursor: [`MergingIter::advance_visible`] then
/// `key()`/`value()` borrow the winning entry in place. The previous
/// winner's key is kept in an inline scratch buffer for duplicate
/// suppression, so steady-state merging allocates nothing.
pub struct MergingIter {
    sources: Vec<Source>,
    valid: Vec<bool>,
    /// Source holding the current visible entry (not yet stepped past).
    winner: Option<usize>,
    /// Key (and seqno) of the winner being stepped past, for duplicate
    /// suppression across sources.
    prev_key: KeyBuf,
    prev_seqno: u64,
    /// Keep tombstones in the output (compaction into non-last levels).
    keep_tombstones: bool,
}

impl MergingIter {
    /// Builds the merge; pulls the first entry of every source.
    pub fn new(sources: Vec<Source>, keep_tombstones: bool) -> StorageResult<Self> {
        let mut sources = sources;
        let mut valid = Vec::with_capacity(sources.len());
        for s in sources.iter_mut() {
            valid.push(s.advance()?);
        }
        Ok(MergingIter {
            sources,
            valid,
            winner: None,
            prev_key: KeyBuf::new(),
            prev_seqno: 0,
            keep_tombstones,
        })
    }

    /// Moves to the next visible entry in ascending key order;
    /// `Ok(false)` = merge exhausted. On `Ok(true)` the accessors view
    /// the winning entry without copying.
    ///
    /// With `keep_tombstones`, tombstones are emitted (newest version per
    /// key, including `Delete` kinds); without it, tombstoned keys are
    /// silently skipped — the read-path behaviour.
    pub fn advance_visible(&mut self) -> StorageResult<bool> {
        loop {
            if let Some(w) = self.winner.take() {
                // step past the previous winner and every older version of
                // its key in all sources
                let sources = &mut self.sources;
                let prev_key = &mut self.prev_key;
                prev_key.set(sources[w].key());
                self.prev_seqno = sources[w].seqno();
                self.valid[w] = sources[w].advance()?;
                for (i, src) in sources.iter_mut().enumerate() {
                    while self.valid[i] && src.key() == prev_key.as_slice() {
                        debug_assert!(
                            src.seqno() <= self.prev_seqno,
                            "older source carried a newer seqno"
                        );
                        self.valid[i] = src.advance()?;
                    }
                }
            }
            // find the smallest head key; among equals, the youngest source
            let mut best: Option<usize> = None;
            for i in 0..self.sources.len() {
                if !self.valid[i] {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(b) if self.sources[i].key() < self.sources[b].key() => Some(i),
                    b => b,
                };
            }
            let Some(w) = best else {
                return Ok(false);
            };
            self.winner = Some(w);
            if self.sources[w].kind() == ValueKind::Delete && !self.keep_tombstones {
                continue;
            }
            return Ok(true);
        }
    }

    fn cur(&self) -> &Source {
        &self.sources[self.winner.expect("valid merge cursor")]
    }

    /// Current key.
    pub fn key(&self) -> &[u8] {
        self.cur().key()
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        self.cur().value()
    }

    /// Current sequence number.
    pub fn seqno(&self) -> u64 {
        self.cur().seqno()
    }

    /// Current entry kind.
    pub fn kind(&self) -> ValueKind {
        self.cur().kind()
    }

    /// Next visible entry, materialized (owned convenience wrapper over
    /// [`MergingIter::advance_visible`]).
    pub fn next_visible(&mut self) -> StorageResult<Option<InternalEntry>> {
        Ok(if self.advance_visible()? {
            Some(InternalEntry {
                key: self.key().to_vec(),
                seqno: self.seqno(),
                kind: self.kind(),
                value: self.value().to_vec(),
            })
        } else {
            None
        })
    }

    /// Collects up to `limit` visible entries with key ≤ `end` (inclusive
    /// when `Some`).
    pub fn collect_until(
        &mut self,
        end: Option<&[u8]>,
        end_inclusive: bool,
        limit: usize,
    ) -> StorageResult<Vec<InternalEntry>> {
        let mut out = Vec::new();
        while out.len() < limit {
            if !self.advance_visible()? {
                break;
            }
            if let Some(end) = end {
                let past = if end_inclusive {
                    self.key() > end
                } else {
                    self.key() >= end
                };
                if past {
                    break;
                }
            }
            out.push(InternalEntry {
                key: self.key().to_vec(),
                seqno: self.seqno(),
                kind: self.kind(),
                value: self.value().to_vec(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(entries: Vec<(&str, u64, ValueKind, &str)>) -> Source {
        Source::mem(
            entries
                .into_iter()
                .map(|(k, s, kind, v)| InternalEntry {
                    key: k.as_bytes().to_vec(),
                    seqno: s,
                    kind,
                    value: v.as_bytes().to_vec(),
                })
                .collect(),
        )
    }

    #[test]
    fn merges_in_key_order() {
        let a = mem(vec![("a", 1, ValueKind::Put, "1"), ("c", 2, ValueKind::Put, "3")]);
        let b = mem(vec![("b", 3, ValueKind::Put, "2"), ("d", 4, ValueKind::Put, "4")]);
        let mut m = MergingIter::new(vec![a, b], false).unwrap();
        let keys: Vec<Vec<u8>> = std::iter::from_fn(|| m.next_visible().unwrap())
            .map(|e| e.key)
            .collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
    }

    #[test]
    fn youngest_source_wins_on_duplicates() {
        let newer = mem(vec![("k", 9, ValueKind::Put, "new")]);
        let older = mem(vec![("k", 3, ValueKind::Put, "old")]);
        let mut m = MergingIter::new(vec![newer, older], false).unwrap();
        let e = m.next_visible().unwrap().unwrap();
        assert_eq!(e.value, b"new".to_vec());
        assert_eq!(e.seqno, 9);
        assert!(m.next_visible().unwrap().is_none());
    }

    #[test]
    fn tombstones_suppress_older_versions() {
        let newer = mem(vec![("k", 9, ValueKind::Delete, "")]);
        let older = mem(vec![("k", 3, ValueKind::Put, "old")]);
        let mut m = MergingIter::new(vec![newer, older], false).unwrap();
        assert!(m.next_visible().unwrap().is_none(), "deleted key invisible");
    }

    #[test]
    fn compaction_mode_keeps_tombstones() {
        let newer = mem(vec![("k", 9, ValueKind::Delete, "")]);
        let older = mem(vec![("k", 3, ValueKind::Put, "old")]);
        let mut m = MergingIter::new(vec![newer, older], true).unwrap();
        let e = m.next_visible().unwrap().unwrap();
        assert_eq!(e.kind, ValueKind::Delete);
        assert_eq!(e.seqno, 9);
        assert!(m.next_visible().unwrap().is_none(), "old version still dropped");
    }

    #[test]
    fn collect_until_respects_end_and_limit() {
        let src = mem(vec![
            ("a", 1, ValueKind::Put, ""),
            ("b", 2, ValueKind::Put, ""),
            ("c", 3, ValueKind::Put, ""),
            ("d", 4, ValueKind::Put, ""),
        ]);
        let mut m = MergingIter::new(vec![src], false).unwrap();
        let got = m.collect_until(Some(b"c"), false, 100).unwrap();
        assert_eq!(got.len(), 2, "exclusive end");
        let src = mem(vec![
            ("a", 1, ValueKind::Put, ""),
            ("b", 2, ValueKind::Put, ""),
            ("c", 3, ValueKind::Put, ""),
        ]);
        let mut m = MergingIter::new(vec![src], false).unwrap();
        let got = m.collect_until(Some(b"c"), true, 2).unwrap();
        assert_eq!(got.len(), 2, "limit");
    }

    #[test]
    fn empty_sources() {
        let mut m = MergingIter::new(vec![], false).unwrap();
        assert!(m.next_visible().unwrap().is_none());
        let mut m = MergingIter::new(vec![mem(vec![])], false).unwrap();
        assert!(m.next_visible().unwrap().is_none());
    }

    #[test]
    fn three_way_version_chain() {
        let s1 = mem(vec![("k", 30, ValueKind::Put, "v3")]);
        let s2 = mem(vec![("k", 20, ValueKind::Delete, "")]);
        let s3 = mem(vec![("k", 10, ValueKind::Put, "v1")]);
        let mut m = MergingIter::new(vec![s1, s2, s3], false).unwrap();
        let e = m.next_visible().unwrap().unwrap();
        assert_eq!(e.value, b"v3".to_vec(), "newest put wins over older tombstone");
    }

    #[test]
    fn cursor_accessors_match_owned_output() {
        let a = mem(vec![
            ("a", 5, ValueKind::Put, "va"),
            ("c", 6, ValueKind::Delete, ""),
            ("e", 7, ValueKind::Put, "ve"),
        ]);
        let b = mem(vec![
            ("a", 2, ValueKind::Put, "old"),
            ("b", 3, ValueKind::Put, "vb"),
        ]);
        let mut owned = MergingIter::new(
            vec![
                mem(vec![
                    ("a", 5, ValueKind::Put, "va"),
                    ("c", 6, ValueKind::Delete, ""),
                    ("e", 7, ValueKind::Put, "ve"),
                ]),
                mem(vec![
                    ("a", 2, ValueKind::Put, "old"),
                    ("b", 3, ValueKind::Put, "vb"),
                ]),
            ],
            true,
        )
        .unwrap();
        let mut cursor = MergingIter::new(vec![a, b], true).unwrap();
        while let Some(e) = owned.next_visible().unwrap() {
            assert!(cursor.advance_visible().unwrap());
            assert_eq!(e.key.as_slice(), cursor.key());
            assert_eq!(e.value.as_slice(), cursor.value());
            assert_eq!(e.seqno, cursor.seqno());
            assert_eq!(e.kind, cursor.kind());
        }
        assert!(!cursor.advance_visible().unwrap());
    }
}
