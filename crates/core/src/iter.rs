//! Merging iterators: the scan path (tutorial Module I.1's `scan`).
//!
//! A scan assigns one iterator per qualifying source (memtable + every
//! sorted run), merges them in key order, keeps only the newest version of
//! each key (sources are ranked youngest-first), and suppresses tombstoned
//! keys. Compaction reuses the same merge with tombstone retention.

use std::sync::Arc;

use lsm_cache::ShardedCache;
use lsm_storage::{Block, StorageResult};

use crate::entry::{InternalEntry, ValueKind};
use crate::sstable::{Table, TableIterator};

/// Lazily chains the iterators of a run's key-ordered, disjoint tables:
/// a table is opened (and its first block read) only when the scan
/// actually reaches its key range — a 10-entry scan over a 100-table run
/// touches one or two tables, not all of them.
pub struct RunIterator {
    tables: std::vec::IntoIter<Arc<Table>>,
    cache: Option<Arc<ShardedCache<Block>>>,
    start: Vec<u8>,
    current: Option<TableIterator>,
    first: bool,
}

impl RunIterator {
    /// Iterator over `tables` (key-ordered, disjoint) from `start`.
    pub fn new(
        tables: Vec<Arc<Table>>,
        start: Vec<u8>,
        cache: Option<Arc<ShardedCache<Block>>>,
    ) -> Self {
        RunIterator {
            tables: tables.into_iter(),
            cache,
            start,
            current: None,
            first: true,
        }
    }

    fn next_entry(&mut self) -> StorageResult<Option<crate::sstable::BlockEntry>> {
        loop {
            if let Some(it) = &mut self.current {
                if let Some(e) = it.next_entry()? {
                    return Ok(Some(e));
                }
                self.current = None;
            }
            let Some(table) = self.tables.next() else {
                return Ok(None);
            };
            // only the first table needs to seek; later tables start past
            // `start` by disjointness
            let from: &[u8] = if self.first { &self.start } else { b"" };
            self.first = false;
            self.current = Some(table.iter_from(from, self.cache.clone())?);
        }
    }
}

/// A table iterator clipped to `[start, hi)` that counts every entry it
/// yields — the per-shard input view of a sub-compaction (see
/// [`crate::compaction::subcompact`]). The entry that first reaches `hi`
/// belongs to the next shard; it ends this source without being counted.
pub struct BoundedTableIter {
    it: TableIterator,
    hi: Option<Vec<u8>>,
    /// Entries pulled in-range, shared so a shard can sum its sources.
    pulled: Arc<std::sync::atomic::AtomicU64>,
    done: bool,
}

impl BoundedTableIter {
    /// Iterator over `table` from `start` (inclusive) up to `hi`
    /// (exclusive; `None` = unbounded), counting pulls into `pulled`.
    pub fn new(
        table: &Arc<Table>,
        start: &[u8],
        hi: Option<Vec<u8>>,
        pulled: Arc<std::sync::atomic::AtomicU64>,
    ) -> StorageResult<Self> {
        Ok(BoundedTableIter {
            it: table.iter_from(start, None)?,
            hi,
            pulled,
            done: false,
        })
    }

    fn next_entry(&mut self) -> StorageResult<Option<crate::sstable::BlockEntry>> {
        if self.done {
            return Ok(None);
        }
        let Some(e) = self.it.next_entry()? else {
            self.done = true;
            return Ok(None);
        };
        if let Some(hi) = &self.hi {
            if e.key.as_slice() >= hi.as_slice() {
                self.done = true;
                return Ok(None);
            }
        }
        self.pulled
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(Some(e))
    }
}

/// A source of key-ordered entries.
pub enum Source {
    /// Drained memtable entries (already key-ordered).
    Mem(std::vec::IntoIter<InternalEntry>),
    /// A table iterator.
    Table(TableIterator),
    /// A lazy iterator over one sorted run.
    Run(RunIterator),
    /// A key-range-clipped, pull-counting table iterator (sub-compactions).
    BoundedTable(BoundedTableIter),
}

struct PeekedSource {
    source: Source,
    head: Option<InternalEntry>,
}

impl PeekedSource {
    fn new(mut source: Source) -> StorageResult<Self> {
        let head = Self::pull(&mut source)?;
        Ok(PeekedSource { source, head })
    }

    fn pull(source: &mut Source) -> StorageResult<Option<InternalEntry>> {
        let convert = |e: crate::sstable::BlockEntry| InternalEntry {
            key: e.key,
            seqno: e.seqno,
            kind: e.kind,
            value: e.value,
        };
        match source {
            Source::Mem(it) => Ok(it.next()),
            Source::Table(it) => Ok(it.next_entry()?.map(convert)),
            Source::Run(it) => Ok(it.next_entry()?.map(convert)),
            Source::BoundedTable(it) => Ok(it.next_entry()?.map(convert)),
        }
    }

    fn advance(&mut self) -> StorageResult<()> {
        self.head = Self::pull(&mut self.source)?;
        Ok(())
    }
}

/// K-way merge with newest-version-wins semantics.
///
/// Sources must be supplied **youngest first**: on equal keys the
/// lowest-index source provides the visible version (its seqno is
/// necessarily the highest, by the LSM invariant).
pub struct MergingIter {
    sources: Vec<PeekedSource>,
    /// Keep tombstones in the output (compaction into non-last levels).
    keep_tombstones: bool,
}

impl MergingIter {
    /// Builds the merge; pulls the first entry of every source.
    pub fn new(sources: Vec<Source>, keep_tombstones: bool) -> StorageResult<Self> {
        let sources = sources
            .into_iter()
            .map(PeekedSource::new)
            .collect::<StorageResult<Vec<_>>>()?;
        Ok(MergingIter {
            sources,
            keep_tombstones,
        })
    }

    /// Next visible entry in ascending key order.
    ///
    /// With `keep_tombstones`, tombstones are emitted (newest version per
    /// key, including `Delete` kinds); without it, tombstoned keys are
    /// silently skipped — the read-path behaviour.
    pub fn next_visible(&mut self) -> StorageResult<Option<InternalEntry>> {
        loop {
            // find the smallest head key; among equals, the youngest source
            let mut best: Option<usize> = None;
            for (i, s) in self.sources.iter().enumerate() {
                let Some(h) = &s.head else { continue };
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        let bh = self.sources[b].head.as_ref().unwrap();
                        if h.key < bh.key {
                            best = Some(i);
                        }
                    }
                }
            }
            let Some(winner) = best else {
                return Ok(None);
            };
            let entry = self.sources[winner].head.take().unwrap();
            self.sources[winner].advance()?;
            // drop older versions of the same key from every source
            for s in &mut self.sources {
                while s
                    .head
                    .as_ref()
                    .is_some_and(|h| h.key == entry.key)
                {
                    debug_assert!(
                        s.head.as_ref().unwrap().seqno <= entry.seqno,
                        "older source carried a newer seqno"
                    );
                    s.advance()?;
                }
            }
            if entry.kind == ValueKind::Delete && !self.keep_tombstones {
                continue;
            }
            return Ok(Some(entry));
        }
    }

    /// Collects up to `limit` visible entries with key ≤ `end` (inclusive
    /// when `Some`).
    pub fn collect_until(
        &mut self,
        end: Option<&[u8]>,
        end_inclusive: bool,
        limit: usize,
    ) -> StorageResult<Vec<InternalEntry>> {
        let mut out = Vec::new();
        while out.len() < limit {
            let Some(e) = self.next_visible()? else { break };
            if let Some(end) = end {
                let past = if end_inclusive {
                    e.key.as_slice() > end
                } else {
                    e.key.as_slice() >= end
                };
                if past {
                    break;
                }
            }
            out.push(e);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(entries: Vec<(&str, u64, ValueKind, &str)>) -> Source {
        Source::Mem(
            entries
                .into_iter()
                .map(|(k, s, kind, v)| InternalEntry {
                    key: k.as_bytes().to_vec(),
                    seqno: s,
                    kind,
                    value: v.as_bytes().to_vec(),
                })
                .collect::<Vec<_>>()
                .into_iter(),
        )
    }

    #[test]
    fn merges_in_key_order() {
        let a = mem(vec![("a", 1, ValueKind::Put, "1"), ("c", 2, ValueKind::Put, "3")]);
        let b = mem(vec![("b", 3, ValueKind::Put, "2"), ("d", 4, ValueKind::Put, "4")]);
        let mut m = MergingIter::new(vec![a, b], false).unwrap();
        let keys: Vec<Vec<u8>> = std::iter::from_fn(|| m.next_visible().unwrap())
            .map(|e| e.key)
            .collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
    }

    #[test]
    fn youngest_source_wins_on_duplicates() {
        let newer = mem(vec![("k", 9, ValueKind::Put, "new")]);
        let older = mem(vec![("k", 3, ValueKind::Put, "old")]);
        let mut m = MergingIter::new(vec![newer, older], false).unwrap();
        let e = m.next_visible().unwrap().unwrap();
        assert_eq!(e.value, b"new".to_vec());
        assert_eq!(e.seqno, 9);
        assert!(m.next_visible().unwrap().is_none());
    }

    #[test]
    fn tombstones_suppress_older_versions() {
        let newer = mem(vec![("k", 9, ValueKind::Delete, "")]);
        let older = mem(vec![("k", 3, ValueKind::Put, "old")]);
        let mut m = MergingIter::new(vec![newer, older], false).unwrap();
        assert!(m.next_visible().unwrap().is_none(), "deleted key invisible");
    }

    #[test]
    fn compaction_mode_keeps_tombstones() {
        let newer = mem(vec![("k", 9, ValueKind::Delete, "")]);
        let older = mem(vec![("k", 3, ValueKind::Put, "old")]);
        let mut m = MergingIter::new(vec![newer, older], true).unwrap();
        let e = m.next_visible().unwrap().unwrap();
        assert_eq!(e.kind, ValueKind::Delete);
        assert_eq!(e.seqno, 9);
        assert!(m.next_visible().unwrap().is_none(), "old version still dropped");
    }

    #[test]
    fn collect_until_respects_end_and_limit() {
        let src = mem(vec![
            ("a", 1, ValueKind::Put, ""),
            ("b", 2, ValueKind::Put, ""),
            ("c", 3, ValueKind::Put, ""),
            ("d", 4, ValueKind::Put, ""),
        ]);
        let mut m = MergingIter::new(vec![src], false).unwrap();
        let got = m.collect_until(Some(b"c"), false, 100).unwrap();
        assert_eq!(got.len(), 2, "exclusive end");
        let src = mem(vec![
            ("a", 1, ValueKind::Put, ""),
            ("b", 2, ValueKind::Put, ""),
            ("c", 3, ValueKind::Put, ""),
        ]);
        let mut m = MergingIter::new(vec![src], false).unwrap();
        let got = m.collect_until(Some(b"c"), true, 2).unwrap();
        assert_eq!(got.len(), 2, "limit");
    }

    #[test]
    fn empty_sources() {
        let mut m = MergingIter::new(vec![], false).unwrap();
        assert!(m.next_visible().unwrap().is_none());
        let mut m = MergingIter::new(vec![mem(vec![])], false).unwrap();
        assert!(m.next_visible().unwrap().is_none());
    }

    #[test]
    fn three_way_version_chain() {
        let s1 = mem(vec![("k", 30, ValueKind::Put, "v3")]);
        let s2 = mem(vec![("k", 20, ValueKind::Delete, "")]);
        let s3 = mem(vec![("k", 10, ValueKind::Put, "v1")]);
        let mut m = MergingIter::new(vec![s1, s2, s3], false).unwrap();
        let e = m.next_visible().unwrap().unwrap();
        assert_eq!(e.value, b"v3".to_vec(), "newest put wins over older tombstone");
    }
}
