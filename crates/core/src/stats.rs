//! Engine-level operation statistics.
//!
//! Complements the storage layer's [`lsm_storage::IoStats`]: the device
//! counts blocks; these counters attribute them to engine behaviour
//! (filter prunes, runs probed per lookup, compaction work), which is what
//! the experiment tables report.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Atomic engine counters; cheap to share.
        #[derive(Debug, Default)]
        pub struct DbStats {
            $($(#[$doc])* pub(crate) $name: AtomicU64,)+
        }

        /// Point-in-time copy of [`DbStats`].
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct DbStatsSnapshot {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl DbStats {
            /// Snapshots every counter.
            pub fn snapshot(&self) -> DbStatsSnapshot {
                DbStatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }

            /// Zeroes every counter.
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
            }
        }

        impl DbStatsSnapshot {
            /// Every counter as a `(name, value)` pair, in declaration
            /// order (the metrics exporter re-sorts by name).
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name),)+]
            }
        }

        // the workspace-wide saturating snapshot delta
        lsm_obs::impl_delta_since!(DbStatsSnapshot { $($name),+ });
    };
}

counters! {
    /// Put operations accepted.
    puts,
    /// Delete operations accepted.
    deletes,
    /// Get operations served.
    gets,
    /// Gets that found a live value.
    gets_found,
    /// Scan operations served.
    scans,
    /// Entries returned by scans.
    scan_entries,
    /// User bytes ingested (keys + values of puts).
    bytes_ingested,
    /// Memtable flushes.
    flushes,
    /// Compactions executed.
    compactions,
    /// Entries written by compactions (the write-amplification driver).
    compaction_entries,
    /// Tombstones dropped by last-level compaction GC.
    tombstones_dropped,
    /// Obsolete versions dropped during merges.
    versions_dropped,
    /// Sorted runs probed by point lookups.
    runs_probed,
    /// Probes answered negatively by a point filter (no data I/O).
    filter_prunes,
    /// Data blocks examined by point lookups.
    blocks_examined,
    /// Lookups pruned by table key ranges (no filter probe needed).
    range_prunes,
    /// Tables skipped by range filters during scans.
    range_filter_prunes,
    /// Blocks re-admitted by post-compaction prefetch.
    prefetched_blocks,
    /// Values written to the value log (key-value separation).
    vlog_values,
    /// Value-log pointer resolutions on reads.
    vlog_resolves,
    /// Entries moved by the single largest compaction (tail-latency proxy:
    /// synchronous maintenance stalls the write path for this long).
    largest_compaction_entries,
    /// Logical WAL appends issued (one per single write, one per
    /// group-commit batch — the denominator of the batching win).
    wal_appends,
    /// `write_batch` calls accepted.
    write_batches,
    /// Individual operations carried inside `write_batch` calls.
    batched_writes,
}

impl DbStats {
    pub(crate) fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_max(counter: &AtomicU64, n: u64) {
        counter.fetch_max(n, Ordering::Relaxed);
    }
}

impl DbStatsSnapshot {
    /// Average sorted runs probed per get.
    pub fn runs_per_get(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.runs_probed as f64 / self.gets as f64
        }
    }

    /// Average data blocks examined per get.
    pub fn blocks_per_get(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.blocks_examined as f64 / self.gets as f64
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = DbStats::default();
        DbStats::bump(&s.puts);
        DbStats::bump(&s.puts);
        s.add(&s.bytes_ingested, 100);
        let snap = s.snapshot();
        assert_eq!(snap.puts, 2);
        assert_eq!(snap.bytes_ingested, 100);
        s.reset();
        assert_eq!(s.snapshot().puts, 0);
    }

    #[test]
    fn derived_rates() {
        let snap = DbStatsSnapshot {
            gets: 10,
            runs_probed: 25,
            blocks_examined: 12,
            ..Default::default()
        };
        assert!((snap.runs_per_get() - 2.5).abs() < 1e-12);
        assert!((snap.blocks_per_get() - 1.2).abs() < 1e-12);
        assert_eq!(DbStatsSnapshot::default().runs_per_get(), 0.0);
    }

    #[test]
    fn delta() {
        let a = DbStatsSnapshot {
            gets: 5,
            puts: 2,
            ..Default::default()
        };
        let b = DbStatsSnapshot {
            gets: 9,
            puts: 2,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.gets, 4);
        assert_eq!(d.puts, 0);
    }
}
