//! The public engine facade: `open → put/get/scan/delete → stats`.
//!
//! [`Db`] is a cheaply-clonable, `Send + Sync` handle over a shared
//! [`DbCore`]. In [`BackgroundMode::Inline`] every maintenance step
//! (flush, compaction cascade, manifest rewrite, cache invalidation,
//! optional prefetch) runs synchronously inside the write that triggers
//! it, under one write lock — deterministic by design (see the crate
//! docs). In [`BackgroundMode::Threaded`] a full memtable is *frozen*
//! into an immutable slot and a worker pool drains flush and compaction
//! jobs; readers snapshot the copy-on-write [`Version`] and never block
//! on maintenance, while writers block only on L0 backpressure.
//!
//! Lock hierarchy (outermost first): `compaction_lock` → `inner` →
//! the background queue mutex inside [`crate::background::BgState`].

use std::ops::{Bound, Range};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockWriteGuard};

use lsm_cache::{plan_prefetch, HeatMap, PrefetchCandidate, ShardedCache};
use lsm_filters::monkey_allocation;
use lsm_storage::{
    Block, DeviceProfile, FileId, IoStatsSnapshot, MemDevice, StorageDevice, StorageError,
    StorageResult,
};

use crate::background::BgState;
use crate::compaction::scheduler::{CompactionScheduler, JobIoReport, JobPriority, JobSpec, TokenBucket};
use crate::compaction::subcompact::{self, ShardExec};
use crate::compaction::{self, exec::merge_tables, exec::MergeResult, picker::pick_file, CompactionTask};
use crate::config::{BackgroundMode, CompactionGranularity, FilterAllocation, LsmConfig};
use crate::dynamic::{DynamicConfig, DynamicSnapshot, DynamicUpdate};
use crate::entry::{InternalEntry, ValueKind};
use crate::kv_sep::{
    decode_value, encode_inline, encode_pointer, read_pointer_from_device, ValueLog,
};
use crate::manifest::{find_manifest_candidates, write_manifest, ManifestState};
use crate::memtable::Memtable;
use crate::obs::EngineMetrics;
use lsm_obs::{Event, EventKind, MetricsSnapshot, StallReason};
use lsm_storage::IoCategory;
use crate::sstable::{Table, TableBuilder};
use crate::stats::DbStats;
use crate::version::{SortedRun, Version};
use crate::wal::{self, Wal};

/// Monotone map from byte keys to the heat-map domain.
fn heat_key(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(buf)
}

/// An ordered batch of writes applied by [`DbCore::write_batch`] with a
/// single WAL append (group commit). Operations apply in insertion
/// order, so a later op on the same key shadows an earlier one exactly
/// as two separate writes would.
#[derive(Debug, Default)]
pub struct WriteBatch {
    ops: Vec<(Vec<u8>, ValueKind, Vec<u8>)>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Queues an insert/update.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.ops.push((key, ValueKind::Put, value));
    }

    /// Queues a tombstone.
    pub fn delete(&mut self, key: Vec<u8>) {
        self.ops.push((key, ValueKind::Delete, Vec::new()));
    }

    /// Operations queued.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Empties the batch, keeping its allocation for reuse — pairs with
    /// [`DbCore::write_batch_mut`] so a long-lived committer recycles one
    /// batch instead of allocating a fresh `Vec` per group commit.
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

struct Inner {
    mem: Memtable,
    /// Frozen memtable awaiting a background flush (`Threaded` only). An
    /// `Arc` so the flush job can build its table outside the lock.
    imm: Option<Arc<Memtable>>,
    /// WAL covering `imm`; retired when the flush lands.
    imm_wal: Option<Wal>,
    version: Arc<Version>,
    wal: Option<Wal>,
    vlog: Option<ValueLog>,
    next_seqno: u64,
    /// Replication watermark: highest replication-log sequence applied
    /// through [`DbCore::write_batch_replicated`] (0 = never a replica).
    /// Persisted in the manifest on every manifest write; between
    /// manifests the applied batches are covered by the WAL, so a crash
    /// can only leave this *behind* the data — never ahead.
    applied_seq: u64,
    manifest: Option<FileId>,
    /// Round-robin partial-compaction cursors, one per level.
    rr_cursors: Vec<usize>,
    /// OCC bookkeeping: snapshot seqnos of live [`crate::Txn`] handles
    /// (value = handle count at that floor). Non-empty iff a transaction
    /// is active; write paths consult it to decide whether to maintain
    /// `txn_recent`, so the plain write path pays nothing when no
    /// transaction is running.
    txn_floors: std::collections::BTreeMap<u64, usize>,
    /// key → seqno of the last committed write to it, maintained only
    /// while `txn_floors` is non-empty. Commit validation checks each
    /// read-set key here: an entry newer than the transaction's snapshot
    /// floor means a first-committer already won. Pruned to the oldest
    /// live floor and cleared when the last transaction ends.
    txn_recent: std::collections::HashMap<Vec<u8>, u64>,
}

impl Inner {
    /// Records a committed write for OCC validation, iff any transaction
    /// is live. Split out (static, field-wise) so write paths can call it
    /// while other `Inner` fields are mutably borrowed.
    #[inline]
    fn txn_record(
        floors: &std::collections::BTreeMap<u64, usize>,
        recent: &mut std::collections::HashMap<Vec<u8>, u64>,
        key: &[u8],
        seqno: u64,
    ) {
        if floors.is_empty() {
            return;
        }
        match recent.get_mut(key) {
            Some(s) => *s = seqno,
            None => {
                recent.insert(key.to_vec(), seqno);
            }
        }
    }
}

/// Prune `Inner::txn_recent` on transaction end once it exceeds this
/// many keys (below the oldest live snapshot floor nothing can conflict).
const TXN_RECENT_PRUNE_LEN: usize = 1024;

/// Global commit-stamp source for transaction commits. The stamp is
/// fetched while every involved engine's write lock is held, so stamp
/// order is consistent with each engine's apply order — replaying
/// committed transactions in stamp order reproduces the exact final
/// state (the serializability oracle in
/// `crates/server/tests/transactions.rs` relies on this).
static TXN_STAMP: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// One engine's slice of a transaction commit (built by
/// [`crate::txn::Txn::commit`] and the server's cross-shard commit path).
pub(crate) struct TxnApplyPart<'a> {
    /// The engine this part applies to. Parts must target distinct
    /// engines — the commit takes each engine's write lock once.
    pub db: &'a DbCore,
    /// The sub-transaction's snapshot floor on `db`.
    pub snap_seqno: u64,
    /// Keys read through the snapshot, validated first-committer-wins.
    pub read_set: Vec<Vec<u8>>,
    /// Buffered writes, folded into one atomic WAL group on success.
    pub write_set: WriteBatch,
}

/// Validates and applies a transaction atomically across its parts.
///
/// All involved engines' write locks are taken in one stable global
/// order (by engine address — two concurrent multi-engine commits can
/// never deadlock), every part's read-set is validated against
/// `Inner::txn_recent`, and only if **all** parts validate clean are the
/// write-sets applied — each as one [`Wal::append_atomic`] group, so a
/// crash can never expose a partial write-set on any single engine.
/// Memtable-full maintenance is deferred to after the locks drop
/// ([`DbCore::post_commit_maintenance`]) so a multi-engine commit never
/// flushes while holding several engines' locks.
///
/// Returns `Ok(Err(conflict))` when validation fails (the transaction
/// must abort and retry) and `Ok(Ok(stamp))` with the global commit
/// stamp on success.
pub(crate) fn commit_txn_parts(
    parts: &mut [TxnApplyPart<'_>],
) -> StorageResult<Result<u64, crate::txn::Conflict>> {
    // Backpressure and background-error checks happen before any lock is
    // taken, exactly like the plain write path.
    for p in parts.iter() {
        if p.db.threaded() {
            p.db.check_bg_error()?;
            p.db.backpressure();
        }
    }
    let dbs: Vec<&DbCore> = parts.iter().map(|p| p.db).collect();
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by_key(|&i| dbs[i] as *const DbCore as usize);
    debug_assert!(
        order
            .windows(2)
            .all(|w| !std::ptr::eq(dbs[w[0]], dbs[w[1]])),
        "txn parts must target distinct engines"
    );
    let mut guards: Vec<(usize, RwLockWriteGuard<'_, Inner>)> = Vec::with_capacity(order.len());
    for &i in &order {
        guards.push((i, dbs[i].inner.write()));
    }
    // First-committer-wins validation: every read key must be unchanged
    // since its sub-transaction's snapshot. All guards are held, so a
    // clean validation cannot be invalidated before the apply below.
    let mut conflict: Option<(usize, crate::txn::Conflict)> = None;
    'validate: for (i, guard) in &guards {
        let p = &parts[*i];
        for key in &p.read_set {
            if let Some(&seqno) = guard.txn_recent.get(key) {
                if seqno > p.snap_seqno {
                    conflict = Some((
                        *i,
                        crate::txn::Conflict {
                            key: key.clone(),
                            snap_seqno: p.snap_seqno,
                            conflict_seqno: seqno,
                        },
                    ));
                    break 'validate;
                }
            }
        }
    }
    if let Some((i, c)) = conflict {
        drop(guards);
        dbs[i].obs.txn_conflicts.inc();
        dbs[i].obs.event(EventKind::TxnConflict {
            snap_seqno: c.snap_seqno,
            conflict_seqno: c.conflict_seqno,
        });
        return Ok(Err(c));
    }
    // Validation clean on every engine: apply the write-sets. Per-part
    // sizes are captured first (apply drains the batch) for the events.
    let counts: Vec<(u64, u64)> = parts
        .iter()
        .map(|p| (p.write_set.len() as u64, p.read_set.len() as u64))
        .collect();
    for (i, guard) in guards.iter_mut() {
        let p = &mut parts[*i];
        dbs[*i].apply_txn_part_locked(guard, &mut p.write_set)?;
    }
    let stamp = TXN_STAMP.fetch_add(1, Ordering::AcqRel) + 1;
    drop(guards);
    for (i, (writes, reads)) in counts.into_iter().enumerate() {
        dbs[i].obs.txn_commits.inc();
        dbs[i].obs.event(EventKind::TxnCommit {
            stamp,
            writes,
            reads,
        });
    }
    for db in &dbs {
        db.post_commit_maintenance()?;
    }
    Ok(Ok(stamp))
}

/// A configurable LSM-tree storage engine handle. Cloning is cheap (an
/// `Arc` bump); all clones share one engine. The last clone to drop
/// shuts the background workers down and syncs the logs.
pub struct Db {
    core: Arc<DbCore>,
}

impl Clone for Db {
    fn clone(&self) -> Db {
        self.core.user_handles.fetch_add(1, Ordering::AcqRel);
        Db {
            core: Arc::clone(&self.core),
        }
    }
}

impl Drop for Db {
    /// The *last user handle* drives shutdown, even though a worker may
    /// still hold a strong `Arc` for its in-flight job: without this, a
    /// caller could drop every handle and reopen the device while a
    /// background flush is still writing tables and manifests into it.
    fn drop(&mut self) {
        if self.core.user_handles.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.core.shutdown_and_join();
        }
    }
}

impl std::ops::Deref for Db {
    type Target = DbCore;

    fn deref(&self) -> &DbCore {
        &self.core
    }
}

/// The shared engine state behind every [`Db`] clone. All operations
/// take `&self`; the engine is internally synchronized.
pub struct DbCore {
    device: Arc<dyn StorageDevice>,
    cfg: LsmConfig,
    /// Online-retunable override overlay (see [`crate::dynamic`]):
    /// filter budget, merge layout, size ratio, and L0 thresholds can
    /// change on the running engine; everything else is boot-fixed.
    dynamic: DynamicConfig,
    cache: Option<Arc<ShardedCache<Block>>>,
    stats: DbStats,
    heat: Mutex<HeatMap>,
    inner: RwLock<Inner>,
    /// Background scheduler state; shared with the worker threads via its
    /// own `Arc` so idle workers do not keep the engine alive.
    bg: Arc<BgState>,
    /// Worker join handles, drained on drop.
    workers: std::sync::Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Non-empty L0 run count, mirrored from the current version so the
    /// write path can check backpressure without taking `inner`.
    l0_runs: AtomicUsize,
    /// Serializes compaction cascades (background job vs. explicit
    /// `compact`/`major_compact`) in `Threaded` mode. Taken *before*
    /// `inner` per the lock hierarchy.
    compaction_lock: Mutex<()>,
    /// Live user-facing [`Db`] clones. The last one to drop joins the
    /// worker pool (see `Drop for Db`), regardless of the `Arc` count.
    user_handles: AtomicUsize,
    /// Outstanding [`crate::Snapshot`]s (blocks value-log GC).
    snapshot_count: Arc<AtomicUsize>,
    /// Metrics registry, latency histograms, and the structured event
    /// trace (see [`crate::obs`]).
    obs: EngineMetrics,
    /// Compaction job admission + accounting + I/O throttle (see
    /// [`crate::compaction::scheduler`]). Every merge the engine runs is
    /// submitted, admitted, and completed through it.
    sched: CompactionScheduler,
}

impl Db {
    /// Whether two handles refer to the same engine instance.
    pub fn same_engine(&self, other: &Db) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// Opens (or recovers) an engine on `device`. The device's block size
    /// must match `cfg.block_size`.
    pub fn open(device: Arc<dyn StorageDevice>, cfg: LsmConfig) -> StorageResult<Db> {
        cfg.validate().map_err(StorageError::Corruption)?;
        if device.block_size() != cfg.block_size {
            return Err(StorageError::Corruption(format!(
                "device block size {} != configured {}",
                device.block_size(),
                cfg.block_size
            )));
        }
        let cache = (cfg.cache_bytes > 0)
            .then(|| Arc::new(ShardedCache::new(cfg.cache_policy, cfg.cache_bytes, 8)));
        // Inline mode times operations on the *simulated* device clock so
        // metrics are reproducible; Threaded mode uses wall time.
        let obs = match cfg.background {
            BackgroundMode::Inline => EngineMetrics::simulated(
                device.latency().clock().clone(),
                cfg.event_ring_capacity,
            ),
            BackgroundMode::Threaded => EngineMetrics::wall(cfg.event_ring_capacity),
        };
        let mut inner = Inner {
            mem: Memtable::with_front(cfg.buffer_front_bytes),
            imm: None,
            imm_wal: None,
            version: Arc::new(Version::new()),
            wal: None,
            vlog: None,
            next_seqno: 1,
            applied_seq: 0,
            manifest: None,
            rr_cursors: vec![0; 32],
            txn_floors: std::collections::BTreeMap::new(),
            txn_recent: std::collections::HashMap::new(),
        };
        // Recovery: try every manifest on the device, newest first. A crash
        // mid-rewrite can leave the newest manifest referencing files that
        // never made it to disk; an older manifest (plus its WALs) is then
        // the consistent state to restart from. Starting empty when
        // manifests exist but none is usable would silently drop data, so
        // that case is a typed error instead.
        let candidates = find_manifest_candidates(&device)?;
        let had_candidates = !candidates.is_empty();
        let mut recovered_ok = !had_candidates;
        let mut old_wals: Vec<FileId> = Vec::new();
        let mut last_reject: Option<StorageError> = None;
        for (mid, state) in candidates {
            match DbCore::recover_from_manifest(&device, &cfg, &state, &obs) {
                Ok((version, mem, next_seqno)) => {
                    obs.event(EventKind::RecoveryStep {
                        step: "manifest_loaded",
                        detail: format!("manifest {} levels {}", mid.0, state.levels.len()),
                    });
                    inner.manifest = Some(mid);
                    inner.next_seqno = next_seqno;
                    inner.applied_seq = state.applied_seq;
                    inner.version = Arc::new(version);
                    inner.mem = mem;
                    old_wals.extend(
                        [state.wal_prev, state.wal]
                            .into_iter()
                            .filter(|&w| w != 0)
                            .map(FileId),
                    );
                    recovered_ok = true;
                    break;
                }
                Err(
                    e @ (StorageError::Corruption(_)
                    | StorageError::UnknownFile(_)
                    | StorageError::OutOfBounds { .. }),
                ) => {
                    obs.event(EventKind::RecoveryStep {
                        step: "manifest_rejected",
                        detail: format!("manifest {}: {e}", mid.0),
                    });
                    device.stats().record_corruption();
                    last_reject = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        if !recovered_ok {
            let detail = last_reject
                .map(|e| e.to_string())
                .unwrap_or_else(|| "unknown".into());
            return Err(StorageError::Corruption(format!(
                "recovery failed: no usable manifest (last candidate rejected: {detail})"
            )));
        }
        if cfg.wal {
            let mut new_wal = Wal::create(Arc::clone(&device))?;
            // re-log the replayed records so they stay durable
            let mem_snapshot: Vec<InternalEntry> = inner
                .mem
                .range(Bound::Unbounded, Bound::Unbounded)
                .collect();
            for e in mem_snapshot {
                new_wal.append(e.seqno, e.kind, &e.key, &e.value)?;
            }
            new_wal.sync()?;
            inner.wal = Some(new_wal);
        }
        if cfg.kv_separation.is_some() {
            // Old value logs stay readable via the device; new separated
            // values go to a fresh log.
            inner.vlog = Some(ValueLog::create(Arc::clone(&device))?);
        }
        let threaded = cfg.background == BackgroundMode::Threaded;
        let workers = cfg.background_workers;
        let sched = CompactionScheduler::new(
            cfg.max_background_jobs,
            TokenBucket::new(
                cfg.compaction_throttle_bytes_per_sec,
                cfg.compaction_throttle_burst_bytes,
            ),
        );
        let db = Db {
            core: Arc::new(DbCore {
                device,
                cfg,
                dynamic: DynamicConfig::new(),
                cache,
                stats: DbStats::default(),
                heat: Mutex::new(HeatMap::new(1024, 100_000)),
                inner: RwLock::new(inner),
                bg: Arc::new(BgState::new()),
                workers: std::sync::Mutex::new(Vec::new()),
                l0_runs: AtomicUsize::new(0),
                compaction_lock: Mutex::new(()),
                user_handles: AtomicUsize::new(1),
                snapshot_count: Arc::new(AtomicUsize::new(0)),
                obs,
                sched,
            }),
        };
        {
            let mut inner = db.inner.write();
            let l0 = DbCore::count_l0_runs(&inner.version);
            db.l0_runs.store(l0, Ordering::Release);
            db.persist_manifest(&mut inner)?;
        }
        // The replayed WALs are retired only now that their records are
        // covered by the new WAL and the manifest referencing it is
        // durable; a crash anywhere above replays from the old WALs again
        // instead of losing the records.
        for w in old_wals {
            let _ = db.device.delete(w);
        }
        // A crash during a (possibly parallel) compaction can strand fully
        // written output tables that no manifest ever came to reference.
        // Now that the recovered state is durable, those orphans are dead
        // weight — delete them.
        db.cleanup_orphan_tables();
        if threaded {
            let mut handles = db
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for i in 0..workers {
                let bg = Arc::clone(&db.bg);
                let weak = Arc::downgrade(&db.core);
                let h = std::thread::Builder::new()
                    .name(format!("lsm-bg-{i}"))
                    .spawn(move || crate::background::worker_loop(bg, weak))
                    .map_err(|e| {
                        StorageError::Corruption(format!("failed to spawn background worker: {e}"))
                    })?;
                handles.push(h);
            }
        }
        Ok(db)
    }

    /// Opens on a fresh in-memory device with a free latency profile — the
    /// default substrate for tests and experiments.
    pub fn open_in_memory(cfg: LsmConfig) -> StorageResult<Db> {
        let device: Arc<dyn StorageDevice> =
            Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()));
        Db::open(device, cfg)
    }

    /// Opens on a fresh in-memory device with a latency profile, so
    /// experiments can report simulated time.
    pub fn open_simulated(cfg: LsmConfig, profile: DeviceProfile) -> StorageResult<Db> {
        let device: Arc<dyn StorageDevice> =
            Arc::new(MemDevice::new(cfg.block_size, profile));
        Db::open(device, cfg)
    }
}

impl DbCore {
    /// Attempts a full recovery from one manifest: reopen every table it
    /// references and replay its WALs into a fresh memtable. Any missing
    /// or corrupt referenced file fails the whole attempt with a typed
    /// error, so [`Db::open`] can fall back to an older manifest.
    fn recover_from_manifest(
        device: &Arc<dyn StorageDevice>,
        cfg: &LsmConfig,
        state: &ManifestState,
        obs: &EngineMetrics,
    ) -> StorageResult<(Version, Memtable, u64)> {
        let mut version = Version::new();
        version.ensure_levels(state.levels.len());
        for (i, level) in state.levels.iter().enumerate() {
            for run_ids in level {
                let mut tables = Vec::with_capacity(run_ids.len());
                for &id in run_ids {
                    let file = lsm_storage::ImmutableFile::open(Arc::clone(device), FileId(id))?;
                    tables.push(Table::open(file, cfg.index)?);
                }
                version.levels[i].runs.push(SortedRun::from_tables(tables));
            }
        }
        let mut mem = Memtable::with_front(cfg.buffer_front_bytes);
        let mut next_seqno = state.next_seqno.max(1);
        // Replay the frozen memtable's WAL first: its records are strictly
        // older than the active WAL's, so later records overwrite them.
        for wal_id in [state.wal_prev, state.wal] {
            if wal_id == 0 {
                continue;
            }
            match wal::recover(Arc::clone(device), FileId(wal_id)) {
                Ok(records) => {
                    obs.event(EventKind::RecoveryStep {
                        step: "wal_replayed",
                        detail: format!("wal {} records {}", wal_id, records.len()),
                    });
                    for r in records {
                        next_seqno = next_seqno.max(r.seqno + 1);
                        mem.insert(&r.key, r.seqno, r.kind, &r.value);
                    }
                }
                // A missing WAL is consistent: rotation deletes the old WAL
                // only after the superseding manifest is durable, so if this
                // manifest's WAL is gone its records are already in a table
                // listed by a newer manifest.
                Err(StorageError::UnknownFile(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok((version, mem, next_seqno))
    }

    /// The engine configuration as booted. Maintenance decisions run
    /// under [`DbCore::effective_config`], which layers the dynamic
    /// overrides on top.
    pub fn config(&self) -> &LsmConfig {
        &self.cfg
    }

    /// The boot configuration with every staged dynamic override applied
    /// — what compaction planning, filter sizing, and backpressure
    /// currently run under.
    pub fn effective_config(&self) -> LsmConfig {
        self.dynamic.effective(&self.cfg)
    }

    /// Currently staged dynamic overrides (`None` fields = boot value).
    pub fn dynamic_overrides(&self) -> DynamicSnapshot {
        self.dynamic.snapshot()
    }

    /// Stages a validated dynamic-config update. Changes take effect at
    /// the next decision point that reads the knob: filter budgets at the
    /// next table build, layout/size-ratio at the next compaction-planning
    /// pass, L0 thresholds at the next write. Existing data is never
    /// rewritten eagerly. Errors (an update whose merged config fails
    /// [`LsmConfig::validate`]) leave the overlay untouched.
    pub fn set_dynamic(&self, update: &DynamicUpdate) -> Result<(), String> {
        self.dynamic.apply(&self.cfg, update)?;
        // Let the threaded picker notice a newly-violated invariant
        // without waiting for the next write.
        if self.threaded() {
            self.bg.schedule_compact();
        }
        Ok(())
    }

    /// Appends an externally-generated event (e.g. a tuner decision) to
    /// the engine's trace ring, stamped with the engine clock.
    pub fn record_event(&self, kind: EventKind) {
        self.obs.event(kind);
    }

    /// The storage device (for I/O statistics and simulated time).
    pub fn device(&self) -> &Arc<dyn StorageDevice> {
        &self.device
    }

    /// Engine counters.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// Device I/O counters.
    pub fn io_stats(&self) -> IoStatsSnapshot {
        self.device.stats().snapshot()
    }

    /// Block-cache counters, when caching is enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| (c.stats().hits(), c.stats().misses()))
    }

    /// Point-in-time snapshot of every engine metric: `db.*` engine
    /// counters, `io.*` per-category device counters, `cache.*`
    /// block-cache counters (global and per shard), `latency.*`
    /// histograms for get/put/scan/flush/compaction, and `engine.*`
    /// gauges. Byte-identical across repeated runs of the same workload
    /// under [`BackgroundMode::Inline`] (the histograms are driven by the
    /// simulated device clock).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.sync_registry();
        self.obs.snapshot()
    }

    /// Drains the structured event trace, oldest first. `seq` is globally
    /// monotone, so a consumer can detect ring overflow as a gap (see
    /// also [`DbCore::events_dropped`]).
    pub fn drain_events(&self) -> Vec<Event> {
        self.obs.drain_events()
    }

    /// Events evicted from the trace ring because it was full.
    pub fn events_dropped(&self) -> u64 {
        self.obs.dropped_events()
    }

    /// Engine observability state (hook for the background workers).
    pub(crate) fn obs(&self) -> &EngineMetrics {
        &self.obs
    }

    /// Mirrors the engine/device/cache counters into the metrics registry
    /// as absolute values. All sources are monotone, so registry counters
    /// only ever move forward (asserted by the regression tests).
    fn sync_registry(&self) {
        let reg = self.obs.registry();
        let sync = |name: &str, target: u64| {
            let c = reg.counter(name);
            let cur = c.get();
            if target > cur {
                c.add(target - cur);
            }
        };
        for (name, value) in self.stats.snapshot().fields() {
            sync(&format!("db.{name}"), value);
        }
        let io = self.device.stats().snapshot();
        for cat in IoCategory::ALL {
            let c = io.category(cat);
            let label = cat.label();
            sync(&format!("io.{label}.read_blocks"), c.read_blocks);
            sync(&format!("io.{label}.written_blocks"), c.written_blocks);
            sync(&format!("io.{label}.read_ops"), c.read_ops);
            sync(&format!("io.{label}.write_ops"), c.write_ops);
        }
        sync("io.retries", io.retries);
        sync("io.corruption_detected", io.corruption_detected);
        sync("io.write_slowdowns", io.write_slowdowns);
        sync("io.write_stalls", io.write_stalls);
        let sched = self.sched.totals();
        sync("sched.jobs_submitted", sched.submitted);
        sync("sched.jobs_admitted", sched.admitted);
        sync("sched.jobs_completed", sched.completed);
        sync("sched.jobs_failed", sched.failed);
        sync("sched.input_bytes", sched.input_bytes);
        sync("sched.output_bytes", sched.output_bytes);
        sync("sched.throttle_waits", sched.throttle_waits);
        sync("sched.throttle_wait_ns", sched.throttle_wait_ns);
        if let Some(cache) = &self.cache {
            let s = cache.stats();
            sync("cache.hits", s.hits());
            sync("cache.misses", s.misses());
            sync("cache.inserts", s.inserts());
            sync("cache.evictions", s.evictions());
            for (i, shard) in cache.shard_stats().iter().enumerate() {
                sync(&format!("cache.shard{i}.hits"), shard.hits);
                sync(&format!("cache.shard{i}.misses"), shard.misses);
                sync(&format!("cache.shard{i}.evictions"), shard.evictions);
            }
        }
    }

    fn threaded(&self) -> bool {
        self.cfg.background == BackgroundMode::Threaded
    }

    fn count_l0_runs(version: &Version) -> usize {
        version
            .levels
            .first()
            .map_or(0, |l| l.runs.iter().filter(|r| !r.is_empty()).count())
    }

    /// Installs `version` as current and mirrors its L0 run count into the
    /// lock-free backpressure gauge. Every version swap goes through here.
    fn install_version(&self, inner: &mut Inner, version: Version) {
        let l0 = Self::count_l0_runs(&version);
        inner.version = Arc::new(version);
        self.l0_runs.store(l0, Ordering::Release);
        self.obs.l0_runs_gauge.set(l0 as i64);
    }

    /// Surfaces the first background-job error on the calling thread.
    /// Cheap no-op in `Inline` mode.
    fn check_bg_error(&self) -> StorageResult<()> {
        if self.threaded() && self.bg.has_failed() {
            if let Some(e) = self.bg.take_error() {
                return Err(e);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Inserts or updates a key.
    pub fn put(&self, key: Vec<u8>, value: Vec<u8>) -> StorageResult<()> {
        DbStats::bump(&self.stats.puts);
        self.stats
            .add(&self.stats.bytes_ingested, (key.len() + value.len()) as u64);
        self.write(key, ValueKind::Put, value)
    }

    /// Deletes a key (writes a tombstone).
    pub fn delete(&self, key: Vec<u8>) -> StorageResult<()> {
        DbStats::bump(&self.stats.deletes);
        self.stats.add(&self.stats.bytes_ingested, key.len() as u64);
        self.write(key, ValueKind::Delete, Vec::new())
    }

    /// L0 backpressure (`Threaded` only): checked *before* taking `inner`
    /// so delayed writers never hold any engine lock — readers proceed
    /// untouched while a writer sleeps or stalls.
    fn backpressure(&self) {
        let (dyn_slow, dyn_stall) = self.dynamic.l0_thresholds();
        let slowdown = dyn_slow.unwrap_or(self.cfg.l0_slowdown_runs);
        let stall = dyn_stall.unwrap_or(self.cfg.l0_stall_runs);
        let l0 = self.l0_runs.load(Ordering::Acquire);
        self.obs.backpressure_band(l0, slowdown, stall);
        if l0 >= stall {
            self.device.stats().record_write_stall();
            self.bg.schedule_compact();
            self.bg
                .wait_progress_until(|| self.l0_runs.load(Ordering::Acquire) < stall);
            // Compaction drained L0 below the stall line while we slept;
            // reconcile the band so the StallExit lands in the trace now
            // rather than on some later write.
            self.obs.backpressure_band(
                self.l0_runs.load(Ordering::Acquire),
                slowdown,
                stall,
            );
        } else if l0 >= slowdown {
            self.device.stats().record_write_slowdown();
            self.bg.schedule_compact();
            std::thread::sleep(std::time::Duration::from_micros(self.cfg.slowdown_micros));
        }
    }

    /// Shared write path for puts and deletes, timed into the put
    /// histogram (a write's latency includes any backpressure delay and,
    /// under `Inline`, the flush/compaction cascade it triggers).
    fn write(&self, key: Vec<u8>, kind: ValueKind, value: Vec<u8>) -> StorageResult<()> {
        let start = self.obs.now_ns();
        let out = self.write_inner(key, kind, value);
        self.obs
            .put_ns
            .record(self.obs.now_ns().saturating_sub(start));
        out
    }

    fn write_inner(&self, key: Vec<u8>, kind: ValueKind, value: Vec<u8>) -> StorageResult<()> {
        if self.threaded() {
            self.check_bg_error()?;
            self.backpressure();
        }
        let mut inner = self.inner.write();
        let seqno = inner.next_seqno;
        inner.next_seqno += 1;
        // key-value separation
        let stored = match (self.cfg.kv_separation, kind) {
            (Some(sep), ValueKind::Put) => {
                if value.len() >= sep.min_value_bytes {
                    let vlog = inner.vlog.as_mut().ok_or_else(|| {
                        StorageError::Corruption(
                            "kv separation enabled but no value log is open".into(),
                        )
                    })?;
                    let ptr = vlog.append(&key, &value)?;
                    DbStats::bump(&self.stats.vlog_values);
                    encode_pointer(ptr)
                } else {
                    encode_inline(&value)
                }
            }
            (Some(_), ValueKind::Delete) => Vec::new(),
            (None, _) => value,
        };
        if let Some(wal) = &mut inner.wal {
            wal.append(seqno, kind, &key, &stored)?;
            DbStats::bump(&self.stats.wal_appends);
        }
        inner.mem.insert(&key, seqno, kind, &stored);
        {
            let inner = &mut *inner;
            Inner::txn_record(&inner.txn_floors, &mut inner.txn_recent, &key, seqno);
        }
        self.obs.memtable_bytes_gauge.set(inner.mem.bytes() as i64);
        if inner.mem.bytes() >= self.cfg.buffer_bytes {
            if self.threaded() {
                return self.freeze_or_wait(inner);
            }
            self.flush_active_locked(&mut inner)?;
            self.maybe_compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Applies a [`WriteBatch`] with **one** WAL append (group commit).
    ///
    /// All operations receive consecutive sequence numbers under a single
    /// acquisition of the write lock, their WAL frames are concatenated
    /// into one [`Wal::append_batch`] call, and backpressure is paid once
    /// per batch instead of once per operation. Recovery replays the
    /// batch exactly like the equivalent sequence of single writes. This
    /// is the entry point a serving layer's group-commit batcher uses to
    /// coalesce concurrent client writes per shard.
    pub fn write_batch(&self, batch: WriteBatch) -> StorageResult<()> {
        let mut batch = batch;
        self.write_batch_mut(&mut batch)
    }

    /// [`DbCore::write_batch`] for a reusable batch: applies and drains
    /// the operations, leaving the batch empty with its capacity intact.
    /// A group-commit loop calls this with one long-lived batch so the
    /// per-commit `Vec` allocation disappears from the steady state.
    pub fn write_batch_mut(&self, batch: &mut WriteBatch) -> StorageResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let start = self.obs.now_ns();
        let out = self.write_batch_inner(batch, None);
        self.obs
            .put_ns
            .record(self.obs.now_ns().saturating_sub(start));
        out
    }

    /// Replica apply: [`DbCore::write_batch_mut`] plus an atomic advance
    /// of the replication watermark to `seq`, under the same write lock —
    /// so the engine state and the watermark can never disagree about
    /// which replication-log batches are reflected. Used by a replica
    /// applying a shipped `REPL_BATCH`; the watermark reaches the
    /// manifest at the next manifest write (see
    /// [`lsm_core::manifest::ManifestState::applied_seq`]).
    ///
    /// An empty batch still advances the watermark (a replicated batch
    /// whose ops all routed to other shards is applied "by omission").
    pub fn write_batch_replicated(&self, batch: &mut WriteBatch, seq: u64) -> StorageResult<()> {
        if batch.is_empty() {
            let mut inner = self.inner.write();
            inner.applied_seq = inner.applied_seq.max(seq);
            return Ok(());
        }
        let start = self.obs.now_ns();
        let out = self.write_batch_inner(batch, Some(seq));
        self.obs
            .put_ns
            .record(self.obs.now_ns().saturating_sub(start));
        out
    }

    /// Current replication watermark: the highest replication-log
    /// sequence applied via [`DbCore::write_batch_replicated`] (0 if this
    /// engine never acted as a replica). After a crash this is recovered
    /// from the manifest and may lag the data (the WAL carries the
    /// batches applied since the last manifest write), so resubscribing
    /// from `applied_seq + 1` may re-deliver a suffix — which re-applies
    /// idempotently as long as delivery stays in sequence order.
    pub fn applied_seq(&self) -> u64 {
        self.inner.read().applied_seq
    }

    fn write_batch_inner(&self, batch: &mut WriteBatch, replicated_seq: Option<u64>) -> StorageResult<()> {
        if self.threaded() {
            self.check_bg_error()?;
            self.backpressure();
        }
        DbStats::bump(&self.stats.write_batches);
        self.stats
            .add(&self.stats.batched_writes, batch.ops.len() as u64);
        let mut inner = self.inner.write();
        let mut records: Vec<(u64, ValueKind, Vec<u8>, Vec<u8>)> =
            Vec::with_capacity(batch.ops.len());
        for (key, kind, value) in batch.ops.drain(..) {
            let seqno = inner.next_seqno;
            inner.next_seqno += 1;
            match kind {
                ValueKind::Put => {
                    DbStats::bump(&self.stats.puts);
                    self.stats
                        .add(&self.stats.bytes_ingested, (key.len() + value.len()) as u64);
                }
                ValueKind::Delete => {
                    DbStats::bump(&self.stats.deletes);
                    self.stats.add(&self.stats.bytes_ingested, key.len() as u64);
                }
            }
            let stored = match (self.cfg.kv_separation, kind) {
                (Some(sep), ValueKind::Put) => {
                    if value.len() >= sep.min_value_bytes {
                        let vlog = inner.vlog.as_mut().ok_or_else(|| {
                            StorageError::Corruption(
                                "kv separation enabled but no value log is open".into(),
                            )
                        })?;
                        let ptr = vlog.append(&key, &value)?;
                        DbStats::bump(&self.stats.vlog_values);
                        encode_pointer(ptr)
                    } else {
                        encode_inline(&value)
                    }
                }
                (Some(_), ValueKind::Delete) => Vec::new(),
                (None, _) => value,
            };
            records.push((seqno, kind, key, stored));
        }
        if let Some(wal) = &mut inner.wal {
            wal.append_batch(&records)?;
            DbStats::bump(&self.stats.wal_appends);
        }
        for (seqno, kind, key, stored) in &records {
            inner.mem.insert(key, *seqno, *kind, stored);
            let inner = &mut *inner;
            Inner::txn_record(&inner.txn_floors, &mut inner.txn_recent, key, *seqno);
        }
        if let Some(seq) = replicated_seq {
            inner.applied_seq = inner.applied_seq.max(seq);
        }
        self.obs.memtable_bytes_gauge.set(inner.mem.bytes() as i64);
        if inner.mem.bytes() >= self.cfg.buffer_bytes {
            if self.threaded() {
                return self.freeze_or_wait(inner);
            }
            self.flush_active_locked(&mut inner)?;
            self.maybe_compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// `Threaded` write path for a full memtable: freeze it into the
    /// immutable slot if free, else wait (counted as a stall) for the
    /// in-flight flush to drain it. Consumes the write guard so the wait
    /// holds no engine lock.
    fn freeze_or_wait<'a>(&'a self, mut inner: RwLockWriteGuard<'a, Inner>) -> StorageResult<()> {
        loop {
            if inner.imm.is_none() {
                self.freeze_memtable(&mut inner)?;
                return Ok(());
            }
            drop(inner);
            self.device.stats().record_write_stall();
            let l0 = self.l0_runs.load(Ordering::Acquire) as u64;
            self.obs.event(EventKind::StallEnter {
                reason: StallReason::MemtableRotation,
                l0_runs: l0,
            });
            self.bg.wait_flush_drained();
            self.obs.event(EventKind::StallExit {
                reason: StallReason::MemtableRotation,
                l0_runs: self.l0_runs.load(Ordering::Acquire) as u64,
            });
            self.check_bg_error()?;
            inner = self.inner.write();
            if inner.mem.bytes() < self.cfg.buffer_bytes {
                // another writer froze (or a flush drained) in the window
                return Ok(());
            }
        }
    }

    /// Freezes the active memtable into the immutable slot and queues its
    /// flush. Syncs both logs first so every record covered by the frozen
    /// memtable is durable before its WAL stops receiving writes.
    fn freeze_memtable(&self, inner: &mut Inner) -> StorageResult<()> {
        if inner.mem.is_empty() {
            return Ok(());
        }
        if let Some(vlog) = &mut inner.vlog {
            vlog.sync()?;
        }
        if let Some(wal) = &mut inner.wal {
            wal.sync()?;
        }
        let frozen = std::mem::replace(
            &mut inner.mem,
            Memtable::with_front(self.cfg.buffer_front_bytes),
        );
        inner.imm = Some(Arc::new(frozen));
        if let Err(e) = self.rotate_logs_for_frozen(inner) {
            // The frozen memtable's flush never got enqueued, so the
            // immutable slot stays occupied with nothing scheduled to
            // drain it. Without a sticky failure, `freeze_or_wait` (and
            // any stalled writer) would wait forever for that drain —
            // poison the engine so they bail with this error instead.
            let copy = StorageError::Io(std::io::Error::other(e.to_string()));
            self.bg.record_failure(e);
            return Err(copy);
        }
        self.bg.enqueue_flush();
        Ok(())
    }

    /// The fallible tail of a memtable freeze: WAL rotation and the
    /// manifest write that records it. Split out so `freeze_memtable`
    /// can turn any failure here into a sticky engine error — after the
    /// immutable slot is occupied, an unrecorded failure would strand
    /// every later writer.
    fn rotate_logs_for_frozen(&self, inner: &mut Inner) -> StorageResult<()> {
        if self.cfg.wal {
            inner.imm_wal = inner.wal.take();
            inner.wal = Some(Wal::create(Arc::clone(&self.device))?);
            if let (Some(old), Some(new)) = (&inner.imm_wal, &inner.wal) {
                self.obs.event(EventKind::WalRotation {
                    old_wal: old.id().0,
                    new_wal: new.id().0,
                    old_records: old.records(),
                });
            }
        }
        // the manifest names both WALs, so a crash here replays the frozen
        // records (wal_prev) before the new active WAL
        self.persist_manifest(inner)
    }

    /// Background flush job: persist the frozen memtable as an L0 table.
    /// The table is built *outside* the lock from the shared `Arc`; the
    /// install re-checks that the same memtable is still frozen (an
    /// explicit foreground flush may have won the race).
    pub(crate) fn run_flush(&self) -> StorageResult<()> {
        let (imm, version) = {
            let inner = self.inner.read();
            match &inner.imm {
                Some(m) => (Arc::clone(m), Arc::clone(&inner.version)),
                None => return Ok(()),
            }
        };
        let entries: Vec<InternalEntry> = imm.range(Bound::Unbounded, Bound::Unbounded).collect();
        let flush_id = self.obs.next_flush_id();
        let flush_start = self.obs.now_ns();
        self.obs.event(EventKind::FlushStart {
            id: flush_id,
            entries: entries.len() as u64,
        });
        let table = if entries.is_empty() {
            None
        } else {
            Some(self.build_l0_table(&version, &entries)?)
        };
        let output_bytes = table.as_ref().map_or(0, |t| t.data_bytes());
        let old_wal = {
            let mut inner = self.inner.write();
            let still_ours = matches!(&inner.imm, Some(cur) if Arc::ptr_eq(cur, &imm));
            if !still_ours {
                if let Some(t) = &table {
                    t.mark_obsolete();
                }
                // The foreground flush won the race and installed this
                // memtable itself; this job produced nothing.
                self.obs.event(EventKind::FlushEnd {
                    id: flush_id,
                    entries: entries.len() as u64,
                    output_bytes: 0,
                    l0_runs: self.l0_runs.load(Ordering::Acquire) as u64,
                });
                self.obs
                    .flush_ns
                    .record(self.obs.now_ns().saturating_sub(flush_start));
                return Ok(());
            }
            self.install_imm_flush(&mut inner, table)?
        };
        self.obs.event(EventKind::FlushEnd {
            id: flush_id,
            entries: entries.len() as u64,
            output_bytes,
            l0_runs: self.l0_runs.load(Ordering::Acquire) as u64,
        });
        self.obs
            .flush_ns
            .record(self.obs.now_ns().saturating_sub(flush_start));
        if let Some(old) = old_wal {
            let old_file = old.seal()?;
            old_file.delete()?;
        }
        self.bg.schedule_compact();
        Ok(())
    }

    /// Splices a flushed immutable memtable's table into L0, clears the
    /// slot, and persists the manifest. Returns the retired WAL; the
    /// caller deletes it only after the manifest is durable.
    fn install_imm_flush(
        &self,
        inner: &mut Inner,
        table: Option<Arc<Table>>,
    ) -> StorageResult<Option<Wal>> {
        if let Some(table) = table {
            let mut version = (*inner.version).clone();
            version.ensure_levels(1);
            version.levels[0].runs.insert(0, SortedRun::single(table));
            self.install_version(inner, version);
            DbStats::bump(&self.stats.flushes);
        }
        inner.imm = None;
        let old = inner.imm_wal.take();
        self.persist_manifest(inner)?;
        Ok(old)
    }

    /// Foreground flush of the immutable slot (explicit `flush` in
    /// `Threaded` mode). Runs under the held write guard; flushing the
    /// older frozen memtable *before* the active one keeps L0 runs
    /// youngest-first.
    fn flush_imm_locked(&self, inner: &mut Inner) -> StorageResult<()> {
        let Some(imm) = inner.imm.clone() else {
            return Ok(());
        };
        let entries: Vec<InternalEntry> = imm.range(Bound::Unbounded, Bound::Unbounded).collect();
        let flush_id = self.obs.next_flush_id();
        let flush_start = self.obs.now_ns();
        self.obs.event(EventKind::FlushStart {
            id: flush_id,
            entries: entries.len() as u64,
        });
        let version = Arc::clone(&inner.version);
        let table = if entries.is_empty() {
            None
        } else {
            Some(self.build_l0_table(&version, &entries)?)
        };
        let output_bytes = table.as_ref().map_or(0, |t| t.data_bytes());
        let old_wal = self.install_imm_flush(inner, table)?;
        self.obs.event(EventKind::FlushEnd {
            id: flush_id,
            entries: entries.len() as u64,
            output_bytes,
            l0_runs: self.l0_runs.load(Ordering::Acquire) as u64,
        });
        self.obs
            .flush_ns
            .record(self.obs.now_ns().saturating_sub(flush_start));
        if let Some(old) = old_wal {
            let old_file = old.seal()?;
            old_file.delete()?;
        }
        self.bg.flush_drained();
        Ok(())
    }

    /// Forces a memtable flush (and any resulting compaction cascade).
    pub fn flush(&self) -> StorageResult<()> {
        self.check_bg_error()?;
        if self.threaded() {
            {
                let mut inner = self.inner.write();
                self.flush_imm_locked(&mut inner)?;
                self.flush_active_locked(&mut inner)?;
            }
            return self.compact_to_quiescence(|| false);
        }
        let mut inner = self.inner.write();
        self.flush_active_locked(&mut inner)?;
        self.maybe_compact_locked(&mut inner)
    }

    /// Flushes the active *and* immutable memtables and waits until all
    /// background maintenance is quiescent. On return every acknowledged
    /// write sits in sorted runs (no memtable or queued job holds data),
    /// and any latched background error has been surfaced — the
    /// precondition a serving layer needs before a graceful shutdown
    /// hands the shard's device to a future `Db::open`.
    pub fn flush_all(&self) -> StorageResult<()> {
        self.flush()?;
        self.wait_background_idle();
        self.check_bg_error()
    }

    /// Current L0 run count from the lock-free backpressure gauge. This
    /// is the signal the engine's own slowdown/stall bands key off
    /// ([`LsmConfig::l0_slowdown_runs`] / [`LsmConfig::l0_stall_runs`]);
    /// it is exposed so admission control can shed load *before* a
    /// writer blocks inside the engine.
    pub fn l0_run_count(&self) -> usize {
        self.l0_runs.load(Ordering::Acquire)
    }

    /// Runs the compaction cascade to quiescence without flushing.
    pub fn compact(&self) -> StorageResult<()> {
        self.check_bg_error()?;
        if self.threaded() {
            return self.compact_to_quiescence(|| false);
        }
        let mut inner = self.inner.write();
        self.maybe_compact_locked(&mut inner)
    }

    /// Major compaction: flushes, then merges *everything* into a single
    /// run at the bottom level, garbage-collecting all tombstones and
    /// obsolete versions. The classic "full compaction" maintenance knob.
    pub fn major_compact(&self) -> StorageResult<()> {
        self.check_bg_error()?;
        let _c = self.threaded().then(|| self.compaction_lock.lock());
        let mut inner = self.inner.write();
        if self.threaded() {
            self.flush_imm_locked(&mut inner)?;
        }
        self.flush_active_locked(&mut inner)?;
        self.maybe_compact_locked(&mut inner)?;
        let version = (*inner.version).clone();
        let Some(last) = version.last_occupied_level() else {
            return Ok(());
        };
        let mut inputs: Vec<Arc<Table>> = Vec::new();
        for level in &version.levels {
            for run in &level.runs {
                inputs.extend(run.tables.iter().cloned());
            }
        }
        if inputs.len() <= 1 && version.total_runs() <= 1 {
            return Ok(());
        }
        let bits = self.bits_for_level(&version, last);
        let trace_id = self.obs.next_compaction_id();
        let input_entries: u64 = inputs.iter().map(|t| t.meta().num_entries).sum();
        let input_bytes: u64 = inputs.iter().map(|t| t.data_bytes()).sum();
        let started_ns = self.obs.now_ns();
        self.obs.event(EventKind::CompactionStart {
            id: trace_id,
            level: 0,
            target: last as u32,
            input_tables: inputs.len() as u64,
            input_entries,
            input_bytes,
        });
        let prep = PreparedCompaction {
            level: 0,
            target: last,
            bits,
            inputs: inputs.clone(),
            drop_tombstones: true,
            apply: CompactionApply::InPlace,
            trace_id,
            input_entries,
            input_bytes,
            started_ns,
        };
        let result = self.run_merge_scheduled(&prep)?;
        let mut new_version = Version::new();
        new_version.ensure_levels(last + 1);
        if !result.tables.is_empty() {
            new_version.levels[last].runs = vec![SortedRun::from_tables(result.tables.clone())];
        }
        DbStats::bump(&self.stats.compactions);
        self.stats
            .add(&self.stats.compaction_entries, result.entries_written);
        self.stats
            .add(&self.stats.tombstones_dropped, result.tombstones_dropped);
        self.stats
            .add(&self.stats.versions_dropped, result.versions_dropped);
        self.install_version(&mut inner, new_version);
        self.persist_manifest(&mut inner)?;
        self.obs.event(EventKind::CompactionEnd {
            id: trace_id,
            level: 0,
            target: last as u32,
            input_tables: inputs.len() as u64,
            input_entries,
            input_bytes,
            output_tables: result.tables.len() as u64,
            entries_written: result.entries_written,
            output_bytes: result.output_bytes,
            tombstones_dropped: result.tombstones_dropped,
            versions_dropped: result.versions_dropped,
        });
        self.obs
            .compaction_ns
            .record(self.obs.now_ns().saturating_sub(started_ns));
        for t in &inputs {
            if let Some(cache) = &self.cache {
                let max_block = t.meta().data_blocks.len().saturating_sub(1) as u64;
                cache.invalidate_file(t.id(), max_block);
            }
            t.mark_obsolete();
        }
        Ok(())
    }

    /// Forces the WAL tail to the device (group commit / `fsync`). Writes
    /// issued before `sync` returns survive a crash; unsynced tail records
    /// may be lost (standard torn-tail semantics).
    pub fn sync(&self) -> StorageResult<()> {
        let mut inner = self.inner.write();
        // Value log first: a WAL record referencing a separated value must
        // never become durable before the value bytes it points at —
        // otherwise a crash leaves an acknowledged pointer dangling past
        // the persisted end of the log.
        if let Some(vlog) = &mut inner.vlog {
            vlog.sync()?;
        }
        if let Some(wal) = &mut inner.wal {
            wal.sync()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Background coordination
    // ------------------------------------------------------------------

    /// Blocks until no background job is queued, running, or pending.
    /// No-op in `Inline` mode. A test/bench hook: after it returns, stats
    /// and level structure are quiescent (absent concurrent writers).
    pub fn wait_background_idle(&self) {
        if self.threaded() {
            self.bg.wait_idle();
        }
    }

    /// Holds queued background compactions (flushes still run). Paired
    /// with [`DbCore::resume_compaction`]; a test hook for building L0
    /// pressure deterministically.
    pub fn pause_compaction(&self) {
        self.bg.pause_compaction();
    }

    /// Releases [`DbCore::pause_compaction`].
    pub fn resume_compaction(&self) {
        self.bg.resume_compaction();
    }

    /// Whether the planner sees work to do (used by the background worker
    /// to close the quiesce-vs-new-flush race).
    pub(crate) fn compaction_needed(&self) -> bool {
        let cfg = self.effective_config();
        let inner = self.inner.read();
        compaction::plan(&inner.version, &cfg).is_some()
    }

    /// Runs the compaction cascade to quiescence, taking `inner` only
    /// briefly around planning and installs; the merges themselves run
    /// without any engine lock. `stop` is polled between steps so a
    /// pause/shutdown aborts promptly. Serialized by `compaction_lock`.
    pub(crate) fn compact_to_quiescence(&self, stop: impl Fn() -> bool) -> StorageResult<()> {
        let _c = self.compaction_lock.lock();
        for _ in 0..10_000 {
            if stop() {
                return Ok(());
            }
            let prep = {
                // re-read per step so a retune staged mid-cascade is
                // picked up by the next planning pass
                let cfg = self.effective_config();
                let mut inner = self.inner.write();
                let Some(task) = compaction::plan(&inner.version, &cfg) else {
                    return Ok(());
                };
                match self.prepare_compaction(&mut inner, task)? {
                    Some(p) => p,
                    None => return Ok(()),
                }
            };
            let result = self.run_merge_scheduled(&prep)?;
            {
                let mut inner = self.inner.write();
                self.install_compaction(&mut inner, &prep, result)?;
            }
            self.bg.notify_progress();
        }
        Err(StorageError::Corruption(
            "compaction cascade failed to converge".into(),
        ))
    }

    /// Runs one prepared compaction's merge through the scheduler:
    /// submit → admit → merge (serial or sharded per
    /// `max_subcompactions`) → throttle → complete with the job's I/O
    /// report. The engine runs one compaction at a time
    /// (`compaction_lock`), so admission always succeeds immediately; the
    /// scheduler still enforces and accounts the full policy so its
    /// invariants hold when tests drive it with N jobs.
    fn run_merge_scheduled(&self, prep: &PreparedCompaction) -> StorageResult<MergeResult> {
        let lo = prep
            .inputs
            .iter()
            .map(|t| t.meta().min_key.clone())
            .min()
            .unwrap_or_default();
        let hi = prep
            .inputs
            .iter()
            .map(|t| t.meta().max_key.clone())
            .max()
            .unwrap_or_default();
        let priority = if prep.level == 0 {
            JobPriority::L0Pressure
        } else {
            JobPriority::SizeTriggered
        };
        let job = self.sched.submit(JobSpec {
            level: prep.level,
            target: prep.target,
            lo,
            hi,
            priority,
        });
        let admitted = self.sched.try_dequeue();
        debug_assert!(
            admitted.as_ref().is_some_and(|(id, _)| *id == job),
            "single-compactor engine must admit its own job"
        );
        let result = self.execute_merge(prep);
        match &result {
            Ok(m) => {
                // The throttle paces *wall* bytes: debit input + output and
                // sleep the owed time. Inline mode accounts nothing and
                // never sleeps — its determinism (and the byte-identity
                // battery) must not depend on wall time.
                if self.threaded() {
                    let wait = self
                        .sched
                        .throttle_debit(prep.input_bytes + m.output_bytes);
                    if !wait.is_zero() {
                        std::thread::sleep(wait.min(std::time::Duration::from_secs(1)));
                    }
                }
                self.sched.complete(
                    job,
                    Ok(JobIoReport {
                        input_bytes: prep.input_bytes,
                        output_bytes: m.output_bytes,
                        input_entries: prep.input_entries,
                        entries_written: m.entries_written,
                    }),
                );
            }
            Err(e) => self.sched.complete(job, Err(e.to_string())),
        }
        result
    }

    /// The merge itself: serial `merge_tables` when `max_subcompactions`
    /// is 1 (or no boundary exists), otherwise the sharded path — fanned
    /// out across the worker pool under `Threaded`, executed serially
    /// under `Inline` (same shards, same bytes, no threads). Emits
    /// per-shard `SubcompactionStart`/`End` events around the fan-out.
    fn execute_merge(&self, prep: &PreparedCompaction) -> StorageResult<MergeResult> {
        let boundaries = if self.cfg.max_subcompactions > 1 {
            subcompact::shard_boundaries(&prep.inputs, self.cfg.max_subcompactions)
        } else {
            Vec::new()
        };
        if boundaries.is_empty() {
            // one shard ≡ the legacy serial path, I/O pattern included
            return merge_tables(
                &self.device,
                &self.cfg,
                self.cfg.index,
                prep.bits,
                &prep.inputs,
                prep.drop_tombstones,
            );
        }
        let shards = boundaries.len() + 1;
        let ids: Vec<u64> = (0..shards)
            .map(|_| self.obs.next_subcompaction_id())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            self.obs.event(EventKind::SubcompactionStart {
                id: *id,
                compaction: prep.trace_id,
                shard: i as u32,
                shards: shards as u32,
            });
        }
        let exec = if self.threaded() {
            ShardExec::Pool(&self.bg)
        } else {
            ShardExec::Serial
        };
        let sharded = subcompact::merge_tables_sharded_with(
            &self.device,
            &self.cfg,
            self.cfg.index,
            prep.bits,
            &prep.inputs,
            prep.drop_tombstones,
            &boundaries,
            exec,
        )?;
        for (i, (id, acc)) in ids.iter().zip(&sharded.shards).enumerate() {
            self.obs.event(EventKind::SubcompactionEnd {
                id: *id,
                compaction: prep.trace_id,
                shard: i as u32,
                input_entries: acc.entries_in,
                entries_written: acc.entries_written,
                tombstones_dropped: acc.tombstones_dropped,
                versions_dropped: acc.versions_dropped,
            });
        }
        Ok(sharded.merge)
    }

    /// Deletes files that carry a valid table footer but are referenced by
    /// nothing the engine knows — the stranded outputs of a compaction
    /// (serial or sharded) that crashed before its manifest rewrite.
    /// WAL/value-log/manifest files carry no table footer and are never
    /// touched; a torn table (footer unwritten) is left behind as inert
    /// garbage rather than misclassified. Returns the number deleted.
    fn cleanup_orphan_tables(&self) -> u64 {
        let referenced: std::collections::HashSet<u64> = {
            let inner = self.inner.read();
            let mut r: std::collections::HashSet<u64> =
                inner.version.all_table_ids().into_iter().collect();
            if let Some(w) = &inner.wal {
                r.insert(w.id().0);
            }
            if let Some(w) = &inner.imm_wal {
                r.insert(w.id().0);
            }
            if let Some(v) = &inner.vlog {
                r.insert(v.id().0);
            }
            if let Some(m) = inner.manifest {
                r.insert(m.0);
            }
            r
        };
        let mut files = self.device.live_files();
        files.sort_by_key(|f| f.0);
        let mut deleted = 0u64;
        for f in files {
            if referenced.contains(&f.0) {
                continue;
            }
            let Ok(n) = self.device.len_blocks(f) else { continue };
            if n == 0 {
                continue;
            }
            let Ok(block) = self.device.read(f, n - 1, 1, IoCategory::Misc) else {
                continue;
            };
            let Some((meta_start, meta_len)) = crate::sstable::meta::decode_footer(&block) else {
                continue;
            };
            // bounds sanity so a lucky bit pattern in a non-table file
            // (e.g. raw value bytes) cannot pass as a footer
            if meta_start >= n || meta_len == 0 {
                continue;
            }
            if self.device.delete(f).is_ok() {
                deleted += 1;
            }
        }
        if deleted > 0 {
            self.obs.event(EventKind::RecoveryStep {
                step: "orphans_deleted",
                detail: format!("{deleted} unreferenced table file(s)"),
            });
        }
        deleted
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Point lookup: the newest visible value for `key`. Takes a version
    /// snapshot and probes tables without holding any engine lock.
    pub fn get(&self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        self.get_with(key, |v| v.to_vec())
    }

    /// Point lookup into a caller-owned buffer: `buf` is cleared and
    /// filled with the value when the key is live. Returns whether the
    /// key was found. With a warm block cache this path performs no heap
    /// allocation at all (without key-value separation) — the value bytes
    /// are copied straight from the cached block into `buf`.
    pub fn get_into(&self, key: &[u8], buf: &mut Vec<u8>) -> StorageResult<bool> {
        Ok(self
            .get_with(key, |v| {
                buf.clear();
                buf.extend_from_slice(v);
            })?
            .is_some())
    }

    /// Point lookup through a borrowed view: `f` runs on the value bytes
    /// in place — in the memtable arena or the cached block — and its
    /// result is returned. This is the zero-copy primitive [`DbCore::get`]
    /// and [`DbCore::get_into`] are wrappers over. `f` is called at most
    /// once, and never for a tombstone.
    pub fn get_with<R>(
        &self,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> StorageResult<Option<R>> {
        let start = self.obs.now_ns();
        let out = self.get_with_inner(key, f);
        self.obs
            .get_ns
            .record(self.obs.now_ns().saturating_sub(start));
        out
    }

    fn get_with_inner<R>(
        &self,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> StorageResult<Option<R>> {
        DbStats::bump(&self.stats.gets);
        self.heat.lock().record(heat_key(key));
        let kv_sep = self.cfg.kv_separation.is_some();
        let mut f = Some(f);
        let version = {
            let inner = self.inner.read();
            let mem_hit = inner
                .mem
                .get_ref(key)
                .or_else(|| inner.imm.as_ref().and_then(|m| m.get_ref(key)));
            if let Some(e) = mem_hit {
                return match e.kind {
                    ValueKind::Delete => Ok(None),
                    ValueKind::Put => {
                        if kv_sep {
                            // pointer chase may read the value log
                            let v = self.resolve_value(&inner, e.value.to_vec())?;
                            DbStats::bump(&self.stats.gets_found);
                            Ok(Some((f.take().unwrap())(&v)))
                        } else {
                            DbStats::bump(&self.stats.gets_found);
                            Ok(Some((f.take().unwrap())(e.value)))
                        }
                    }
                };
            }
            Arc::clone(&inner.version)
        };
        for level in &version.levels {
            for run in &level.runs {
                let Some(table) = run.table_for(key) else {
                    DbStats::bump(&self.stats.range_prunes);
                    continue;
                };
                DbStats::bump(&self.stats.runs_probed);
                let outcome = if kv_sep {
                    // owned detour: a stored pointer needs a value-log read
                    let (hit, probe) =
                        table.get_with(key, self.cache.as_deref(), |e| (e.kind, e.value.to_vec()))?;
                    self.note_probe(&probe);
                    match hit {
                        Some((ValueKind::Delete, _)) => Some(None),
                        Some((ValueKind::Put, raw)) => {
                            let v = self.resolve_raw(raw)?;
                            Some(Some((f.take().unwrap())(&v)))
                        }
                        None => None,
                    }
                } else {
                    // borrowed fast path: `f` runs on the block bytes in
                    // place; the slot dance keeps it available for the
                    // next table when this one misses
                    let slot = &mut f;
                    let (hit, probe) =
                        table.get_with(key, self.cache.as_deref(), |e| match e.kind {
                            ValueKind::Delete => None,
                            ValueKind::Put => Some((slot.take().unwrap())(e.value)),
                        })?;
                    self.note_probe(&probe);
                    hit
                };
                if let Some(found) = outcome {
                    return match found {
                        None => Ok(None),
                        Some(r) => {
                            DbStats::bump(&self.stats.gets_found);
                            Ok(Some(r))
                        }
                    };
                }
            }
        }
        Ok(None)
    }

    fn note_probe(&self, probe: &crate::sstable::TableProbe) {
        if probe.filter_pruned {
            DbStats::bump(&self.stats.filter_prunes);
        }
        self.stats
            .add(&self.stats.blocks_examined, probe.blocks_examined as u64);
    }

    /// Resolves a raw stored value when no read guard is held (the table
    /// probe path): takes a brief read lock for the active value log.
    fn resolve_raw(&self, raw: Vec<u8>) -> StorageResult<Vec<u8>> {
        if self.cfg.kv_separation.is_none() {
            return Ok(raw);
        }
        let inner = self.inner.read();
        self.resolve_value(&inner, raw)
    }

    fn resolve_value(&self, inner: &Inner, raw: Vec<u8>) -> StorageResult<Vec<u8>> {
        if self.cfg.kv_separation.is_none() {
            return Ok(raw);
        }
        match decode_value(&raw) {
            Some(Ok(inline)) => Ok(inline.to_vec()),
            Some(Err(ptr)) => {
                DbStats::bump(&self.stats.vlog_resolves);
                match &inner.vlog {
                    Some(active) if active.id() == ptr.file => active.read(ptr),
                    _ => read_pointer_from_device(&self.device, ptr),
                }
            }
            None => Err(StorageError::Corruption("bad separated value".into())),
        }
    }

    /// Range scan: up to `limit` live entries with `range.start ≤ key <
    /// range.end`, in key order, over a consistent snapshot. Memtable
    /// state is copied under a brief read lock; table I/O and the merge
    /// run lock-free against the version snapshot.
    pub fn scan(&self, range: Range<Vec<u8>>, limit: usize) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let start = self.obs.now_ns();
        let out = self.scan_inner(range, limit);
        self.obs
            .scan_ns
            .record(self.obs.now_ns().saturating_sub(start));
        out
    }

    fn scan_inner(
        &self,
        range: Range<Vec<u8>>,
        limit: usize,
    ) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        DbStats::bump(&self.stats.scans);
        if range.start >= range.end {
            return Ok(Vec::new());
        }
        let start = range.start.as_slice();
        let end = range.end.as_slice();
        let sources = self.scan_sources(start, end);
        let mut merger = crate::iter::MergingIter::new(sources, false)?;
        let entries = merger.collect_until(Some(end), false, limit)?;
        self.stats
            .add(&self.stats.scan_entries, entries.len() as u64);
        let inner = self.inner.read();
        entries
            .into_iter()
            .map(|e| Ok((e.key, self.resolve_value(&inner, e.value)?)))
            .collect()
    }

    /// Assembles merge sources for a `[start, end)` scan: memtable
    /// snapshots (rank 0 = youngest, frozen memtable next), then sorted
    /// runs youngest level/run first. Range-filter pruning is an in-memory
    /// probe, so it happens up front, while data blocks are only read
    /// lazily as the merge reaches each table.
    fn scan_sources(&self, start: &[u8], end: &[u8]) -> Vec<crate::iter::Source> {
        let mut sources = Vec::new();
        let version = {
            let inner = self.inner.read();
            let mem_entries: Vec<InternalEntry> = inner
                .mem
                .range(Bound::Included(start), Bound::Excluded(end))
                .collect();
            sources.push(crate::iter::Source::mem(mem_entries));
            if let Some(imm) = &inner.imm {
                let imm_entries: Vec<InternalEntry> = imm
                    .range(Bound::Included(start), Bound::Excluded(end))
                    .collect();
                sources.push(crate::iter::Source::mem(imm_entries));
            }
            Arc::clone(&inner.version)
        };
        for level in &version.levels {
            for run in &level.runs {
                let tables: Vec<_> = run
                    .overlapping(start, end)
                    .iter()
                    .filter(|table| {
                        let keep = table
                            .range_may_overlap(Bound::Included(start), Bound::Excluded(end));
                        if !keep {
                            DbStats::bump(&self.stats.range_filter_prunes);
                        }
                        keep
                    })
                    .cloned()
                    .collect();
                if !tables.is_empty() {
                    sources.push(crate::iter::Source::Run(crate::iter::RunIterator::new(
                        tables,
                        start.to_vec(),
                        self.cache.clone(),
                    )));
                }
            }
        }
        sources
    }

    /// Streaming range scan through borrowed views: calls `f(key, value)`
    /// for each live entry with `start ≤ key < end`, in key order, up to
    /// `limit` entries, and returns how many were visited. The bytes are
    /// borrowed from the merge cursor (cached blocks / memtable copies) —
    /// no per-entry key/value `Vec`s are materialized, which is what
    /// [`DbCore::scan`] pays to build its owned result.
    pub fn scan_with(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
        f: impl FnMut(&[u8], &[u8]),
    ) -> StorageResult<usize> {
        let t0 = self.obs.now_ns();
        let out = self.scan_with_inner(start, end, limit, f);
        self.obs
            .scan_ns
            .record(self.obs.now_ns().saturating_sub(t0));
        out
    }

    fn scan_with_inner(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
        mut f: impl FnMut(&[u8], &[u8]),
    ) -> StorageResult<usize> {
        DbStats::bump(&self.stats.scans);
        if start >= end {
            return Ok(0);
        }
        let sources = self.scan_sources(start, end);
        let mut merger = crate::iter::MergingIter::new(sources, false)?;
        let kv_sep = self.cfg.kv_separation.is_some();
        let mut n = 0usize;
        while n < limit && merger.advance_visible()? {
            if merger.key() >= end {
                break;
            }
            if kv_sep {
                // pointer chase: the resolved value is owned by necessity
                let v = self.resolve_raw(merger.value().to_vec())?;
                f(merger.key(), &v);
            } else {
                f(merger.key(), merger.value());
            }
            n += 1;
        }
        self.stats.add(&self.stats.scan_entries, n as u64);
        Ok(n)
    }

    /// Takes a long-lived point-in-time snapshot. Unlike
    /// [`DbCore::iter_range`], the snapshot holds no lock: writers and
    /// compactions proceed freely, and the snapshot's files stay alive
    /// (deletion is deferred to the last reference) until it is dropped.
    ///
    /// The memtable is copied (O(buffer size)); with key-value separation
    /// the value-log tail is synced first so pointer reads need no access
    /// to engine internals.
    pub fn snapshot(&self) -> StorageResult<crate::snapshot::Snapshot> {
        let mut inner = self.inner.write();
        if let Some(vlog) = &mut inner.vlog {
            vlog.sync()?;
        }
        Ok(crate::snapshot::Snapshot {
            mem: inner.mem.clone(),
            imm: inner.imm.clone(),
            version: Arc::clone(&inner.version),
            cache: self.cache.clone(),
            device: Arc::clone(&self.device),
            kv_separation: self.cfg.kv_separation.is_some(),
            pin: crate::snapshot::SnapshotPin::new(Arc::clone(&self.snapshot_count)),
        })
    }

    // ------------------------------------------------------------------
    // Optimistic transactions (see `crate::txn` for the handle API)
    // ------------------------------------------------------------------

    /// Begins an optimistic transaction on this engine: registers its
    /// snapshot floor in `txn_floors` and captures the snapshot **under
    /// the same lock acquisition**, so every write committed after the
    /// floor is guaranteed to be recorded in `txn_recent` (writers check
    /// `txn_floors` while holding the write lock).
    pub(crate) fn txn_begin(&self) -> StorageResult<(crate::snapshot::Snapshot, u64)> {
        let mut inner = self.inner.write();
        if let Some(vlog) = &mut inner.vlog {
            vlog.sync()?;
        }
        let snap_seqno = inner.next_seqno - 1;
        *inner.txn_floors.entry(snap_seqno).or_insert(0) += 1;
        let snap = crate::snapshot::Snapshot {
            mem: inner.mem.clone(),
            imm: inner.imm.clone(),
            version: Arc::clone(&inner.version),
            cache: self.cache.clone(),
            device: Arc::clone(&self.device),
            kv_separation: self.cfg.kv_separation.is_some(),
            pin: crate::snapshot::SnapshotPin::new(Arc::clone(&self.snapshot_count)),
        };
        drop(inner);
        self.obs.txn_begins.inc();
        self.obs.event(EventKind::TxnBegin { snap_seqno });
        Ok((snap, snap_seqno))
    }

    /// Deregisters a transaction's snapshot floor. When the last live
    /// transaction ends the OCC map is dropped wholesale; otherwise it is
    /// pruned below the oldest surviving floor (entries at or below every
    /// live floor can never produce a conflict), so `txn_recent` is
    /// bounded by the write traffic within the oldest live transaction's
    /// lifetime — not by total history.
    pub(crate) fn txn_end(&self, snap_seqno: u64) {
        let mut inner = self.inner.write();
        if let Some(c) = inner.txn_floors.get_mut(&snap_seqno) {
            *c -= 1;
            if *c == 0 {
                inner.txn_floors.remove(&snap_seqno);
            }
        }
        if inner.txn_floors.is_empty() {
            inner.txn_recent = std::collections::HashMap::new();
        } else if inner.txn_recent.len() > TXN_RECENT_PRUNE_LEN {
            let min = *inner
                .txn_floors
                .keys()
                .next()
                .expect("floors checked non-empty");
            inner.txn_recent.retain(|_, s| *s > min);
        }
    }

    /// Re-checks memtable fullness after a transaction commit released
    /// the write lock (the commit's apply defers flush so a multi-shard
    /// commit never runs maintenance while holding several engines'
    /// locks). Mirrors the tail of `write_batch_inner`.
    pub(crate) fn post_commit_maintenance(&self) -> StorageResult<()> {
        let mut inner = self.inner.write();
        if inner.mem.bytes() >= self.cfg.buffer_bytes {
            if self.threaded() {
                return self.freeze_or_wait(inner);
            }
            self.flush_active_locked(&mut inner)?;
            self.maybe_compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Applies one validated transaction write-set under an already-held
    /// write guard: the lean core of `write_batch_inner` (seqnos, kv
    /// separation, WAL, memtable, OCC recording) with two deliberate
    /// differences — the WAL append is an **atomic group**
    /// ([`Wal::append_atomic`]: recovery replays all of it or none), and
    /// memtable-full maintenance is deferred to
    /// [`DbCore::post_commit_maintenance`].
    fn apply_txn_part_locked(
        &self,
        inner: &mut Inner,
        batch: &mut WriteBatch,
    ) -> StorageResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut records: Vec<(u64, ValueKind, Vec<u8>, Vec<u8>)> =
            Vec::with_capacity(batch.ops.len());
        for (key, kind, value) in batch.ops.drain(..) {
            let seqno = inner.next_seqno;
            inner.next_seqno += 1;
            match kind {
                ValueKind::Put => {
                    DbStats::bump(&self.stats.puts);
                    self.stats
                        .add(&self.stats.bytes_ingested, (key.len() + value.len()) as u64);
                }
                ValueKind::Delete => {
                    DbStats::bump(&self.stats.deletes);
                    self.stats.add(&self.stats.bytes_ingested, key.len() as u64);
                }
            }
            let stored = match (self.cfg.kv_separation, kind) {
                (Some(sep), ValueKind::Put) => {
                    if value.len() >= sep.min_value_bytes {
                        let vlog = inner.vlog.as_mut().ok_or_else(|| {
                            StorageError::Corruption(
                                "kv separation enabled but no value log is open".into(),
                            )
                        })?;
                        let ptr = vlog.append(&key, &value)?;
                        DbStats::bump(&self.stats.vlog_values);
                        encode_pointer(ptr)
                    } else {
                        encode_inline(&value)
                    }
                }
                (Some(_), ValueKind::Delete) => Vec::new(),
                (None, _) => value,
            };
            records.push((seqno, kind, key, stored));
        }
        if let Some(wal) = &mut inner.wal {
            wal.append_atomic(&records)?;
            DbStats::bump(&self.stats.wal_appends);
        }
        for (seqno, kind, key, stored) in &records {
            inner.mem.insert(key, *seqno, *kind, stored);
            Inner::txn_record(&inner.txn_floors, &mut inner.txn_recent, key, *seqno);
        }
        self.obs.memtable_bytes_gauge.set(inner.mem.bytes() as i64);
        Ok(())
    }

    /// A streaming iterator over live entries with `start ≤ key < end`
    /// (unbounded end when `end` is `None`), over a consistent snapshot.
    ///
    /// The iterator holds a read lock on the engine for its lifetime:
    /// reads proceed concurrently, writes block until it is dropped — the
    /// deterministic analogue of production engines' snapshot pinning.
    pub fn iter_range(
        &self,
        start: Vec<u8>,
        end: Option<Vec<u8>>,
    ) -> StorageResult<DbIterator<'_>> {
        DbStats::bump(&self.stats.scans);
        if let Some(e) = &end {
            if start >= *e {
                // empty range: an iterator that yields nothing
                let guard = self.inner.read();
                return Ok(DbIterator {
                    db: self,
                    _guard: guard,
                    merger: crate::iter::MergingIter::new(Vec::new(), false)?,
                    end,
                });
            }
        }
        let guard = self.inner.read();
        let hi_bound = match &end {
            Some(e) => Bound::Excluded(e.as_slice()),
            None => Bound::Unbounded,
        };
        let mut sources = Vec::new();
        let mem_entries: Vec<InternalEntry> = guard
            .mem
            .range(Bound::Included(start.as_slice()), hi_bound)
            .collect();
        sources.push(crate::iter::Source::mem(mem_entries));
        if let Some(imm) = &guard.imm {
            let imm_entries: Vec<InternalEntry> = imm
                .range(Bound::Included(start.as_slice()), hi_bound)
                .collect();
            sources.push(crate::iter::Source::mem(imm_entries));
        }
        let version = Arc::clone(&guard.version);
        for level in &version.levels {
            for run in &level.runs {
                let overlapping = match &end {
                    Some(e) => run.overlapping(&start, e),
                    None => {
                        let idx = run
                            .tables
                            .partition_point(|t| t.meta().max_key.as_slice() < start.as_slice());
                        &run.tables[idx..]
                    }
                };
                let tables: Vec<_> = overlapping.to_vec();
                if !tables.is_empty() {
                    sources.push(crate::iter::Source::Run(crate::iter::RunIterator::new(
                        tables,
                        start.clone(),
                        self.cache.clone(),
                    )));
                }
            }
        }
        let merger = crate::iter::MergingIter::new(sources, false)?;
        Ok(DbIterator {
            db: self,
            _guard: guard,
            merger,
            end,
        })
    }

    /// Scan helper: first `limit` live entries with key ≥ `start`.
    pub fn scan_from(&self, start: Vec<u8>, limit: usize) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        // an unbounded scan is a scan to the key-space maximum
        let mut end = start.clone();
        end.resize(64, 0xFF);
        end.fill(0xFF);
        self.scan(start..end, limit)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Per-level `(runs, bytes, entries)` summary.
    pub fn level_summary(&self) -> Vec<(usize, u64, u64)> {
        let inner = self.inner.read();
        inner
            .version
            .levels
            .iter()
            .map(|l| {
                (
                    l.runs.iter().filter(|r| !r.is_empty()).count(),
                    l.bytes(),
                    l.num_entries(),
                )
            })
            .collect()
    }

    /// Total sorted runs a lookup may probe.
    pub fn total_runs(&self) -> usize {
        self.inner.read().version.total_runs()
    }

    /// Total in-memory filter bits across live tables.
    pub fn total_filter_bits(&self) -> usize {
        let inner = self.inner.read();
        inner
            .version
            .levels
            .iter()
            .flat_map(|l| &l.runs)
            .flat_map(|r| &r.tables)
            .map(|t| t.filter_size_bits())
            .sum()
    }

    /// Total in-memory block-index bits across live tables.
    pub fn total_index_bits(&self) -> usize {
        let inner = self.inner.read();
        inner
            .version
            .levels
            .iter()
            .flat_map(|l| &l.runs)
            .flat_map(|r| &r.tables)
            .map(|t| t.index_size_bits())
            .sum()
    }

    /// Debug helper: for each table whose range covers `key`, reports the
    /// table id, its key range, and what the lookup found. Used by tests
    /// diagnosing locator issues.
    pub fn debug_probe(&self, key: &[u8]) -> Vec<String> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        for (li, level) in inner.version.levels.iter().enumerate() {
            for (ri, run) in level.runs.iter().enumerate() {
                for t in &run.tables {
                    if t.meta().key_in_range(key) {
                        let got = t.get(key, None);
                        out.push(format!(
                            "L{li} run{ri} table{} [{}..{}] blocks={} -> {:?}",
                            t.id(),
                            String::from_utf8_lossy(&t.meta().min_key),
                            String::from_utf8_lossy(&t.meta().max_key),
                            t.meta().data_blocks.len(),
                            got.map(|g| (g.entry.is_some(), g.filter_pruned, g.blocks_examined))
                        ));
                    }
                }
            }
        }
        out
    }

    /// Live entries visible to readers (excluding shadowed versions).
    pub fn approximate_entries(&self) -> u64 {
        let inner = self.inner.read();
        inner.version.total_entries()
            + inner.mem.len() as u64
            + inner.imm.as_ref().map_or(0, |m| m.len() as u64)
    }

    /// Suggests a key splitting the data in `(lo, hi)` into two roughly
    /// equal halves by entry count, without reading any data block: the
    /// candidates are table fence pointers (each weighted by its table's
    /// entries-per-block, since one fence stands for one block) plus
    /// memtable keys (weight 1), and the pick is the weighted median.
    /// `None` when the range holds no candidate strictly inside it — an
    /// empty or single-key range cannot be split.
    pub fn suggest_split_key(&self, lo: &[u8], hi: Option<&[u8]>) -> Option<Vec<u8>> {
        let inner = self.inner.read();
        let in_range = |k: &[u8]| k > lo && hi.is_none_or(|h| k < h);
        let mut keys: Vec<(Vec<u8>, u64)> = Vec::new();
        for level in &inner.version.levels {
            for run in &level.runs {
                for t in &run.tables {
                    let m = t.meta();
                    let w = (m.num_entries / m.fences.len().max(1) as u64).max(1);
                    for f in &m.fences {
                        if in_range(f) {
                            keys.push((f.clone(), w));
                        }
                    }
                }
            }
        }
        let hi_bound = match hi {
            Some(h) => Bound::Excluded(h),
            None => Bound::Unbounded,
        };
        for e in inner.mem.range(Bound::Excluded(lo), hi_bound) {
            keys.push((e.key, 1));
        }
        if let Some(imm) = &inner.imm {
            for e in imm.range(Bound::Excluded(lo), hi_bound) {
                keys.push((e.key, 1));
            }
        }
        drop(inner);
        if keys.is_empty() {
            return None;
        }
        keys.sort();
        // collapse duplicates (a key in several sources), summing weights
        let mut merged: Vec<(Vec<u8>, u64)> = Vec::with_capacity(keys.len());
        for (k, w) in keys {
            match merged.last_mut() {
                Some(last) if last.0 == k => last.1 += w,
                _ => merged.push((k, w)),
            }
        }
        let total: u64 = merged.iter().map(|(_, w)| w).sum();
        let mut cum = 0u64;
        for (k, w) in &merged {
            cum += w;
            if cum * 2 >= total {
                return Some(k.clone());
            }
        }
        merged.pop().map(|(k, _)| k)
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    fn bits_for_level(&self, version: &Version, level: usize) -> f64 {
        // Read through the dynamic overlay: a retuned filter budget or
        // allocation strategy applies to the next table build, here.
        let bits_per_key = self.dynamic.bits_per_key().unwrap_or(self.cfg.bits_per_key);
        let allocation = self
            .dynamic
            .filter_allocation()
            .unwrap_or(self.cfg.filter_allocation);
        let size_ratio = self.dynamic.size_ratio().unwrap_or(self.cfg.size_ratio);
        match allocation {
            FilterAllocation::Uniform => bits_per_key,
            FilterAllocation::Monkey => {
                let mut counts = version.entries_per_level();
                if counts.len() <= level {
                    counts.resize(level + 1, 0);
                }
                let total: u64 = counts.iter().sum();
                if total == 0 {
                    return bits_per_key;
                }
                // project sizes for currently-empty levels from the tree's
                // geometry, so a fresh L0 table still receives the high
                // bits/key Monkey assigns small levels
                let last = counts.iter().rposition(|&c| c > 0).unwrap_or(level);
                let bottom = counts[last].max(1);
                let t = size_ratio.max(2) as u64;
                for (i, c) in counts.iter_mut().enumerate() {
                    if *c == 0 {
                        let depth = last.abs_diff(i) as u32;
                        *c = (bottom / t.saturating_pow(depth)).max(1);
                    }
                }
                let budget = bits_per_key * total as f64;
                let alloc = monkey_allocation(&counts, budget);
                alloc
                    .bits_per_key
                    .get(level)
                    .copied()
                    .unwrap_or(bits_per_key)
            }
        }
    }

    /// Builds one L0 table from sorted memtable entries. `version` only
    /// informs the Monkey filter allocation.
    fn build_l0_table(&self, version: &Version, entries: &[InternalEntry]) -> StorageResult<Arc<Table>> {
        let bits = self.bits_for_level(version, 0);
        let mut builder = TableBuilder::new(Arc::clone(&self.device), &self.cfg, bits)?;
        for e in entries {
            builder.add(&e.key, e.seqno, e.kind, &e.value)?;
        }
        let (file, _meta) = builder.finish()?;
        Table::open(file, self.cfg.index)
    }

    /// Flushes the *active* memtable to L0 under the held write guard
    /// (the `Inline` flush, and the tail of an explicit `Threaded` flush).
    fn flush_active_locked(&self, inner: &mut Inner) -> StorageResult<()> {
        if inner.mem.is_empty() {
            return Ok(());
        }
        let entries = inner.mem.drain_sorted();
        debug_assert!(inner.mem.is_empty());
        self.obs.memtable_bytes_gauge.set(0);
        let flush_id = self.obs.next_flush_id();
        let flush_start = self.obs.now_ns();
        self.obs.event(EventKind::FlushStart {
            id: flush_id,
            entries: entries.len() as u64,
        });
        // Separated values referenced by these entries must be durable
        // before the table pointing at them is: once the flush lands, the
        // WAL that could replay the values is deleted.
        if let Some(vlog) = &mut inner.vlog {
            vlog.sync()?;
        }
        let version = Arc::clone(&inner.version);
        let table = self.build_l0_table(&version, &entries)?;
        let output_bytes = table.data_bytes();
        let mut new_version = (*inner.version).clone();
        new_version.ensure_levels(1);
        new_version.levels[0].runs.insert(0, SortedRun::single(table));
        self.install_version(inner, new_version);
        DbStats::bump(&self.stats.flushes);
        self.obs.event(EventKind::FlushEnd {
            id: flush_id,
            entries: entries.len() as u64,
            output_bytes,
            l0_runs: self.l0_runs.load(Ordering::Acquire) as u64,
        });
        // Rotate the WAL. Ordering matters for crash safety: the old WAL
        // may only be deleted after the manifest naming the new table (and
        // the new WAL) is durable. Deleting first opens a window where a
        // crash loses the flushed entries — the old manifest survives but
        // the WAL holding its unflushed records is gone.
        let old_wal = if self.cfg.wal {
            let old = inner.wal.take();
            inner.wal = Some(Wal::create(Arc::clone(&self.device))?);
            if let (Some(old), Some(new)) = (&old, &inner.wal) {
                self.obs.event(EventKind::WalRotation {
                    old_wal: old.id().0,
                    new_wal: new.id().0,
                    old_records: old.records(),
                });
            }
            old
        } else {
            None
        };
        self.persist_manifest(inner)?;
        if let Some(old) = old_wal {
            let old_file = old.seal()?;
            old_file.delete()?;
        }
        self.obs
            .flush_ns
            .record(self.obs.now_ns().saturating_sub(flush_start));
        Ok(())
    }

    /// Runs the compaction cascade to quiescence under the held write
    /// guard (the `Inline` path — merges included, deterministically).
    fn maybe_compact_locked(&self, inner: &mut Inner) -> StorageResult<()> {
        // a generous bound: each step strictly reduces pressure, so hitting
        // it means a planner bug, not a big workload
        for _ in 0..10_000 {
            let cfg = self.effective_config();
            let Some(task) = compaction::plan(&inner.version, &cfg) else {
                return Ok(());
            };
            let Some(prep) = self.prepare_compaction(inner, task)? else {
                return Ok(());
            };
            let result = self.run_merge_scheduled(&prep)?;
            self.install_compaction(inner, &prep, result)?;
        }
        Err(StorageError::Corruption(
            "compaction cascade failed to converge".into(),
        ))
    }

    /// Resolves a planned task into concrete inputs against the current
    /// version. Pure bookkeeping — no table I/O. Returns `None` when the
    /// task turns out to be vacuous.
    fn prepare_compaction(
        &self,
        inner: &mut Inner,
        task: CompactionTask,
    ) -> StorageResult<Option<PreparedCompaction>> {
        let version = Arc::clone(&inner.version);
        let level = task.level();
        let target = match task {
            CompactionTask::MergeInPlace { .. } => level,
            _ => level + 1,
        };
        let bits = self.bits_for_level(&version, target);
        let mut inputs: Vec<Arc<Table>> = Vec::new();
        let drop_tombstones;
        let apply;
        match task {
            CompactionTask::MergeIntoNext { .. } => {
                for run in &version.levels[level].runs {
                    inputs.extend(run.tables.iter().cloned());
                }
                let lo = inputs
                    .iter()
                    .map(|t| t.meta().min_key.clone())
                    .min()
                    .unwrap_or_default();
                let hi = inputs
                    .iter()
                    .map(|t| t.meta().max_key.clone())
                    .max()
                    .unwrap_or_default();
                let target_runs = version
                    .levels
                    .get(target)
                    .map(|l| l.runs.clone())
                    .unwrap_or_default();
                if target_runs.len() <= 1 {
                    // a single-run target keeps its non-overlapping tables
                    if let Some(run) = target_runs.first() {
                        for t in &run.tables {
                            if t.meta().max_key.as_slice() < lo.as_slice()
                                || t.meta().min_key.as_slice() > hi.as_slice()
                            {
                                continue;
                            }
                            inputs.push(Arc::clone(t));
                        }
                    }
                } else {
                    // transient multi-run target: fold everything in
                    for run in &target_runs {
                        inputs.extend(run.tables.iter().cloned());
                    }
                }
                drop_tombstones = compaction::may_drop_tombstones(&version, target, true);
                apply = CompactionApply::ReplaceTargetRun;
            }
            CompactionTask::AppendToNext { .. } => {
                for run in &version.levels[level].runs {
                    inputs.extend(run.tables.iter().cloned());
                }
                drop_tombstones = compaction::may_drop_tombstones(&version, target, false)
                    && version.levels.get(target).is_none_or(|l| l.is_empty());
                apply = CompactionApply::AppendRun;
            }
            CompactionTask::MergeInPlace { .. } => {
                for run in &version.levels[level].runs {
                    inputs.extend(run.tables.iter().cloned());
                }
                drop_tombstones = compaction::may_drop_tombstones(&version, level, true);
                apply = CompactionApply::InPlace;
            }
            CompactionTask::PartialIntoNext { .. } => {
                let CompactionGranularity::Partial(picker) = self.cfg.granularity else {
                    return Err(StorageError::Corruption(
                        "partial task without partial granularity".into(),
                    ));
                };
                let run = version.levels[level]
                    .runs
                    .first()
                    .cloned()
                    .unwrap_or_default();
                if run.tables.is_empty() {
                    return Ok(None);
                }
                if inner.rr_cursors.len() <= level {
                    inner.rr_cursors.resize(level + 1, 0);
                }
                let next_run = version
                    .levels
                    .get(target)
                    .and_then(|l| l.runs.first())
                    .cloned();
                let idx = pick_file(picker, &run, next_run.as_ref(), &mut inner.rr_cursors[level]);
                let victim = Arc::clone(&run.tables[idx]);
                let (lo, hi) = (victim.meta().min_key.clone(), victim.meta().max_key.clone());
                inputs.push(victim);
                if let Some(trun) = &next_run {
                    for t in &trun.tables {
                        if t.meta().max_key.as_slice() < lo.as_slice()
                            || t.meta().min_key.as_slice() > hi.as_slice()
                        {
                            continue;
                        }
                        inputs.push(Arc::clone(t));
                    }
                }
                drop_tombstones = compaction::may_drop_tombstones(&version, target, true);
                apply = CompactionApply::ReplaceTargetRun;
            }
        }
        let trace_id = self.obs.next_compaction_id();
        let input_entries: u64 = inputs.iter().map(|t| t.meta().num_entries).sum();
        let input_bytes: u64 = inputs.iter().map(|t| t.data_bytes()).sum();
        self.obs.event(EventKind::CompactionStart {
            id: trace_id,
            level: level as u32,
            target: target as u32,
            input_tables: inputs.len() as u64,
            input_entries,
            input_bytes,
        });
        Ok(Some(PreparedCompaction {
            level,
            target,
            bits,
            inputs,
            drop_tombstones,
            apply,
            trace_id,
            input_entries,
            input_bytes,
            started_ns: self.obs.now_ns(),
        }))
    }

    /// Installs a merge's outputs by *rebasing* onto the current version:
    /// every input table is filtered out wherever it sits, surviving runs
    /// are kept in order, and the outputs are spliced per the task shape.
    /// With no concurrent version changes (the `Inline` path) this is
    /// exactly the direct splice; under `Threaded`, runs flushed to L0
    /// during the merge survive untouched — the single-compactor
    /// invariant (`compaction_lock`) guarantees nothing else moved.
    fn install_compaction(
        &self,
        inner: &mut Inner,
        prep: &PreparedCompaction,
        result: MergeResult,
    ) -> StorageResult<()> {
        let input_ids: std::collections::HashSet<u64> =
            prep.inputs.iter().map(|t| t.id()).collect();
        let cur = &inner.version;
        let mut new_version = Version::new();
        new_version.ensure_levels(cur.levels.len().max(prep.target + 1));
        for (i, level) in cur.levels.iter().enumerate() {
            for run in &level.runs {
                let kept: Vec<Arc<Table>> = run
                    .tables
                    .iter()
                    .filter(|t| !input_ids.contains(&t.id()))
                    .cloned()
                    .collect();
                if !kept.is_empty() {
                    new_version.levels[i].runs.push(SortedRun::from_tables(kept));
                }
            }
        }
        match prep.apply {
            CompactionApply::ReplaceTargetRun => {
                let mut tables: Vec<Arc<Table>> = new_version.levels[prep.target]
                    .runs
                    .drain(..)
                    .flat_map(|r| r.tables)
                    .collect();
                tables.extend(result.tables.iter().cloned());
                tables.sort_by(|a, b| a.meta().min_key.cmp(&b.meta().min_key));
                new_version.levels[prep.target].runs = if tables.is_empty() {
                    Vec::new()
                } else {
                    vec![SortedRun::from_tables(tables)]
                };
            }
            CompactionApply::AppendRun => {
                if !result.tables.is_empty() {
                    new_version.levels[prep.target]
                        .runs
                        .insert(0, SortedRun::from_tables(result.tables.clone()));
                }
            }
            CompactionApply::InPlace => {
                // outputs merge the *oldest* runs of the level, so they go
                // after any runs flushed while the merge ran
                if !result.tables.is_empty() {
                    new_version.levels[prep.level]
                        .runs
                        .push(SortedRun::from_tables(result.tables.clone()));
                }
            }
        }

        // bookkeeping
        DbStats::bump(&self.stats.compactions);
        self.stats
            .add(&self.stats.compaction_entries, result.entries_written);
        self.stats
            .add(&self.stats.tombstones_dropped, result.tombstones_dropped);
        self.stats
            .add(&self.stats.versions_dropped, result.versions_dropped);
        DbStats::record_max(
            &self.stats.largest_compaction_entries,
            result.entries_written,
        );

        self.install_version(inner, new_version);
        self.persist_manifest(inner)?;
        self.obs.event(EventKind::CompactionEnd {
            id: prep.trace_id,
            level: prep.level as u32,
            target: prep.target as u32,
            input_tables: prep.inputs.len() as u64,
            input_entries: prep.input_entries,
            input_bytes: prep.input_bytes,
            output_tables: result.tables.len() as u64,
            entries_written: result.entries_written,
            output_bytes: result.output_bytes,
            tombstones_dropped: result.tombstones_dropped,
            versions_dropped: result.versions_dropped,
        });
        self.obs
            .compaction_ns
            .record(self.obs.now_ns().saturating_sub(prep.started_ns));

        // invalidate cached blocks of consumed tables and mark them
        // obsolete: their files are physically deleted when the last
        // reference (a snapshot or an in-flight iterator) drops
        for t in &prep.inputs {
            if let Some(cache) = &self.cache {
                let max_block = t.meta().data_blocks.len().saturating_sub(1) as u64;
                cache.invalidate_file(t.id(), max_block);
            }
            t.mark_obsolete();
        }

        // Leaper-style prefetch: re-admit hot blocks of the new tables
        if self.cfg.prefetch_after_compaction {
            if let Some(cache) = &self.cache {
                let mut candidates = Vec::new();
                for t in &result.tables {
                    let meta = t.meta();
                    let mut prev_fence: Option<&[u8]> = None;
                    for (i, fence) in meta.fences.iter().enumerate() {
                        let min_key = prev_fence.unwrap_or(meta.min_key.as_slice());
                        candidates.push(PrefetchCandidate {
                            file: t.id(),
                            block: i as u64,
                            min_key: heat_key(min_key),
                            max_key: heat_key(fence),
                        });
                        prev_fence = Some(fence.as_slice());
                    }
                }
                let plan = {
                    let heat = self.heat.lock();
                    plan_prefetch(&heat, &candidates, 0.90, 256)
                };
                for key in plan {
                    if let Some(t) = result.tables.iter().find(|t| t.id() == key.file) {
                        t.read_data_block(key.block as usize, Some(cache))?;
                        DbStats::bump(&self.stats.prefetched_blocks);
                    }
                }
            }
        }
        Ok(())
    }

    fn persist_manifest(&self, inner: &mut Inner) -> StorageResult<()> {
        let state = ManifestState {
            levels: inner
                .version
                .levels
                .iter()
                .map(|l| {
                    l.runs
                        .iter()
                        .map(|r| r.tables.iter().map(|t| t.id()).collect())
                        .collect()
                })
                .collect(),
            wal: inner.wal.as_ref().map_or(0, |w| w.id().0),
            wal_prev: inner.imm_wal.as_ref().map_or(0, |w| w.id().0),
            vlog: inner.vlog.as_ref().map_or(0, |v| v.id().0),
            next_seqno: inner.next_seqno,
            applied_seq: inner.applied_seq,
        };
        inner.manifest = Some(write_manifest(&self.device, &state, inner.manifest)?);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Value-log GC (key-value separation extension)
    // ------------------------------------------------------------------

    /// Garbage-collects the active value log: rewrites live values through
    /// the normal write path and destroys the old log. Returns
    /// `(live_rewritten, dead_dropped)`.
    ///
    /// Refuses to run while snapshots are outstanding: their pointers may
    /// reference the log this call would destroy.
    pub fn gc_value_log(&self) -> StorageResult<(u64, u64)> {
        if self.cfg.kv_separation.is_none() {
            return Ok((0, 0));
        }
        if self.snapshot_count.load(Ordering::Acquire) > 0 {
            return Err(StorageError::Corruption(
                "value-log GC refused: outstanding snapshots reference the log".into(),
            ));
        }
        // swap in a fresh log
        let old = {
            let mut inner = self.inner.write();
            let fresh = ValueLog::create(Arc::clone(&self.device))?;
            let old = inner.vlog.replace(fresh);
            self.persist_manifest(&mut inner)?;
            old
        };
        let Some(old) = old else { return Ok((0, 0)) };
        let records = old.scan_all()?;
        let mut live = 0u64;
        let mut dead = 0u64;
        for (key, value, ptr) in records {
            // the record is live iff the engine's current raw value still
            // points at it
            let is_live = {
                let inner = self.inner.read();
                self.raw_stored_value(&inner, &key)?
                    .and_then(|raw| decode_value(&raw).and_then(|d| d.err()))
                    .is_some_and(|p| p == ptr)
            };
            if is_live {
                self.put(key, value)?;
                live += 1;
            } else {
                dead += 1;
            }
        }
        old.destroy()?;
        Ok((live, dead))
    }

    /// Newest raw (unresolved) engine value for `key`, if any and live.
    fn raw_stored_value(&self, inner: &Inner, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        let mem_hit = inner
            .mem
            .get(key)
            .or_else(|| inner.imm.as_ref().and_then(|m| m.get(key)));
        if let Some(e) = mem_hit {
            return Ok(match e.kind {
                ValueKind::Delete => None,
                ValueKind::Put => Some(e.value),
            });
        }
        for level in &inner.version.levels {
            for run in &level.runs {
                let Some(table) = run.table_for(key) else { continue };
                let got = table.get(key, self.cache.as_deref())?;
                if let Some(e) = got.entry {
                    return Ok(match e.kind {
                        ValueKind::Delete => None,
                        ValueKind::Put => Some(e.value),
                    });
                }
            }
        }
        Ok(None)
    }
}

/// A compaction resolved to concrete inputs, ready to merge. Built under
/// the write lock; the merge itself runs without it.
struct PreparedCompaction {
    level: usize,
    target: usize,
    bits: f64,
    inputs: Vec<Arc<Table>>,
    drop_tombstones: bool,
    apply: CompactionApply,
    /// Trace pairing id (the `CompactionStart` was emitted at prepare
    /// time; `install_compaction` emits the matching end).
    trace_id: u64,
    /// Input accounting captured at prepare time, repeated in the end
    /// event so each event stands alone.
    input_entries: u64,
    input_bytes: u64,
    /// Engine clock at prepare time, for the compaction-latency histogram.
    started_ns: u64,
}

/// How a merge's outputs are spliced back into the version.
enum CompactionApply {
    /// Replace the target level with one run: surviving target tables +
    /// outputs, sorted by key.
    ReplaceTargetRun,
    /// Prepend the outputs as the target level's youngest run (tiering).
    AppendRun,
    /// The outputs replace the level's own merged runs (in-place merge).
    InPlace,
}

/// A streaming snapshot iterator over live entries (see
/// [`DbCore::iter_range`]). Yields `(key, value)` pairs in ascending key
/// order; I/O errors surface as `Err` items and end the iteration.
pub struct DbIterator<'a> {
    db: &'a DbCore,
    _guard: parking_lot::RwLockReadGuard<'a, Inner>,
    merger: crate::iter::MergingIter,
    end: Option<Vec<u8>>,
}

impl DbIterator<'_> {
    /// Next live entry, with errors surfaced explicitly.
    pub fn try_next(&mut self) -> StorageResult<Option<(Vec<u8>, Vec<u8>)>> {
        let Some(e) = self.merger.next_visible()? else {
            return Ok(None);
        };
        if let Some(end) = &self.end {
            if e.key.as_slice() >= end.as_slice() {
                return Ok(None);
            }
        }
        DbStats::bump(&self.db.stats.scan_entries);
        let value = self.db.resolve_value(&self._guard, e.value)?;
        Ok(Some((e.key, value)))
    }
}

impl Iterator for DbIterator<'_> {
    type Item = StorageResult<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.try_next().transpose()
    }
}

impl DbCore {
    /// Stops the worker pool and joins every worker thread (skipping the
    /// current thread, in case a worker itself holds the last reference).
    /// Idempotent: the second caller finds an empty handle list.
    ///
    /// The last user [`Db`] handle calls this from its `Drop` so that
    /// `drop(db)` on the caller's thread always waits for in-flight
    /// background jobs — even when a worker's per-job `Arc` keeps the
    /// `DbCore` itself alive a little longer. Without that wait, a caller
    /// could reopen the device while a background flush is still writing
    /// tables and manifests into it.
    fn shutdown_and_join(&self) {
        self.bg.begin_shutdown();
        let handles = std::mem::take(
            &mut *self
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        let me = std::thread::current().id();
        for h in handles {
            if h.thread().id() != me {
                let _ = h.join();
            }
        }
    }
}

impl Drop for DbCore {
    /// Clean shutdown: stop the worker pool, then pad the WAL tails so
    /// every acknowledged write is on the device. Crash semantics (torn
    /// tails) are exercised by dropping the device instead of the `Db`.
    fn drop(&mut self) {
        self.shutdown_and_join();
        let inner = self.inner.get_mut();
        if let Some(vlog) = &mut inner.vlog {
            let _ = vlog.sync();
        }
        if let Some(wal) = &mut inner.wal {
            let _ = wal.sync();
        }
        if let Some(wal) = &mut inner.imm_wal {
            let _ = wal.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LsmConfig {
        LsmConfig::small_for_tests()
    }

    #[test]
    fn put_get_roundtrip() {
        let db = Db::open_in_memory(small()).unwrap();
        db.put(b"hello".to_vec(), b"world".to_vec()).unwrap();
        assert_eq!(db.get(b"hello").unwrap(), Some(b"world".to_vec()));
        assert_eq!(db.get(b"missing").unwrap(), None);
    }

    #[test]
    fn overwrite_returns_newest() {
        let db = Db::open_in_memory(small()).unwrap();
        db.put(b"k".to_vec(), b"v1".to_vec()).unwrap();
        db.put(b"k".to_vec(), b"v2".to_vec()).unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
    }

    #[test]
    fn delete_hides_older_versions_across_flushes() {
        let db = Db::open_in_memory(small()).unwrap();
        db.put(b"k".to_vec(), b"v".to_vec()).unwrap();
        db.flush().unwrap();
        db.delete(b"k".to_vec()).unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        db.flush().unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
    }

    #[test]
    fn write_batch_is_one_wal_append_and_reads_like_singles() {
        let cfg = LsmConfig {
            wal: true,
            ..small()
        };
        let db = Db::open_in_memory(cfg).unwrap();
        let mut batch = WriteBatch::new();
        for i in 0..20u32 {
            batch.put(format!("bk{i:03}").into_bytes(), format!("bv{i}").into_bytes());
        }
        batch.delete(b"bk003".to_vec());
        batch.put(b"bk004".to_vec(), b"rewritten".to_vec());
        assert_eq!(batch.len(), 22);
        db.write_batch(batch).unwrap();
        let s = db.stats().snapshot();
        assert_eq!(s.wal_appends, 1, "a batch must cost one WAL append");
        assert_eq!(s.write_batches, 1);
        assert_eq!(s.batched_writes, 22);
        assert_eq!(s.puts, 21);
        assert_eq!(s.deletes, 1);
        // in-order application: later ops shadow earlier ones
        assert_eq!(db.get(b"bk003").unwrap(), None);
        assert_eq!(db.get(b"bk004").unwrap(), Some(b"rewritten".to_vec()));
        assert_eq!(db.get(b"bk019").unwrap(), Some(b"bv19".to_vec()));
        // an empty batch is a no-op
        db.write_batch(WriteBatch::new()).unwrap();
        assert_eq!(db.stats().snapshot().write_batches, 1);
    }

    #[test]
    fn write_batch_survives_crash_recovery() {
        let cfg = LsmConfig {
            wal: true,
            ..small()
        };
        let device: Arc<dyn StorageDevice> =
            Arc::new(lsm_storage::MemDevice::new(cfg.block_size, Default::default()));
        {
            let db = Db::open(Arc::clone(&device), cfg.clone()).unwrap();
            let mut batch = WriteBatch::new();
            for i in 0..50u32 {
                batch.put(format!("ck{i:03}").into_bytes(), format!("cv{i}").into_bytes());
            }
            db.write_batch(batch).unwrap();
            db.sync().unwrap();
            // drop without flush: recovery must come from the batched WAL
        }
        let db = Db::open(device, cfg).unwrap();
        for i in 0..50u32 {
            assert_eq!(
                db.get(format!("ck{i:03}").as_bytes()).unwrap(),
                Some(format!("cv{i}").into_bytes()),
                "ck{i:03}"
            );
        }
    }

    #[test]
    fn replicated_batches_advance_and_persist_the_watermark() {
        let cfg = LsmConfig {
            wal: true,
            ..small()
        };
        let device: Arc<dyn StorageDevice> =
            Arc::new(lsm_storage::MemDevice::new(cfg.block_size, Default::default()));
        {
            let db = Db::open(Arc::clone(&device), cfg.clone()).unwrap();
            assert_eq!(db.applied_seq(), 0, "fresh engine is not a replica");
            let mut batch = WriteBatch::new();
            batch.put(b"rk1".to_vec(), b"rv1".to_vec());
            db.write_batch_replicated(&mut batch, 1).unwrap();
            assert_eq!(db.applied_seq(), 1);
            // an empty batch (all ops routed to other shards) still moves it
            db.write_batch_replicated(&mut WriteBatch::new(), 2).unwrap();
            assert_eq!(db.applied_seq(), 2);
            // the watermark never regresses on out-of-order maxima
            let mut batch = WriteBatch::new();
            batch.put(b"rk2".to_vec(), b"rv2".to_vec());
            db.write_batch_replicated(&mut batch, 1).unwrap();
            assert_eq!(db.applied_seq(), 2);
            // flush writes a manifest carrying the watermark
            db.flush_all().unwrap();
        }
        let db = Db::open(device, cfg).unwrap();
        assert_eq!(db.applied_seq(), 2, "watermark must survive reopen");
        assert_eq!(db.get(b"rk1").unwrap(), Some(b"rv1".to_vec()));
        assert_eq!(db.get(b"rk2").unwrap(), Some(b"rv2".to_vec()));
    }

    #[test]
    fn write_batch_triggers_flush_when_memtable_fills() {
        let db = Db::open_in_memory(small()).unwrap();
        // several batches, together far past buffer_bytes (4 KiB)
        for b in 0..8u32 {
            let mut batch = WriteBatch::new();
            for i in 0..64u32 {
                let id = b * 64 + i;
                batch.put(format!("fk{id:05}").into_bytes(), vec![b as u8; 32]);
            }
            db.write_batch(batch).unwrap();
        }
        db.wait_background_idle();
        assert!(db.stats().snapshot().flushes > 0, "batches must rotate the memtable");
        assert_eq!(db.get(b"fk00000").unwrap(), Some(vec![0u8; 32]));
        assert_eq!(db.get(b"fk00511").unwrap(), Some(vec![7u8; 32]));
    }

    #[test]
    fn flush_all_quiesces_and_empties_memtables() {
        let db = Db::open_in_memory(small()).unwrap();
        for i in 0..800u32 {
            db.put(format!("q{i:05}").into_bytes(), vec![1u8; 16]).unwrap();
        }
        db.flush_all().unwrap();
        let inner = db.inner.read();
        assert_eq!(inner.mem.bytes(), 0, "active memtable must be empty");
        assert!(inner.imm.is_none(), "immutable slot must be drained");
        drop(inner);
        assert_eq!(db.get(b"q00799").unwrap(), Some(vec![1u8; 16]));
    }

    #[test]
    fn l0_run_count_tracks_gauge() {
        let db = Db::open_in_memory(small()).unwrap();
        assert_eq!(db.l0_run_count(), 0);
        for i in 0..3000u32 {
            db.put(format!("g{i:06}").into_bytes(), vec![0u8; 16]).unwrap();
        }
        db.wait_background_idle();
        // gauge mirrors the installed version's L0 run count
        let inner = db.inner.read();
        let expect = DbCore::count_l0_runs(&inner.version);
        drop(inner);
        assert_eq!(db.l0_run_count(), expect);
    }

    #[test]
    fn many_writes_trigger_flush_and_compaction() {
        let db = Db::open_in_memory(small()).unwrap();
        for i in 0..3000u32 {
            db.put(
                format!("key{i:06}").as_bytes().to_vec(),
                format!("value{i:06}").into_bytes(),
            )
            .unwrap();
        }
        db.wait_background_idle();
        let s = db.stats().snapshot();
        assert!(s.flushes > 0, "no flush happened");
        assert!(s.compactions > 0, "no compaction happened");
        // everything still readable
        for i in (0..3000u32).step_by(113) {
            let key = format!("key{i:06}");
            assert_eq!(
                db.get(key.as_bytes()).unwrap(),
                Some(format!("value{i:06}").into_bytes()),
                "{key}"
            );
        }
    }

    #[test]
    fn clones_share_one_engine() {
        let db = Db::open_in_memory(small()).unwrap();
        let db2 = db.clone();
        db.put(b"a".to_vec(), b"1".to_vec()).unwrap();
        db2.put(b"b".to_vec(), b"2".to_vec()).unwrap();
        assert_eq!(db2.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
        drop(db);
        // the engine stays alive through the surviving clone
        assert_eq!(db2.get(b"a").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn handle_is_send_sync_clone() {
        fn assert_handle<T: Send + Sync + Clone>() {}
        assert_handle::<Db>();
    }

    #[test]
    fn threaded_mode_basic_workload() {
        let mut cfg = small();
        cfg.background = BackgroundMode::Threaded;
        let db = Db::open_in_memory(cfg).unwrap();
        for i in 0..3000u32 {
            db.put(
                format!("key{i:06}").as_bytes().to_vec(),
                format!("value{i:06}").into_bytes(),
            )
            .unwrap();
        }
        db.wait_background_idle();
        assert!(db.stats().snapshot().flushes > 0, "no flush happened");
        for i in (0..3000u32).step_by(113) {
            let key = format!("key{i:06}");
            assert_eq!(
                db.get(key.as_bytes()).unwrap(),
                Some(format!("value{i:06}").into_bytes()),
                "{key}"
            );
        }
        let got = db
            .scan(b"key000000".to_vec()..b"key003000".to_vec(), usize::MAX)
            .unwrap();
        assert_eq!(got.len(), 3000);
    }

    #[test]
    fn scan_merges_memtable_and_tables() {
        let db = Db::open_in_memory(small()).unwrap();
        for i in 0..500u32 {
            db.put(format!("key{i:04}").into_bytes(), format!("v{i}").into_bytes())
                .unwrap();
        }
        db.flush().unwrap();
        // overwrite a few in the memtable
        db.put(b"key0100".to_vec(), b"NEW".to_vec()).unwrap();
        db.delete(b"key0101".to_vec()).unwrap();
        let got = db.scan(b"key0099".to_vec()..b"key0103".to_vec(), 100).unwrap();
        let keys: Vec<_> = got.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(
            keys,
            vec![b"key0099".to_vec(), b"key0100".to_vec(), b"key0102".to_vec()]
        );
        assert_eq!(got[1].1, b"NEW".to_vec());
    }

    #[test]
    fn streaming_iterator_matches_scan() {
        let db = Db::open_in_memory(small()).unwrap();
        for i in 0..800u32 {
            db.put(format!("key{i:04}").into_bytes(), format!("v{i}").into_bytes())
                .unwrap();
        }
        db.delete(b"key0100".to_vec()).unwrap();
        let scanned = db.scan(b"key0050".to_vec()..b"key0150".to_vec(), usize::MAX).unwrap();
        let streamed: Vec<_> = db
            .iter_range(b"key0050".to_vec(), Some(b"key0150".to_vec()))
            .unwrap()
            .collect::<StorageResult<Vec<_>>>()
            .unwrap();
        assert_eq!(scanned, streamed);
        assert_eq!(streamed.len(), 99, "100 keys minus one delete");
    }

    #[test]
    fn streaming_iterator_unbounded_reaches_the_end() {
        let db = Db::open_in_memory(small()).unwrap();
        for i in 0..300u32 {
            db.put(format!("key{i:04}").into_bytes(), b"v".to_vec()).unwrap();
        }
        db.flush().unwrap();
        let n = db.iter_range(b"key0250".to_vec(), None).unwrap().count();
        assert_eq!(n, 50);
    }

    #[test]
    fn inverted_and_empty_ranges_are_empty_not_panicking() {
        let db = Db::open_in_memory(small()).unwrap();
        for i in 0..100u32 {
            db.put(format!("k{i:03}").into_bytes(), b"v".to_vec()).unwrap();
        }
        assert!(db.scan(b"k050".to_vec()..b"k010".to_vec(), 10).unwrap().is_empty());
        assert!(db.scan(b"k050".to_vec()..b"k050".to_vec(), 10).unwrap().is_empty());
        let n = db
            .iter_range(b"k050".to_vec(), Some(b"k010".to_vec()))
            .unwrap()
            .count();
        assert_eq!(n, 0);
        let snap = db.snapshot().unwrap();
        assert!(snap.scan(b"z".to_vec()..b"a".to_vec(), 10).unwrap().is_empty());
    }

    #[test]
    fn scan_respects_limit_and_order() {
        let db = Db::open_in_memory(small()).unwrap();
        for i in (0..1000u32).rev() {
            db.put(format!("key{i:04}").into_bytes(), b"v".to_vec()).unwrap();
        }
        let got = db.scan(b"key0000".to_vec()..b"key9999".to_vec(), 17).unwrap();
        assert_eq!(got.len(), 17);
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(got[0].0, b"key0000".to_vec());
    }
}
