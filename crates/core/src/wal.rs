//! Write-ahead log: durability for the memtable (tutorial Module I.1's
//! out-of-place ingestion contract).
//!
//! Records are framed with a marker byte and a checksum and streamed into
//! an append-only file. The device persists whole blocks, so a crash loses
//! at most the unsynced tail of the final block — recovery stops at the
//! first record that fails its frame or checksum (standard torn-write
//! semantics).

use std::sync::Arc;

use lsm_storage::{FileId, ImmutableFile, IoCategory, StorageDevice, StorageResult, WritableFile};

use crate::entry::{get_varint, put_varint, ValueKind};

const RECORD_MARKER: u8 = 0xA7;
/// Marks an all-or-nothing record group ([`Wal::append_atomic`]): one
/// length + checksum covers every record inside, so recovery either
/// replays the whole group or drops it wholesale.
const ATOMIC_MARKER: u8 = 0xA9;

/// One recovered WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Sequence number assigned at write time.
    pub seqno: u64,
    /// Put or tombstone.
    pub kind: ValueKind,
    /// User key.
    pub key: Vec<u8>,
    /// Value (empty for tombstones).
    pub value: Vec<u8>,
}

fn checksum(bytes: &[u8]) -> u32 {
    // FNV-1a, truncated
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h ^ (h >> 32)) as u32
}

/// An open write-ahead log.
pub struct Wal {
    file: WritableFile,
    records: u64,
    /// Reused frame buffer: after warm-up, appends encode into this
    /// allocation instead of a fresh `Vec` per record/batch.
    scratch: Vec<u8>,
}

impl Wal {
    /// Creates a fresh log on `device`.
    pub fn create(device: Arc<dyn StorageDevice>) -> StorageResult<Self> {
        Ok(Wal {
            file: WritableFile::create(device, IoCategory::Wal)?,
            records: 0,
            scratch: Vec::new(),
        })
    }

    /// The log's file id (recorded in the manifest).
    pub fn id(&self) -> FileId {
        self.file.id()
    }

    /// Records appended to this log so far (event-trace accounting for
    /// WAL rotations).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one record. Full blocks reach the device immediately;
    /// the partial tail follows at the next block boundary or [`Wal::sync`].
    pub fn append(
        &mut self,
        seqno: u64,
        kind: ValueKind,
        key: &[u8],
        value: &[u8],
    ) -> StorageResult<()> {
        self.scratch.clear();
        encode_frame(&mut self.scratch, seqno, kind, key, value);
        self.file.append(&self.scratch)?;
        self.records += 1;
        Ok(())
    }

    /// Appends a group of records as **one** file append (group commit):
    /// the frames are concatenated into a single buffer, so the whole
    /// batch costs one pass through the file's block pipeline instead of
    /// one per record. Recovery sees the same frame stream as if each
    /// record had been appended individually.
    pub fn append_batch(&mut self, records: &[(u64, ValueKind, Vec<u8>, Vec<u8>)]) -> StorageResult<()> {
        if records.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        for (seqno, kind, key, value) in records {
            encode_frame(&mut self.scratch, *seqno, *kind, key, value);
        }
        self.file.append(&self.scratch)?;
        self.records += records.len() as u64;
        Ok(())
    }

    /// Appends a group of records that recovery treats as **atomic**: the
    /// group is framed with one length and one checksum over every record
    /// inside, so a crash either persists the whole group or none of it —
    /// never a prefix. This is the WAL primitive behind transaction
    /// commits, whose write-set must not be partially visible; the plain
    /// [`Wal::append_batch`] keeps prefix-durability semantics (its
    /// records are independent writes that happen to share one append).
    pub fn append_atomic(
        &mut self,
        records: &[(u64, ValueKind, Vec<u8>, Vec<u8>)],
    ) -> StorageResult<()> {
        if records.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        self.scratch.push(ATOMIC_MARKER);
        // encode the inner frame stream after a placeholder header, then
        // patch length + checksum in, mirroring `encode_frame`
        let mut inner = Vec::new();
        for (seqno, kind, key, value) in records {
            encode_frame(&mut inner, *seqno, *kind, key, value);
        }
        put_varint(&mut self.scratch, inner.len() as u64);
        self.scratch
            .extend_from_slice(&checksum(&inner).to_le_bytes());
        self.scratch.extend_from_slice(&inner);
        self.file.append(&self.scratch)?;
        self.records += records.len() as u64;
        Ok(())
    }

    /// Forces the buffered tail to the device (pads to a block boundary) —
    /// the equivalent of `fsync` group commit.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.file.pad_to_block()
    }

    /// Seals the log (after a successful flush) so it can be deleted.
    pub fn seal(self) -> StorageResult<ImmutableFile> {
        self.file.seal()
    }
}

fn varint_len(mut x: u64) -> usize {
    let mut n = 1;
    while x >= 0x80 {
        x >>= 7;
        n += 1;
    }
    n
}

/// Encodes one marker + length + checksum + payload frame into `out`,
/// in place: the payload length is computed up front and the checksum is
/// patched in after the payload lands, so no intermediate buffer exists.
fn encode_frame(out: &mut Vec<u8>, seqno: u64, kind: ValueKind, key: &[u8], value: &[u8]) {
    let payload_len = varint_len(seqno)
        + 1
        + varint_len(key.len() as u64)
        + key.len()
        + varint_len(value.len() as u64)
        + value.len();
    out.push(RECORD_MARKER);
    put_varint(out, payload_len as u64);
    let sum_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    let payload_start = out.len();
    put_varint(out, seqno);
    out.push(kind.to_u8());
    put_varint(out, key.len() as u64);
    out.extend_from_slice(key);
    put_varint(out, value.len() as u64);
    out.extend_from_slice(value);
    debug_assert_eq!(out.len() - payload_start, payload_len);
    let sum = checksum(&out[payload_start..]).to_le_bytes();
    out[sum_at..sum_at + 4].copy_from_slice(&sum);
}

/// Decodes one checksummed payload. `None` means the frame checksummed
/// clean but its contents do not parse — corruption, not a torn tail.
fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut p = 0usize;
    let (seqno, n) = get_varint(payload.get(p..)?)?;
    p += n;
    let kind = payload.get(p).copied().and_then(ValueKind::from_u8)?;
    p += 1;
    let (klen, n) = get_varint(payload.get(p..)?)?;
    p += n;
    let key = payload.get(p..p.checked_add(klen as usize)?)?;
    p += klen as usize;
    let (vlen, n) = get_varint(payload.get(p..)?)?;
    p += n;
    let value = payload.get(p..p.checked_add(vlen as usize)?)?;
    Some(WalRecord {
        seqno,
        kind,
        key: key.to_vec(),
        value: value.to_vec(),
    })
}

/// Replays a WAL file: returns every intact record, in order, stopping at
/// the first torn or corrupt frame.
///
/// A [`Wal::sync`] pads the current block with zeros and later records
/// continue in the next block, so the parser skips zero bytes to the next
/// block boundary and resumes there; anything else that is not a record
/// marker ends the replay.
///
/// Torn tails (a record extending past the persisted bytes) are the
/// expected crash artifact and end replay silently. Checksum mismatches,
/// garbage marker bytes, and undecodable payloads are *corruption* and are
/// counted in the device's [`corruption_detected`] stat before replay
/// stops at the last intact prefix.
///
/// [`corruption_detected`]: lsm_storage::IoStatsSnapshot::corruption_detected
pub fn recover(device: Arc<dyn StorageDevice>, id: FileId) -> StorageResult<Vec<WalRecord>> {
    let len_blocks = device.len_blocks(id)?;
    if len_blocks == 0 {
        return Ok(Vec::new());
    }
    let bs = device.block_size();
    let bytes = device.read(id, 0, len_blocks, IoCategory::Wal)?;
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        if bytes[off] == 0 {
            // sync padding: resume at the next block boundary
            off = (off / bs + 1) * bs;
            continue;
        }
        if bytes[off] == ATOMIC_MARKER {
            // an all-or-nothing group: one length + checksum over a nested
            // frame stream; a torn group drops wholesale (no partial
            // transaction write-set may survive recovery)
            off += 1;
            let Some((glen, n)) = get_varint(&bytes[off..]) else {
                break; // torn: group length cut off at the persisted end
            };
            off += n;
            if off + 4 + glen as usize > bytes.len() {
                break; // torn group: drop it entirely
            }
            let stored_sum =
                u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
            off += 4;
            let group = &bytes[off..off + glen as usize];
            if checksum(group) != stored_sum {
                device.stats().record_corruption();
                break;
            }
            off += glen as usize;
            // the group checksummed clean, so every inner frame must
            // parse; stage into a scratch vec so a malformed group is
            // dropped wholesale, never replayed partially
            let mut g = 0usize;
            let mut ok = true;
            let mut staged = Vec::new();
            while g < group.len() {
                if group[g] != RECORD_MARKER {
                    ok = false;
                    break;
                }
                g += 1;
                let Some((plen, n)) = get_varint(&group[g..]) else {
                    ok = false;
                    break;
                };
                g += n;
                if g + 4 + plen as usize > group.len() {
                    ok = false;
                    break;
                }
                g += 4; // the group checksum covers the payloads already
                match decode_payload(&group[g..g + plen as usize]) {
                    Some(record) => staged.push(record),
                    None => {
                        ok = false;
                        break;
                    }
                }
                g += plen as usize;
            }
            if !ok {
                device.stats().record_corruption();
                break;
            }
            records.extend(staged);
            continue;
        }
        if bytes[off] != RECORD_MARKER {
            // writes are block-granular, so a torn tail cannot produce a
            // garbage byte where a marker belongs — this is corruption
            device.stats().record_corruption();
            break;
        }
        off += 1;
        let Some((plen, n)) = get_varint(&bytes[off..]) else {
            break; // torn: length varint cut off at the persisted end
        };
        off += n;
        if off + 4 + plen as usize > bytes.len() {
            break; // torn record
        }
        let stored_sum =
            u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
        off += 4;
        let payload = &bytes[off..off + plen as usize];
        if checksum(payload) != stored_sum {
            device.stats().record_corruption();
            break;
        }
        off += plen as usize;
        match decode_payload(payload) {
            Some(record) => records.push(record),
            None => {
                device.stats().record_corruption();
                break;
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_storage::{DeviceProfile, MemDevice};

    fn device() -> Arc<dyn StorageDevice> {
        Arc::new(MemDevice::new(512, DeviceProfile::free()))
    }

    #[test]
    fn roundtrip_after_sync() {
        let dev = device();
        let mut wal = Wal::create(dev.clone()).unwrap();
        for i in 0..100u64 {
            wal.append(
                i,
                if i % 5 == 0 { ValueKind::Delete } else { ValueKind::Put },
                format!("key{i}").as_bytes(),
                format!("value{i}").as_bytes(),
            )
            .unwrap();
        }
        wal.sync().unwrap();
        let id = wal.id();
        let records = recover(dev, id).unwrap();
        assert_eq!(records.len(), 100);
        assert_eq!(records[7].key, b"key7".to_vec());
        assert_eq!(records[7].seqno, 7);
        assert_eq!(records[5].kind, ValueKind::Delete);
    }

    #[test]
    fn unsynced_tail_is_lost_but_prefix_survives() {
        let dev = device();
        let mut wal = Wal::create(dev.clone()).unwrap();
        // each record ~30 bytes; 512-byte blocks hold ~17
        for i in 0..40u64 {
            wal.append(i, ValueKind::Put, format!("key{i:04}").as_bytes(), b"0123456789")
                .unwrap();
        }
        // no sync: only whole blocks persisted
        let id = wal.id();
        let records = recover(dev, id).unwrap();
        assert!(!records.is_empty(), "full blocks must be recovered");
        assert!(records.len() < 40, "unsynced tail must be lost");
        // recovered prefix is exactly the first k records
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seqno, i as u64);
        }
    }

    #[test]
    fn empty_wal_recovers_empty() {
        let dev = device();
        let wal = Wal::create(dev.clone()).unwrap();
        let id = wal.id();
        assert!(recover(dev, id).unwrap().is_empty());
    }

    #[test]
    fn corrupt_byte_stops_replay() {
        let dev: Arc<MemDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
        let dev_dyn: Arc<dyn StorageDevice> = dev.clone();
        let mut wal = Wal::create(dev_dyn.clone()).unwrap();
        for i in 0..30u64 {
            wal.append(i, ValueKind::Put, b"key", b"value-payload").unwrap();
        }
        wal.sync().unwrap();
        let id = wal.id();
        // corrupt the second block
        let mut blocks = dev.read(id, 0, dev.len_blocks(id).unwrap(), IoCategory::Wal).unwrap();
        blocks[600] ^= 0xFF;
        // rebuild a new file with the corrupted contents
        let id2 = dev.create().unwrap();
        dev.append(id2, &blocks, IoCategory::Wal).unwrap();
        let records = recover(dev_dyn.clone(), id2).unwrap();
        assert!(!records.is_empty());
        assert!(records.len() < 30, "replay must stop at corruption");
        assert!(
            dev_dyn.stats().snapshot().corruption_detected >= 1,
            "corruption must be counted"
        );
    }

    #[test]
    fn torn_tail_is_not_counted_as_corruption() {
        let dev = device();
        let mut wal = Wal::create(dev.clone()).unwrap();
        for i in 0..40u64 {
            wal.append(i, ValueKind::Put, format!("key{i:04}").as_bytes(), b"0123456789")
                .unwrap();
        }
        // no sync: the tail record is torn at the last persisted block
        let records = recover(dev.clone(), wal.id()).unwrap();
        assert!(records.len() < 40);
        assert_eq!(
            dev.stats().snapshot().corruption_detected,
            0,
            "a clean torn tail is the expected crash artifact, not corruption"
        );
    }

    #[test]
    fn bad_checksum_is_counted_as_corruption() {
        let dev: Arc<MemDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
        let dev_dyn: Arc<dyn StorageDevice> = dev.clone();
        let mut wal = Wal::create(dev_dyn.clone()).unwrap();
        wal.append(1, ValueKind::Put, b"key", b"a-reasonably-long-value").unwrap();
        wal.sync().unwrap();
        let id = wal.id();
        let mut blocks = dev.read(id, 0, 1, IoCategory::Wal).unwrap();
        // flip a payload byte: frame intact, checksum mismatch
        blocks[10] ^= 0x01;
        let id2 = dev.create().unwrap();
        dev.append(id2, &blocks, IoCategory::Wal).unwrap();
        let before = dev_dyn.stats().snapshot().corruption_detected;
        let records = recover(dev_dyn.clone(), id2).unwrap();
        assert!(records.is_empty());
        assert_eq!(dev_dyn.stats().snapshot().corruption_detected, before + 1);
    }

    #[test]
    fn records_after_sync_padding_are_recovered() {
        let dev = device();
        let mut wal = Wal::create(dev.clone()).unwrap();
        wal.append(1, ValueKind::Put, b"before", b"v1").unwrap();
        wal.sync().unwrap(); // pads the block
        wal.append(2, ValueKind::Put, b"after", b"v2").unwrap();
        wal.sync().unwrap();
        wal.append(3, ValueKind::Put, b"third", b"v3").unwrap();
        wal.sync().unwrap();
        let records = recover(dev, wal.id()).unwrap();
        assert_eq!(records.len(), 3, "records past sync padding lost");
        assert_eq!(records[1].key, b"after".to_vec());
        assert_eq!(records[2].key, b"third".to_vec());
    }

    #[test]
    fn batch_append_recovers_identically_to_singles() {
        let singles = device();
        let mut w1 = Wal::create(singles.clone()).unwrap();
        let batched = device();
        let mut w2 = Wal::create(batched.clone()).unwrap();
        let records: Vec<(u64, ValueKind, Vec<u8>, Vec<u8>)> = (0..50u64)
            .map(|i| {
                let kind = if i % 7 == 0 { ValueKind::Delete } else { ValueKind::Put };
                (i, kind, format!("key{i:04}").into_bytes(), format!("value{i}").into_bytes())
            })
            .collect();
        for (s, k, key, value) in &records {
            w1.append(*s, *k, key, value).unwrap();
        }
        w1.sync().unwrap();
        w2.append_batch(&records).unwrap();
        w2.sync().unwrap();
        assert_eq!(w2.records(), 50);
        let r1 = recover(singles, w1.id()).unwrap();
        let r2 = recover(batched.clone(), w2.id()).unwrap();
        assert_eq!(r1, r2, "batch framing must replay like per-record framing");
        // one logical append: a 50-record batch of ~25-byte frames fills
        // far fewer block-pipeline passes than 50 separate appends would
        assert_eq!(r2.len(), 50);
        let mut w3 = Wal::create(batched).unwrap();
        w3.append_batch(&[]).unwrap();
        assert_eq!(w3.records(), 0);
    }

    #[test]
    fn atomic_group_roundtrips_and_interleaves_with_plain_records() {
        let dev = device();
        let mut wal = Wal::create(dev.clone()).unwrap();
        wal.append(1, ValueKind::Put, b"before", b"v1").unwrap();
        let group: Vec<(u64, ValueKind, Vec<u8>, Vec<u8>)> = (2..7u64)
            .map(|i| (i, ValueKind::Put, format!("txn{i}").into_bytes(), b"tv".to_vec()))
            .collect();
        wal.append_atomic(&group).unwrap();
        wal.append(7, ValueKind::Delete, b"after", b"").unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.records(), 7);
        let records = recover(dev, wal.id()).unwrap();
        assert_eq!(records.len(), 7);
        assert_eq!(records[0].key, b"before".to_vec());
        assert_eq!(records[3].key, b"txn4".to_vec());
        assert_eq!(records[6].kind, ValueKind::Delete);
    }

    #[test]
    fn torn_atomic_group_drops_wholesale() {
        let dev = device();
        let mut wal = Wal::create(dev.clone()).unwrap();
        wal.append(1, ValueKind::Put, b"synced", b"v1").unwrap();
        wal.sync().unwrap();
        // a group spanning several 512-byte blocks, never synced: the
        // full blocks persist but the tail is lost, so the whole group
        // must vanish — a partial transaction write-set would otherwise
        // become visible after recovery
        let group: Vec<(u64, ValueKind, Vec<u8>, Vec<u8>)> = (2..60u64)
            .map(|i| (i, ValueKind::Put, format!("txn{i:04}").into_bytes(), vec![b'x'; 20]))
            .collect();
        wal.append_atomic(&group).unwrap();
        let records = recover(dev.clone(), wal.id()).unwrap();
        assert_eq!(records.len(), 1, "torn atomic group must drop wholesale");
        assert_eq!(records[0].key, b"synced".to_vec());
        assert_eq!(
            dev.stats().snapshot().corruption_detected,
            0,
            "a torn group is the expected crash artifact, not corruption"
        );
    }

    #[test]
    fn corrupt_atomic_group_counts_corruption_and_stops() {
        let dev: Arc<MemDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
        let dev_dyn: Arc<dyn StorageDevice> = dev.clone();
        let mut wal = Wal::create(dev_dyn.clone()).unwrap();
        let group: Vec<(u64, ValueKind, Vec<u8>, Vec<u8>)> = (1..4u64)
            .map(|i| (i, ValueKind::Put, format!("txn{i}").into_bytes(), b"payload".to_vec()))
            .collect();
        wal.append_atomic(&group).unwrap();
        wal.sync().unwrap();
        let id = wal.id();
        let mut blocks = dev.read(id, 0, 1, IoCategory::Wal).unwrap();
        blocks[20] ^= 0x01; // flip a byte inside the group
        let id2 = dev.create().unwrap();
        dev.append(id2, &blocks, IoCategory::Wal).unwrap();
        let before = dev_dyn.stats().snapshot().corruption_detected;
        let records = recover(dev_dyn.clone(), id2).unwrap();
        assert!(records.is_empty(), "corrupt group must not replay partially");
        assert_eq!(dev_dyn.stats().snapshot().corruption_detected, before + 1);
    }

    #[test]
    fn binary_keys_and_empty_values() {
        let dev = device();
        let mut wal = Wal::create(dev.clone()).unwrap();
        wal.append(1, ValueKind::Put, &[0, 255, 0], &[]).unwrap();
        wal.append(2, ValueKind::Delete, &[RECORD_MARKER; 5], &[]).unwrap();
        wal.sync().unwrap();
        let records = recover(dev, wal.id()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].key, vec![0, 255, 0]);
        assert_eq!(records[1].key, vec![RECORD_MARKER; 5]);
    }
}
