//! WiscKey-style key-value separation (Lu et al., FAST '16; tutorial
//! Module I.2).
//!
//! Large values are appended to a value log; the LSM stores a small
//! pointer instead. Compaction then moves pointers, not payloads, slashing
//! write amplification — at the price of one extra storage access per read
//! of a separated value, and of scans losing value locality.
//!
//! Value encoding inside the LSM (only when separation is enabled):
//! `[0x00, inline bytes…]` or `[0x01, file_id u64, offset u64, len u32]`.

use std::sync::Arc;

use lsm_storage::{FileId, IoCategory, StorageDevice, StorageResult, WritableFile};

use crate::entry::{get_varint, put_varint};

const INLINE_TAG: u8 = 0x00;
const POINTER_TAG: u8 = 0x01;

/// A pointer into the value log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValuePointer {
    /// Value-log file.
    pub file: FileId,
    /// Byte offset of the record.
    pub offset: u64,
    /// Total record length in bytes.
    pub len: u32,
}

/// Wraps raw bytes as an inline value (separation enabled, small value).
pub fn encode_inline(value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(value.len() + 1);
    out.push(INLINE_TAG);
    out.extend_from_slice(value);
    out
}

/// Encodes a value-log pointer.
pub fn encode_pointer(ptr: ValuePointer) -> Vec<u8> {
    let mut out = Vec::with_capacity(21);
    out.push(POINTER_TAG);
    out.extend_from_slice(&ptr.file.0.to_le_bytes());
    out.extend_from_slice(&ptr.offset.to_le_bytes());
    out.extend_from_slice(&ptr.len.to_le_bytes());
    out
}

/// Decodes an engine value: `Ok(inline bytes)` or `Err(pointer)`.
/// `None` on corrupt encodings.
pub fn decode_value(raw: &[u8]) -> Option<Result<&[u8], ValuePointer>> {
    let (&tag, rest) = raw.split_first()?;
    match tag {
        INLINE_TAG => Some(Ok(rest)),
        POINTER_TAG => {
            if rest.len() != 20 {
                return None;
            }
            Some(Err(ValuePointer {
                file: FileId(u64::from_le_bytes(rest[0..8].try_into().ok()?)),
                offset: u64::from_le_bytes(rest[8..16].try_into().ok()?),
                len: u32::from_le_bytes(rest[16..20].try_into().ok()?),
            }))
        }
        _ => None,
    }
}

/// Resolves a pointer against any live log file via the device directly —
/// used for pointers into logs recovered from a previous session (only
/// device-resident bytes are readable; a pointer past the persisted length
/// reports corruption, matching torn-tail semantics).
pub fn read_pointer_from_device(
    device: &Arc<dyn StorageDevice>,
    ptr: ValuePointer,
) -> StorageResult<Vec<u8>> {
    let bs = device.block_size() as u64;
    // A dangling pointer (log file gone, e.g. GC'd or lost in a crash) is a
    // data-level corruption, not an engine bug: surface it as such.
    let len_blocks = device.len_blocks(ptr.file).map_err(|e| match e {
        lsm_storage::StorageError::UnknownFile(id) => lsm_storage::StorageError::Corruption(
            format!("value-log pointer dangles: file f{id} does not exist"),
        ),
        other => other,
    })?;
    let end = ptr.offset + ptr.len as u64;
    if end > len_blocks * bs {
        return Err(lsm_storage::StorageError::Corruption(
            "value-log pointer past persisted length".into(),
        ));
    }
    let first = ptr.offset / bs;
    let last = (end - 1) / bs;
    let raw = device.read(ptr.file, first, last - first + 1, IoCategory::ValueLog)?;
    let start = (ptr.offset - first * bs) as usize;
    let record = &raw[start..start + ptr.len as usize];
    ValueLog::decode_record(record)
        .map(|(_, v)| v.to_vec())
        .ok_or_else(|| lsm_storage::StorageError::Corruption("bad vlog record".into()))
}

/// The append-only value log.
///
/// Reads must work against the *unsealed* active log, but the device only
/// holds whole blocks; the partial tail block is mirrored in memory.
pub struct ValueLog {
    device: Arc<dyn StorageDevice>,
    file: WritableFile,
    /// Bytes of the current partial tail block (not yet on the device).
    tail: Vec<u8>,
    /// Total bytes appended (device bytes + tail).
    len: u64,
    /// Live-value bytes (for the garbage ratio).
    live_bytes: u64,
}

impl ValueLog {
    /// Opens a fresh value log.
    pub fn create(device: Arc<dyn StorageDevice>) -> StorageResult<Self> {
        let file = WritableFile::create(Arc::clone(&device), IoCategory::ValueLog)?;
        Ok(ValueLog {
            device,
            file,
            tail: Vec::new(),
            len: 0,
            live_bytes: 0,
        })
    }

    /// The log's file id.
    pub fn id(&self) -> FileId {
        self.file.id()
    }

    /// Total appended bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fraction of appended bytes no longer referenced (0 when empty).
    pub fn garbage_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            1.0 - self.live_bytes as f64 / self.len as f64
        }
    }

    /// Informs the log that `bytes` of previously-live data were
    /// overwritten or deleted.
    pub fn mark_dead(&mut self, bytes: u64) {
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
    }

    /// Appends a `(key, value)` record; returns its pointer.
    pub fn append(&mut self, key: &[u8], value: &[u8]) -> StorageResult<ValuePointer> {
        let mut record = Vec::with_capacity(key.len() + value.len() + 10);
        put_varint(&mut record, key.len() as u64);
        put_varint(&mut record, value.len() as u64);
        record.extend_from_slice(key);
        record.extend_from_slice(value);
        let offset = self.len;
        let bs = self.device.block_size();
        // mirror into the tail, flushing whole blocks through the file
        self.tail.extend_from_slice(&record);
        self.file.append(&record)?;
        let flushed_tail_blocks = self.tail.len() / bs;
        if flushed_tail_blocks > 0 {
            self.tail.drain(..flushed_tail_blocks * bs);
        }
        self.len += record.len() as u64;
        self.live_bytes += record.len() as u64;
        Ok(ValuePointer {
            file: self.id(),
            offset,
            len: record.len() as u32,
        })
    }

    /// Pads the log to a block boundary so every record so far is readable
    /// directly from the device (snapshots resolve pointers without access
    /// to this in-memory tail). Padding is skipped by [`ValueLog::scan_all`].
    pub fn sync(&mut self) -> StorageResult<()> {
        let bs = self.device.block_size() as u64;
        let pad = (bs - self.len % bs) % bs;
        self.file.pad_to_block()?;
        self.len += pad;
        self.tail.clear();
        Ok(())
    }

    /// Reads the record at `ptr` (from this log) and returns its value.
    pub fn read(&self, ptr: ValuePointer) -> StorageResult<Vec<u8>> {
        debug_assert_eq!(ptr.file, self.id(), "pointer into a different log");
        let bs = self.device.block_size() as u64;
        let device_bytes = self.len - self.tail.len() as u64;
        let mut record = Vec::with_capacity(ptr.len as usize);
        let end = ptr.offset + ptr.len as u64;
        // device part
        if ptr.offset < device_bytes {
            let dev_end = end.min(device_bytes);
            let first_block = ptr.offset / bs;
            let last_block = (dev_end - 1) / bs;
            let raw = self.device.read(
                self.file.id(),
                first_block,
                last_block - first_block + 1,
                IoCategory::ValueLog,
            )?;
            let start = (ptr.offset - first_block * bs) as usize;
            let take = (dev_end - ptr.offset) as usize;
            record.extend_from_slice(&raw[start..start + take]);
        }
        // tail part
        if end > device_bytes {
            let tail_start = ptr.offset.max(device_bytes) - device_bytes;
            let tail_end = end - device_bytes;
            record.extend_from_slice(&self.tail[tail_start as usize..tail_end as usize]);
        }
        Self::decode_record(&record)
            .map(|(_, v)| v.to_vec())
            .ok_or_else(|| lsm_storage::StorageError::Corruption("bad vlog record".into()))
    }

    pub(crate) fn decode_record(record: &[u8]) -> Option<(&[u8], &[u8])> {
        let (klen, n) = get_varint(record)?;
        let (vlen, m) = get_varint(&record[n..])?;
        let key_start = n + m;
        let key = record.get(key_start..key_start + klen as usize)?;
        let value = record
            .get(key_start + klen as usize..key_start + klen as usize + vlen as usize)?;
        Some((key, value))
    }

    /// Reads back every record `(key, value, pointer)` — used by GC.
    #[allow(clippy::type_complexity)]
    pub fn scan_all(&self) -> StorageResult<Vec<(Vec<u8>, Vec<u8>, ValuePointer)>> {
        let bs = self.device.block_size() as u64;
        let device_bytes = self.len - self.tail.len() as u64;
        let mut bytes = if device_bytes > 0 {
            self.device.read(
                self.file.id(),
                0,
                device_bytes.div_ceil(bs),
                IoCategory::ValueLog,
            )?
        } else {
            Vec::new()
        };
        bytes.truncate(device_bytes as usize);
        bytes.extend_from_slice(&self.tail);
        let mut out = Vec::new();
        let mut off = 0usize;
        let bs_usize = bs as usize;
        while off < bytes.len() {
            let Some((klen, n)) = get_varint(&bytes[off..]) else { break };
            let Some((vlen, m)) = get_varint(&bytes[off + n..]) else { break };
            if klen == 0 && vlen == 0 {
                // sync padding (real records always carry a value)
                off = (off / bs_usize + 1) * bs_usize;
                continue;
            }
            let total = n + m + klen as usize + vlen as usize;
            let Some(record) = bytes.get(off..off + total) else { break };
            let Some((key, value)) = Self::decode_record(record) else {
                return Err(lsm_storage::StorageError::Corruption(
                    "undecodable value-log record during scan".into(),
                ));
            };
            out.push((
                key.to_vec(),
                value.to_vec(),
                ValuePointer {
                    file: self.id(),
                    offset: off as u64,
                    len: total as u32,
                },
            ));
            off += total;
        }
        Ok(out)
    }

    /// Seals and deletes the log file (after GC rewrote the live values).
    pub fn destroy(self) -> StorageResult<()> {
        let file = self.file.seal()?;
        file.delete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_storage::{DeviceProfile, MemDevice};

    fn device() -> Arc<dyn StorageDevice> {
        Arc::new(MemDevice::new(512, DeviceProfile::free()))
    }

    #[test]
    fn encoding_roundtrip() {
        let inline = encode_inline(b"hello");
        assert_eq!(decode_value(&inline), Some(Ok(b"hello".as_slice())));
        let ptr = ValuePointer {
            file: FileId(7),
            offset: 12345,
            len: 99,
        };
        let enc = encode_pointer(ptr);
        assert_eq!(decode_value(&enc), Some(Err(ptr)));
        assert_eq!(decode_value(&[]), None);
        assert_eq!(decode_value(&[9, 9]), None);
        assert_eq!(decode_value(&[POINTER_TAG, 1, 2]), None);
    }

    #[test]
    fn append_then_read_small_and_large() {
        let mut log = ValueLog::create(device()).unwrap();
        let p1 = log.append(b"k1", b"small").unwrap();
        let big = vec![0xCD; 5000];
        let p2 = log.append(b"k2", &big).unwrap();
        let p3 = log.append(b"k3", b"tail-resident").unwrap();
        assert_eq!(log.read(p1).unwrap(), b"small".to_vec());
        assert_eq!(log.read(p2).unwrap(), big);
        assert_eq!(log.read(p3).unwrap(), b"tail-resident".to_vec());
    }

    #[test]
    fn read_spanning_device_and_tail() {
        let mut log = ValueLog::create(device()).unwrap();
        // fill just under one block, then append a record that straddles
        log.append(b"pad", &vec![1u8; 490]).unwrap();
        let p = log.append(b"straddle", &[2u8; 100]).unwrap();
        assert_eq!(log.read(p).unwrap(), vec![2u8; 100]);
    }

    #[test]
    fn scan_all_returns_everything_in_order() {
        let mut log = ValueLog::create(device()).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..50u32 {
            ptrs.push(
                log.append(format!("key{i}").as_bytes(), format!("value{i}").as_bytes())
                    .unwrap(),
            );
        }
        let all = log.scan_all().unwrap();
        assert_eq!(all.len(), 50);
        for (i, (k, v, p)) in all.iter().enumerate() {
            assert_eq!(k, format!("key{i}").as_bytes());
            assert_eq!(v, format!("value{i}").as_bytes());
            assert_eq!(*p, ptrs[i]);
        }
    }

    #[test]
    fn sync_keeps_pointers_and_scan_consistent() {
        let mut log = ValueLog::create(device()).unwrap();
        let p1 = log.append(b"a", &[1u8; 100]).unwrap();
        log.sync().unwrap();
        let p2 = log.append(b"b", &[2u8; 200]).unwrap();
        log.sync().unwrap();
        assert_eq!(log.read(p1).unwrap(), vec![1u8; 100]);
        assert_eq!(log.read(p2).unwrap(), vec![2u8; 200]);
        let all = log.scan_all().unwrap();
        assert_eq!(all.len(), 2, "padding must be skipped by scan");
        assert_eq!(all[0].2, p1);
        assert_eq!(all[1].2, p2);
    }

    #[test]
    fn garbage_ratio_tracks_dead_bytes() {
        let mut log = ValueLog::create(device()).unwrap();
        let p1 = log.append(b"a", &[0u8; 100]).unwrap();
        let _p2 = log.append(b"b", &[0u8; 100]).unwrap();
        assert_eq!(log.garbage_ratio(), 0.0);
        log.mark_dead(p1.len as u64);
        assert!((log.garbage_ratio() - 0.5).abs() < 0.01);
    }

    #[test]
    fn dangling_pointer_reports_corruption() {
        let dev = device();
        let ptr = ValuePointer {
            file: FileId(9999),
            offset: 0,
            len: 10,
        };
        match read_pointer_from_device(&dev, ptr) {
            Err(lsm_storage::StorageError::Corruption(msg)) => {
                assert!(msg.contains("dangles"), "{msg}");
            }
            other => panic!("expected Corruption, got {other:?}"),
        }
    }

    #[test]
    fn destroy_frees_the_file() {
        let dev = device();
        let mut log = ValueLog::create(dev.clone()).unwrap();
        log.append(b"k", &vec![0u8; 2000]).unwrap();
        let before = dev.live_files().len();
        log.destroy().unwrap();
        assert_eq!(dev.live_files().len(), before - 1);
    }
}
