//! SSTable builder: turns a sorted entry stream into an immutable file.
//!
//! Entries are cut into prefix-compressed data blocks aligned to device
//! blocks; the filter, range-filter, and meta sections each start on a
//! block boundary and are charged to their own I/O category, so the
//! experiment suite can attribute every written byte.

use lsm_filters::serialize::SerializableRangeFilter;
use lsm_filters::{FilterKind, RangeFilterKind};
use lsm_storage::{IoCategory, StorageDevice, StorageResult, WritableFile};

use std::sync::Arc;

use crate::config::LsmConfig;
use crate::entry::ValueKind;
use crate::sstable::block::BlockBuilder;
use crate::sstable::meta::{encode_footer, BlockLocation, Section, TableMeta};

/// Filter-section tag bytes.
pub(crate) const FILTER_TAG_BLOOM: u8 = 1;
pub(crate) const FILTER_TAG_BLOCKED: u8 = 2;
pub(crate) const FILTER_TAG_CUCKOO: u8 = 3;
pub(crate) const FILTER_TAG_XOR: u8 = 4;
pub(crate) const FILTER_TAG_RIBBON: u8 = 5;

/// Builds one SSTable.
pub struct TableBuilder {
    file: WritableFile,
    block_size: usize,
    filter_kind: FilterKind,
    partitioned_filters: bool,
    bits_per_key: f64,
    range_filter_kind: RangeFilterKind,
    block: BlockBuilder,
    first_key: Option<Vec<u8>>,
    last_key: Vec<u8>,
    fences: Vec<Vec<u8>>,
    data_blocks: Vec<BlockLocation>,
    keys: Vec<Vec<u8>>,
    /// Keys of the block currently being built (partitioned filters).
    block_keys: Vec<Vec<u8>>,
    /// Serialized filter partitions, one per cut block.
    partitions: Vec<Vec<u8>>,
    num_entries: u64,
    num_tombstones: u64,
    max_seqno: u64,
}

impl TableBuilder {
    /// Starts a new table on `device` using `cfg`'s format knobs.
    /// `bits_per_key` is passed separately so Monkey allocation can give
    /// each level its own budget.
    pub fn new(
        device: Arc<dyn StorageDevice>,
        cfg: &LsmConfig,
        bits_per_key: f64,
    ) -> StorageResult<Self> {
        let file = WritableFile::create(device, IoCategory::Data)?;
        Ok(TableBuilder {
            file,
            block_size: cfg.block_size,
            filter_kind: cfg.filter,
            partitioned_filters: cfg.partitioned_filters && cfg.filter != FilterKind::None,
            bits_per_key,
            range_filter_kind: cfg.range_filter,
            block: BlockBuilder::new(cfg.restart_interval, cfg.block_hash_index),
            first_key: None,
            last_key: Vec::new(),
            fences: Vec::new(),
            data_blocks: Vec::new(),
            keys: Vec::new(),
            block_keys: Vec::new(),
            partitions: Vec::new(),
            num_entries: 0,
            num_tombstones: 0,
            max_seqno: 0,
        })
    }

    /// File id of the table being built.
    pub fn file_id(&self) -> lsm_storage::FileId {
        self.file.id()
    }

    /// Appends an entry; keys must be strictly ascending.
    pub fn add(
        &mut self,
        key: &[u8],
        seqno: u64,
        kind: ValueKind,
        value: &[u8],
    ) -> StorageResult<()> {
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.block.add(key, seqno, kind, value);
        if self.partitioned_filters {
            self.block_keys.push(key.to_vec());
        } else {
            self.keys.push(key.to_vec());
        }
        if self.range_filter_kind != RangeFilterKind::None && self.partitioned_filters {
            // range filters stay monolithic; keep the full key list too
            self.keys.push(key.to_vec());
        }
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.num_entries += 1;
        if kind == ValueKind::Delete {
            self.num_tombstones += 1;
        }
        self.max_seqno = self.max_seqno.max(seqno);
        if self.block.estimated_size() >= self.block_size.saturating_sub(64) {
            self.cut_block()?;
        }
        Ok(())
    }

    /// Bytes of data appended so far (block-granular estimate).
    pub fn estimated_file_bytes(&self) -> usize {
        self.file.offset() as usize + self.block.estimated_size()
    }

    /// Entries appended so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    fn cut_block(&mut self) -> StorageResult<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let fence = self.block.last_key().to_vec();
        let bytes = self.block.finish();
        let start_block = self.file.offset() / self.block_size as u64;
        debug_assert_eq!(self.file.offset() % self.block_size as u64, 0);
        self.file.append(&bytes)?;
        self.file.pad_to_block()?;
        self.data_blocks.push(BlockLocation {
            start_block,
            num_blocks: (bytes.len() as u64).div_ceil(self.block_size as u64),
            byte_len: bytes.len() as u64,
        });
        self.fences.push(fence);
        if self.partitioned_filters {
            let refs: Vec<&[u8]> = self.block_keys.iter().map(|k| k.as_slice()).collect();
            let part = match self.filter_kind.build_refs(&refs, self.bits_per_key) {
                Some(f) => Self::tag_filter(self.filter_kind, f.as_ref()),
                None => Vec::new(),
            };
            self.partitions.push(part);
            self.block_keys.clear();
        }
        Ok(())
    }

    fn tag_filter(kind: FilterKind, f: &dyn lsm_filters::PointFilter) -> Vec<u8> {
        let tag = match kind {
            FilterKind::Bloom => FILTER_TAG_BLOOM,
            FilterKind::BlockedBloom => FILTER_TAG_BLOCKED,
            FilterKind::Cuckoo => FILTER_TAG_CUCKOO,
            FilterKind::Xor => FILTER_TAG_XOR,
            FilterKind::Ribbon => FILTER_TAG_RIBBON,
            FilterKind::None => unreachable!("tagging a missing filter"),
        };
        let mut b = vec![tag];
        b.extend_from_slice(&f.to_bytes());
        b
    }

    fn write_section(&mut self, bytes: &[u8], cat: IoCategory) -> StorageResult<Section> {
        if bytes.is_empty() {
            return Ok(Section::default());
        }
        self.file.set_category(cat);
        let start_block = self.file.offset() / self.block_size as u64;
        self.file.append(bytes)?;
        self.file.pad_to_block()?;
        Ok(Section {
            start_block,
            byte_len: bytes.len() as u64,
        })
    }

    /// Finishes the table: writes filter/range-filter/meta sections plus
    /// the footer, seals the file, and returns it with its metadata.
    pub fn finish(mut self) -> StorageResult<(lsm_storage::ImmutableFile, TableMeta)> {
        self.cut_block()?;
        // point filter: monolithic, or concatenated per-block partitions
        let key_refs: Vec<&[u8]> = self.keys.iter().map(|k| k.as_slice()).collect();
        let mut filter_partitions: Vec<u32> = Vec::new();
        let filter_bytes = if self.partitioned_filters {
            let mut all = Vec::new();
            for p in &self.partitions {
                filter_partitions.push(p.len() as u32);
                all.extend_from_slice(p);
            }
            all
        } else {
            match self.filter_kind.build_refs(&key_refs, self.bits_per_key) {
                Some(f) => Self::tag_filter(self.filter_kind, f.as_ref()),
                None => Vec::new(),
            }
        };
        // range filter (keys are already sorted and unique)
        let range_bytes =
            match SerializableRangeFilter::build(self.range_filter_kind, &key_refs, self.bits_per_key)
            {
                Some(f) => f.to_bytes(),
                None => Vec::new(),
            };
        drop(key_refs);
        self.keys.clear();
        let filter = self.write_section(&filter_bytes, IoCategory::Filter)?;
        let range_filter = self.write_section(&range_bytes, IoCategory::Filter)?;
        // meta + footer
        let meta = TableMeta {
            min_key: self.first_key.clone().unwrap_or_default(),
            max_key: self.last_key.clone(),
            num_entries: self.num_entries,
            num_tombstones: self.num_tombstones,
            max_seqno: self.max_seqno,
            data_blocks: std::mem::take(&mut self.data_blocks),
            fences: std::mem::take(&mut self.fences),
            filter,
            range_filter,
            filter_partitions,
            filter_kind_tag: match self.filter_kind {
                FilterKind::None => 0,
                FilterKind::Bloom => FILTER_TAG_BLOOM,
                FilterKind::BlockedBloom => FILTER_TAG_BLOCKED,
                FilterKind::Cuckoo => FILTER_TAG_CUCKOO,
                FilterKind::Xor => FILTER_TAG_XOR,
                FilterKind::Ribbon => FILTER_TAG_RIBBON,
            },
            filter_bits_milli: (self.bits_per_key * 1000.0).round().max(0.0) as u64,
        };
        self.file.set_category(IoCategory::Index);
        let meta_bytes = meta.to_bytes();
        let meta_start = self.file.offset() / self.block_size as u64;
        self.file.append(&meta_bytes)?;
        self.file.pad_to_block()?;
        self.file.set_category(IoCategory::Misc);
        self.file
            .append(&encode_footer(meta_start, meta_bytes.len() as u64))?;
        let file = self.file.seal()?;
        Ok((file, meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::block::BlockIter;
    use lsm_storage::{DeviceProfile, MemDevice};

    fn device(block_size: usize) -> Arc<dyn StorageDevice> {
        Arc::new(MemDevice::new(block_size, DeviceProfile::free()))
    }

    fn cfg() -> LsmConfig {
        LsmConfig {
            block_size: 512,
            ..LsmConfig::small_for_tests()
        }
    }

    #[test]
    fn builds_multi_block_table() {
        let dev = device(512);
        let mut b = TableBuilder::new(dev.clone(), &cfg(), 10.0).unwrap();
        for i in 0..500u32 {
            b.add(
                format!("key{i:06}").as_bytes(),
                i as u64,
                ValueKind::Put,
                format!("value{i:06}").as_bytes(),
            )
            .unwrap();
        }
        let (file, meta) = b.finish().unwrap();
        assert!(meta.data_blocks.len() > 1, "expected multiple data blocks");
        assert_eq!(meta.num_entries, 500);
        assert_eq!(meta.min_key, b"key000000".to_vec());
        assert_eq!(meta.max_key, b"key000499".to_vec());
        assert_eq!(meta.fences.len(), meta.data_blocks.len());
        assert!(meta.filter.is_present());
        assert!(file.len_blocks() > 2);
        // read the first data block back and decode it
        let loc = meta.data_blocks[0];
        let raw = file
            .read_blocks(loc.start_block, loc.num_blocks, IoCategory::Data)
            .unwrap();
        let mut it = BlockIter::new(&raw[..loc.byte_len as usize]).unwrap();
        let first = it.next_entry().unwrap();
        assert_eq!(first.key, b"key000000".to_vec());
    }

    #[test]
    fn footer_points_at_meta() {
        use crate::sstable::meta::decode_footer;
        let dev = device(512);
        let mut b = TableBuilder::new(dev.clone(), &cfg(), 10.0).unwrap();
        b.add(b"a", 1, ValueKind::Put, b"v").unwrap();
        let (file, meta) = b.finish().unwrap();
        let last = file
            .read_blocks(file.len_blocks() - 1, 1, IoCategory::Misc)
            .unwrap();
        let (meta_start, meta_len) = decode_footer(&last).unwrap();
        let meta_bytes = file
            .read_bytes(meta_start * 512, meta_len as usize, IoCategory::Index)
            .unwrap();
        let decoded = TableMeta::from_bytes(&meta_bytes).unwrap();
        assert_eq!(decoded, meta);
    }

    #[test]
    fn tombstones_are_counted() {
        let dev = device(512);
        let mut b = TableBuilder::new(dev, &cfg(), 10.0).unwrap();
        b.add(b"a", 1, ValueKind::Put, b"v").unwrap();
        b.add(b"b", 2, ValueKind::Delete, b"").unwrap();
        b.add(b"c", 3, ValueKind::Delete, b"").unwrap();
        let (_, meta) = b.finish().unwrap();
        assert_eq!(meta.num_tombstones, 2);
        assert_eq!(meta.max_seqno, 3);
    }

    #[test]
    fn footer_records_filter_parameters() {
        let dev = device(512);
        let mut b = TableBuilder::new(dev, &cfg(), 7.25).unwrap();
        b.add(b"a", 1, ValueKind::Put, b"v").unwrap();
        let (_, meta) = b.finish().unwrap();
        assert_eq!(meta.filter_kind_tag, FILTER_TAG_BLOOM);
        assert_eq!(meta.filter_bits_milli, 7250);

        let dev = device(512);
        let mut config = cfg();
        config.filter = FilterKind::None;
        let mut b = TableBuilder::new(dev, &config, 10.0).unwrap();
        b.add(b"a", 1, ValueKind::Put, b"v").unwrap();
        let (_, meta) = b.finish().unwrap();
        assert_eq!(meta.filter_kind_tag, 0);
    }

    #[test]
    fn no_filter_kind_writes_no_filter_section() {
        let dev = device(512);
        let mut config = cfg();
        config.filter = FilterKind::None;
        let mut b = TableBuilder::new(dev, &config, 10.0).unwrap();
        b.add(b"a", 1, ValueKind::Put, b"v").unwrap();
        let (_, meta) = b.finish().unwrap();
        assert!(!meta.filter.is_present());
    }

    #[test]
    fn range_filter_section_written_when_configured() {
        let dev = device(512);
        let mut config = cfg();
        config.range_filter = RangeFilterKind::Surf { suffix_bits: 8 };
        let mut b = TableBuilder::new(dev, &config, 10.0).unwrap();
        for i in 0..50u32 {
            b.add(format!("k{i:04}").as_bytes(), i as u64, ValueKind::Put, b"v")
                .unwrap();
        }
        let (_, meta) = b.finish().unwrap();
        assert!(meta.range_filter.is_present());
    }

    #[test]
    fn io_categories_attributed() {
        let dev: Arc<MemDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
        let dev_dyn: Arc<dyn StorageDevice> = dev.clone();
        let mut b = TableBuilder::new(dev_dyn, &cfg(), 10.0).unwrap();
        for i in 0..200u32 {
            b.add(format!("key{i:06}").as_bytes(), i as u64, ValueKind::Put, &[0u8; 32])
                .unwrap();
        }
        let _ = b.finish().unwrap();
        let snap = dev.stats().snapshot();
        assert!(snap.category(IoCategory::Data).written_blocks > 0);
        assert!(snap.category(IoCategory::Filter).written_blocks > 0);
        assert!(snap.category(IoCategory::Index).written_blocks > 0);
        assert!(snap.category(IoCategory::Misc).written_blocks > 0);
    }

    #[test]
    fn large_value_spans_multiple_device_blocks() {
        let dev = device(512);
        let mut b = TableBuilder::new(dev, &cfg(), 10.0).unwrap();
        let big = vec![7u8; 3000];
        b.add(b"big", 1, ValueKind::Put, &big).unwrap();
        b.add(b"small", 2, ValueKind::Put, b"v").unwrap();
        let (file, meta) = b.finish().unwrap();
        assert!(meta.data_blocks[0].num_blocks > 1);
        let loc = meta.data_blocks[0];
        let raw = file
            .read_blocks(loc.start_block, loc.num_blocks, IoCategory::Data)
            .unwrap();
        let mut it = BlockIter::new(&raw[..loc.byte_len as usize]).unwrap();
        assert_eq!(it.next_entry().unwrap().value, big);
    }
}
