//! SSTable reader: the point-lookup and scan path over one immutable run.
//!
//! Opening a table loads its metadata, point/range filters, and block
//! index into memory (production engines pin these; tutorial Module II.1).
//! Data blocks are fetched on demand through the shared block cache.

use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lsm_cache::{CacheKey, ShardedCache};
use lsm_filters::serialize::SerializableRangeFilter;
use lsm_filters::{
    BlockedBloomFilter, BloomFilter, CuckooFilter, PointFilter, RangeFilter, RibbonFilter,
    XorFilter,
};
use lsm_index::{BlockLocator, FencePointers, IndexKind, PlaIndex, RadixSplineIndex, SparseIndex};
use lsm_storage::{Block, ImmutableFile, IoCategory, StorageError, StorageResult};

use crate::entry::ValueKind;
use crate::sstable::block::{BlockEntry, BlockIter, EntryRef};
use crate::sstable::builder::{
    FILTER_TAG_BLOCKED, FILTER_TAG_BLOOM, FILTER_TAG_CUCKOO, FILTER_TAG_RIBBON, FILTER_TAG_XOR,
};
use crate::sstable::meta::{decode_footer, TableMeta};

fn deserialize_filter(bytes: &[u8]) -> Option<Box<dyn PointFilter>> {
    let (&tag, rest) = bytes.split_first()?;
    match tag {
        FILTER_TAG_BLOOM => Some(Box::new(BloomFilter::from_bytes(rest)?)),
        FILTER_TAG_BLOCKED => Some(Box::new(BlockedBloomFilter::from_bytes(rest)?)),
        FILTER_TAG_CUCKOO => Some(Box::new(CuckooFilter::from_bytes(rest)?)),
        FILTER_TAG_XOR => Some(Box::new(XorFilter::from_bytes(rest)?)),
        FILTER_TAG_RIBBON => Some(Box::new(RibbonFilter::from_bytes(rest)?)),
        _ => None,
    }
}

/// The in-memory block locator, built from the fences at open time
/// according to the configured [`IndexKind`].
enum Locator {
    Fence(FencePointers),
    Sparse(SparseIndex),
    Pla(PlaIndex),
    Spline(RadixSplineIndex),
}

impl Locator {
    fn build(kind: IndexKind, meta: &TableMeta) -> Locator {
        match kind {
            IndexKind::Fence => Locator::Fence(FencePointers::new(
                meta.min_key.clone(),
                meta.fences.clone(),
            )),
            IndexKind::Sparse { rate } => {
                Locator::Sparse(SparseIndex::build(meta.min_key.clone(), &meta.fences, rate))
            }
            IndexKind::Pla { epsilon } => Locator::Pla(PlaIndex::build(&meta.fences, epsilon)),
            IndexKind::RadixSpline { radix_bits, epsilon } => {
                Locator::Spline(RadixSplineIndex::build(&meta.fences, radix_bits, epsilon))
            }
        }
    }

    /// Candidate block window for a point lookup; `None` = provably absent.
    fn window(&self, key: &[u8]) -> Option<std::ops::RangeInclusive<usize>> {
        match self {
            Locator::Fence(f) => f.locate(key).map(|b| b..=b),
            Locator::Sparse(s) => s.candidate_window(key),
            Locator::Pla(p) => p.window_for(key),
            Locator::Spline(s) => s.window_for(key),
        }
    }

    fn size_bits(&self) -> usize {
        match self {
            Locator::Fence(f) => f.size_bits(),
            Locator::Sparse(s) => s.size_bits(),
            Locator::Pla(p) => p.size_bits(),
            Locator::Spline(s) => s.size_bits(),
        }
    }
}

/// The result of a table point lookup, with the path taken (for stats).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableGet {
    /// The matching entry, if the key is present in this table.
    pub entry: Option<BlockEntry>,
    /// Whether the point filter pruned the lookup (no data I/O happened).
    pub filter_pruned: bool,
    /// Data blocks actually read (cache hits included).
    pub blocks_examined: u32,
}

/// Lookup-path statistics shared by [`Table::get`] and
/// [`Table::get_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableProbe {
    /// Whether the point filter pruned the lookup (no data I/O happened).
    pub filter_pruned: bool,
    /// Data blocks actually read (cache hits included).
    pub blocks_examined: u32,
}

/// An open, immutable SSTable.
pub struct Table {
    file: ImmutableFile,
    meta: TableMeta,
    filter: Option<Box<dyn PointFilter>>,
    range_filter: Option<SerializableRangeFilter>,
    locator: Locator,
    accesses: AtomicU64,
    /// Byte offset of each filter partition within the filter section
    /// (empty = monolithic filter held in `filter`).
    partition_offsets: Vec<u64>,
    /// Set when a compaction supersedes this table; the file is physically
    /// deleted when the last reference (version, snapshot, or iterator)
    /// drops — which is what lets snapshots outlive compactions.
    obsolete: std::sync::atomic::AtomicBool,
}

impl Table {
    /// Opens a sealed table file, loading meta/filter/index into memory.
    pub fn open(file: ImmutableFile, index_kind: IndexKind) -> StorageResult<Arc<Table>> {
        let bs = file.block_size() as u64;
        if file.len_blocks() == 0 {
            return Err(StorageError::Corruption("empty table file".into()));
        }
        let corrupt = |msg: &str| {
            file.stats().record_corruption();
            StorageError::Corruption(msg.into())
        };
        let footer_block = file.read_blocks(file.len_blocks() - 1, 1, IoCategory::Misc)?;
        let (meta_start, meta_len) =
            decode_footer(&footer_block).ok_or_else(|| corrupt("bad table footer"))?;
        let meta_bytes = file.read_bytes(meta_start * bs, meta_len as usize, IoCategory::Index)?;
        let meta =
            TableMeta::from_bytes(&meta_bytes).ok_or_else(|| corrupt("bad table meta"))?;
        // partitioned filters stay on storage and are fetched through the
        // cache per probe; monolithic filters are loaded (pinned) here
        let mut partition_offsets = Vec::new();
        let filter = if !meta.filter_partitions.is_empty() {
            let mut off = 0u64;
            for &len in &meta.filter_partitions {
                partition_offsets.push(off);
                off += len as u64;
            }
            None
        } else if meta.filter.is_present() {
            let bytes = file.read_bytes(
                meta.filter.start_block * bs,
                meta.filter.byte_len as usize,
                IoCategory::Filter,
            )?;
            Some(deserialize_filter(&bytes).ok_or_else(|| corrupt("bad filter section"))?)
        } else {
            None
        };
        let range_filter = if meta.range_filter.is_present() {
            let bytes = file.read_bytes(
                meta.range_filter.start_block * bs,
                meta.range_filter.byte_len as usize,
                IoCategory::Filter,
            )?;
            Some(
                SerializableRangeFilter::try_from_bytes(&bytes)
                    .map_err(|e| corrupt(&e.to_string()))?,
            )
        } else {
            None
        };
        let locator = Locator::build(index_kind, &meta);
        Ok(Arc::new(Table {
            file,
            meta,
            filter,
            range_filter,
            locator,
            accesses: AtomicU64::new(0),
            partition_offsets,
            obsolete: std::sync::atomic::AtomicBool::new(false),
        }))
    }

    /// Table (= file) id.
    pub fn id(&self) -> u64 {
        self.file.id().0
    }

    /// Marks the table superseded: its file is deleted when the last
    /// reference drops.
    pub fn mark_obsolete(&self) {
        self.obsolete.store(true, Ordering::Release);
    }

    /// Table metadata.
    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// Filter tag byte recorded in the footer at build time (0 = none).
    /// Reflects what this table actually carries, independent of whatever
    /// the engine's current (possibly retuned) config says.
    pub fn filter_kind_tag(&self) -> u8 {
        self.meta.filter_kind_tag
    }

    /// Bits per key the builder used for this table's filters, recovered
    /// from the footer (not from global config).
    pub fn filter_bits_per_key(&self) -> f64 {
        self.meta.filter_bits_milli as f64 / 1000.0
    }

    /// Lookups served since open (drives the "coldest" file picker).
    pub fn accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// In-memory index footprint in bits (experiment `fence_vs_learned`).
    pub fn index_size_bits(&self) -> usize {
        self.locator.size_bits()
    }

    /// In-memory (resident) point-filter footprint in bits. Partitioned
    /// filters report 0: partitions live in the block cache, not pinned
    /// per table.
    pub fn filter_size_bits(&self) -> usize {
        self.filter.as_ref().map_or(0, |f| f.size_bits())
    }

    /// File size in device blocks.
    pub fn len_blocks(&self) -> u64 {
        self.file.len_blocks()
    }

    /// Approximate data bytes (device blocks × block size).
    pub fn data_bytes(&self) -> u64 {
        let bs = self.file.block_size() as u64;
        self.meta
            .data_blocks
            .iter()
            .map(|b| b.num_blocks * bs)
            .sum()
    }

    /// Whether the table's key range overlaps `[lo, hi]` (inclusive).
    pub fn overlaps(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.meta.min_key.as_slice() <= hi && self.meta.max_key.as_slice() >= lo
    }

    /// Whether this table uses partitioned filters.
    pub fn partitioned_filters(&self) -> bool {
        !self.partition_offsets.is_empty()
    }

    /// Cache-key block namespace for filter partitions (disjoint from data
    /// block indexes).
    const PARTITION_KEY_BASE: u64 = 1 << 40;

    /// Probes the filter partition guarding data block `idx`. `Ok(true)`
    /// means the key may be in the block (or no partition exists).
    fn probe_partition(
        &self,
        idx: usize,
        key: &[u8],
        cache: Option<&ShardedCache<Block>>,
    ) -> StorageResult<bool> {
        if self.partition_offsets.is_empty() {
            return Ok(true);
        }
        let len = self.meta.filter_partitions[idx] as usize;
        if len == 0 {
            return Ok(true);
        }
        let cache_key = CacheKey::new(self.id(), Self::PARTITION_KEY_BASE + idx as u64);
        let block = if let Some(b) = cache.and_then(|c| c.get(&cache_key)) {
            b
        } else {
            let bs = self.file.block_size() as u64;
            let start = self.meta.filter.start_block * bs + self.partition_offsets[idx];
            let bytes = self.file.read_bytes(start, len, IoCategory::Filter)?;
            let b = Block::new(bytes);
            if let Some(c) = cache {
                c.insert(cache_key, b.clone(), b.charge());
            }
            b
        };
        let f = deserialize_filter(block.data()).ok_or_else(|| {
            self.file.stats().record_corruption();
            StorageError::Corruption("bad filter partition".into())
        })?;
        Ok(f.may_contain(key))
    }

    /// Reads (via cache when provided) the `idx`-th data block.
    pub fn read_data_block(
        &self,
        idx: usize,
        cache: Option<&ShardedCache<Block>>,
    ) -> StorageResult<Block> {
        let loc = self.meta.data_blocks[idx];
        let key = CacheKey::new(self.id(), idx as u64);
        if let Some(c) = cache {
            if let Some(b) = c.get(&key) {
                return Ok(b);
            }
        }
        let mut raw = self
            .file
            .read_blocks(loc.start_block, loc.num_blocks, IoCategory::Data)?;
        raw.truncate(loc.byte_len as usize);
        let block = Block::new(raw);
        if let Some(c) = cache {
            c.insert(key, block.clone(), block.charge());
        }
        Ok(block)
    }

    /// Point lookup within this table, yielding a borrowed view.
    ///
    /// `f` runs at most once, on the matching entry, while the block is
    /// still pinned — so the caller can copy the value straight into its
    /// own buffer (or hand it to the wire encoder) without an
    /// intermediate allocation. [`Table::get`] wraps this with an owned
    /// [`BlockEntry`] for callers that need ownership.
    pub fn get_with<R>(
        &self,
        key: &[u8],
        cache: Option<&ShardedCache<Block>>,
        f: impl FnOnce(EntryRef<'_>) -> R,
    ) -> StorageResult<(Option<R>, TableProbe)> {
        let mut f = Some(f);
        self.accesses.fetch_add(1, Ordering::Relaxed);
        let miss = |filter_pruned: bool, blocks_examined: u32| TableProbe {
            filter_pruned,
            blocks_examined,
        };
        if !self.meta.key_in_range(key) {
            return Ok((None, miss(false, 0)));
        }
        if let Some(flt) = &self.filter {
            if !flt.may_contain(key) {
                return Ok((None, miss(true, 0)));
            }
        }
        let Some(window) = self.locator.window(key) else {
            return Ok((None, miss(false, 0)));
        };
        let mut blocks_examined = 0u32;
        let mut lo = *window.start();
        let mut hi = (*window.end()).min(self.meta.data_blocks.len().saturating_sub(1));
        if self.meta.data_blocks.is_empty() || lo > hi {
            return Ok((None, miss(false, 0)));
        }
        // partitioned filters: probe the candidate blocks' partitions
        // first — each probe is a small cached read — and narrow the window
        // to the blocks whose partition answers "maybe"
        if self.partitioned_filters() {
            let mut candidates = Vec::new();
            for idx in lo..=hi {
                if self.probe_partition(idx, key, cache)? {
                    candidates.push(idx);
                }
            }
            match candidates.len() {
                0 => return Ok((None, miss(true, 0))),
                1 => {
                    lo = candidates[0];
                    hi = candidates[0];
                }
                _ => {
                    lo = candidates[0];
                    hi = *candidates.last().unwrap();
                }
            }
        }
        if lo == hi {
            // exact fence hit: one block, hash-index fast path applies
            let block = self.read_data_block(lo, cache)?;
            blocks_examined += 1;
            let mut it = BlockIter::new(block).ok_or_else(|| {
                self.file.stats().record_corruption();
                StorageError::Corruption("bad data block".into())
            })?;
            let (found, _used_hash) = it.get(key)?;
            let r = found.then(|| (f.take().unwrap())(it.current()));
            return Ok((r, miss(false, blocks_examined)));
        }
        // binary search within the candidate window: the first probe lands
        // on the window's center — the locator's predicted block — so an
        // accurate prediction costs one block regardless of ε
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            let block = self.read_data_block(mid, cache)?;
            blocks_examined += 1;
            let mut it = BlockIter::new(block).ok_or_else(|| {
                self.file.stats().record_corruption();
                StorageError::Corruption("bad data block".into())
            })?;
            if it.seek(key)? {
                if it.key() == key {
                    let r = (f.take().unwrap())(it.current());
                    return Ok((Some(r), miss(false, blocks_examined)));
                }
                // this block holds the key's successor; the key lives
                // here or to the left
                it.seek_to_first();
                let first_gt = it.advance()? && it.key() > key;
                if !first_gt || mid == 0 {
                    break; // the key would be in this block: absent
                }
                hi = mid - 1;
            } else {
                lo = mid + 1; // every entry < key: look right
            }
        }
        Ok((None, miss(false, blocks_examined)))
    }

    /// Point lookup within this table (owned result).
    pub fn get(
        &self,
        key: &[u8],
        cache: Option<&ShardedCache<Block>>,
    ) -> StorageResult<TableGet> {
        let (entry, probe) = self.get_with(key, cache, |e| e.to_entry())?;
        Ok(TableGet {
            entry,
            filter_pruned: probe.filter_pruned,
            blocks_examined: probe.blocks_examined,
        })
    }

    /// Whether a range query `[lo, hi]` can skip this table entirely,
    /// using key range and (when present) the range filter.
    pub fn range_may_overlap(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> bool {
        // cheap key-range prune first
        let lo_key = match lo {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        if !self.meta.max_key.is_empty() && lo_key > self.meta.max_key.as_slice() {
            return false;
        }
        if let Bound::Included(h) | Bound::Excluded(h) = hi {
            if h < self.meta.min_key.as_slice() {
                return false;
            }
        }
        match &self.range_filter {
            Some(f) => f.may_overlap(lo, hi),
            None => true,
        }
    }

    /// A forward iterator positioned at the first entry with key ≥ `start`.
    pub fn iter_from(
        self: &Arc<Self>,
        start: &[u8],
        cache: Option<Arc<ShardedCache<Block>>>,
    ) -> StorageResult<TableIterator> {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        // first block whose fence (last key) ≥ start
        let block_idx = self.meta.fences.partition_point(|f| f.as_slice() < start);
        let mut iter = TableIterator {
            table: Arc::clone(self),
            cache,
            next_block: block_idx,
            current: None,
            primed: false,
        };
        iter.load_next_block()?;
        // position at the first entry ≥ start; the first advance() serves it
        while let Some(it) = &mut iter.current {
            if it.seek(start)? {
                iter.primed = true;
                break;
            }
            iter.current = None;
            iter.load_next_block()?;
        }
        Ok(iter)
    }
}

impl Drop for Table {
    fn drop(&mut self) {
        if self.obsolete.load(Ordering::Acquire) {
            // best effort: the device may already have dropped the file
            let _ = self.file.delete_in_place();
        }
    }
}

/// Streaming forward cursor over one table.
///
/// `advance()` moves to the next entry; `key()`/`value()`/`current()`
/// borrow from the pinned block, so a scan copies entry bytes only where
/// the caller decides to. [`TableIterator::next_entry`] is the owned
/// convenience wrapper.
pub struct TableIterator {
    table: Arc<Table>,
    cache: Option<Arc<ShardedCache<Block>>>,
    /// Index of the next data block to load.
    next_block: usize,
    current: Option<BlockIter<Block>>,
    /// The initial seek already positioned the cursor on an entry the
    /// first `advance()` must serve rather than step past.
    primed: bool,
}

impl TableIterator {
    fn load_next_block(&mut self) -> StorageResult<()> {
        if self.next_block < self.table.meta.data_blocks.len() {
            let block = self
                .table
                .read_data_block(self.next_block, self.cache.as_deref())?;
            self.next_block += 1;
            // An undecodable block must fail the scan. Skipping it would
            // silently truncate the result set — the caller would see a
            // shorter range, not an error.
            let Some(it) = BlockIter::new(block) else {
                self.table.file.stats().record_corruption();
                return Err(StorageError::Corruption(format!(
                    "bad data block {} in table f{}",
                    self.next_block - 1,
                    self.table.id()
                )));
            };
            self.current = Some(it);
        } else {
            self.current = None;
        }
        Ok(())
    }

    /// Moves to the next entry. `Ok(false)` = end of table.
    pub fn advance(&mut self) -> StorageResult<bool> {
        if self.primed {
            self.primed = false;
            return Ok(self.current.as_ref().is_some_and(|it| it.valid()));
        }
        loop {
            match &mut self.current {
                None => return Ok(false),
                Some(it) => {
                    if it.advance()? {
                        return Ok(true);
                    }
                    self.current = None;
                    self.load_next_block()?;
                }
            }
        }
    }

    /// Whether the cursor points at an entry.
    pub fn valid(&self) -> bool {
        self.current.as_ref().is_some_and(|it| it.valid())
    }

    /// Current key; valid until the cursor moves.
    pub fn key(&self) -> &[u8] {
        self.current.as_ref().expect("valid cursor").key()
    }

    /// Current value, borrowed from the pinned block.
    pub fn value(&self) -> &[u8] {
        self.current.as_ref().expect("valid cursor").value()
    }

    /// Current sequence number.
    pub fn seqno(&self) -> u64 {
        self.current.as_ref().expect("valid cursor").seqno()
    }

    /// Current entry kind.
    pub fn kind(&self) -> ValueKind {
        self.current.as_ref().expect("valid cursor").kind()
    }

    /// Borrowed view of the current entry.
    pub fn current(&self) -> EntryRef<'_> {
        self.current.as_ref().expect("valid cursor").current()
    }

    /// Next entry in key order, or `None` at the end of the table
    /// (owned convenience wrapper over [`TableIterator::advance`]).
    pub fn next_entry(&mut self) -> StorageResult<Option<BlockEntry>> {
        Ok(if self.advance()? {
            Some(self.current().to_entry())
        } else {
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsmConfig;
    use crate::entry::ValueKind;
    use crate::sstable::builder::TableBuilder;
    use lsm_storage::{DeviceProfile, MemDevice, StorageDevice};

    fn build_table(n: usize, index: IndexKind) -> (Arc<MemDevice>, Arc<Table>) {
        let dev = Arc::new(MemDevice::new(512, DeviceProfile::free()));
        let dev_dyn: Arc<dyn StorageDevice> = dev.clone();
        let cfg = LsmConfig {
            block_size: 512,
            ..LsmConfig::small_for_tests()
        };
        let mut b = TableBuilder::new(dev_dyn, &cfg, 10.0).unwrap();
        for i in 0..n {
            b.add(
                format!("key{i:06}").as_bytes(),
                i as u64,
                if i % 10 == 9 { ValueKind::Delete } else { ValueKind::Put },
                format!("val{i:06}").as_bytes(),
            )
            .unwrap();
        }
        let (file, _meta) = b.finish().unwrap();
        let table = Table::open(file, index).unwrap();
        (dev, table)
    }

    #[test]
    fn get_found_and_absent() {
        let (_dev, t) = build_table(1000, IndexKind::Fence);
        let hit = t.get(b"key000123", None).unwrap();
        let e = hit.entry.unwrap();
        assert_eq!(e.value, b"val000123".to_vec());
        assert_eq!(e.seqno, 123);
        assert_eq!(hit.blocks_examined, 1, "fences read exactly one block");

        let miss = t.get(b"key000123x", None).unwrap();
        assert!(miss.entry.is_none());
        // absent key inside range: either filter pruned or one block read
        assert!(miss.filter_pruned || miss.blocks_examined <= 1);

        let out = t.get(b"zzz", None).unwrap();
        assert!(out.entry.is_none());
        assert_eq!(out.blocks_examined, 0, "out of range costs nothing");
    }

    #[test]
    fn tombstones_are_returned_as_entries() {
        let (_dev, t) = build_table(100, IndexKind::Fence);
        let hit = t.get(b"key000009", None).unwrap();
        assert_eq!(hit.entry.unwrap().kind, ValueKind::Delete);
    }

    #[test]
    fn filter_prunes_absent_keys_without_io() {
        let (dev, t) = build_table(1000, IndexKind::Fence);
        let before = dev.stats().snapshot().category(IoCategory::Data).read_blocks;
        let mut pruned = 0;
        for i in 0..200 {
            let miss = t.get(format!("missing{i:04}xx").as_bytes(), None).unwrap();
            // 'missing...' sorts after 'key...', so it's out of range; use
            // keys inside the range instead
            let _ = miss;
            let probe = format!("key{:06}x", i * 3);
            let r = t.get(probe.as_bytes(), None).unwrap();
            if r.filter_pruned {
                pruned += 1;
            }
        }
        let after = dev.stats().snapshot().category(IoCategory::Data).read_blocks;
        assert!(pruned > 180, "only {pruned} pruned");
        assert!(after - before < 40, "{} data reads", after - before);
    }

    #[test]
    fn all_index_kinds_locate_every_key() {
        for kind in [
            IndexKind::Fence,
            IndexKind::Sparse { rate: 4 },
            IndexKind::Pla { epsilon: 4 },
            IndexKind::RadixSpline {
                radix_bits: 10,
                epsilon: 4,
            },
        ] {
            let (_dev, t) = build_table(800, kind);
            for i in (0..800).step_by(37) {
                let key = format!("key{i:06}");
                let hit = t.get(key.as_bytes(), None).unwrap();
                assert!(
                    hit.entry.is_some(),
                    "{kind:?} lost {key} (examined {})",
                    hit.blocks_examined
                );
            }
        }
    }

    #[test]
    fn learned_index_is_smaller_than_fences() {
        let (_dev, fence_t) = build_table(2000, IndexKind::Fence);
        let (_dev2, pla_t) = build_table(2000, IndexKind::Pla { epsilon: 8 });
        assert!(
            pla_t.index_size_bits() < fence_t.index_size_bits() / 4,
            "pla {} vs fence {}",
            pla_t.index_size_bits(),
            fence_t.index_size_bits()
        );
    }

    #[test]
    fn cache_absorbs_repeat_reads() {
        let (dev, t) = build_table(500, IndexKind::Fence);
        let cache = ShardedCache::new(lsm_cache::CachePolicy::Lru, 1 << 20, 2);
        t.get(b"key000100", Some(&cache)).unwrap();
        let before = dev.stats().snapshot().category(IoCategory::Data).read_blocks;
        for _ in 0..50 {
            t.get(b"key000100", Some(&cache)).unwrap();
        }
        let after = dev.stats().snapshot().category(IoCategory::Data).read_blocks;
        assert_eq!(after, before, "repeat lookups must be cache hits");
        assert!(cache.stats().hits() >= 50);
    }

    #[test]
    fn iterator_scans_in_order() {
        let (_dev, t) = build_table(300, IndexKind::Fence);
        let mut it = t.iter_from(b"key000050", None).unwrap();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        while let Some(e) = it.next_entry().unwrap() {
            if let Some(p) = &prev {
                assert!(e.key > *p, "order violated");
            }
            assert!(e.key.as_slice() >= b"key000050".as_slice());
            prev = Some(e.key.clone());
            count += 1;
        }
        assert_eq!(count, 250);
    }

    #[test]
    fn iterator_from_before_and_past_end() {
        let (_dev, t) = build_table(50, IndexKind::Fence);
        let mut it = t.iter_from(b"", None).unwrap();
        assert_eq!(it.next_entry().unwrap().unwrap().key, b"key000000".to_vec());
        let mut it = t.iter_from(b"zzz", None).unwrap();
        assert!(it.next_entry().unwrap().is_none());
    }

    #[test]
    fn overlaps_checks_key_range() {
        let (_dev, t) = build_table(100, IndexKind::Fence);
        assert!(t.overlaps(b"key000050", b"key000060"));
        assert!(t.overlaps(b"", b"zzz"));
        assert!(!t.overlaps(b"zzz", b"zzzz"));
        assert!(!t.overlaps(b"a", b"b"));
    }

    #[test]
    fn access_counter_increments() {
        let (_dev, t) = build_table(10, IndexKind::Fence);
        assert_eq!(t.accesses(), 0);
        t.get(b"key000001", None).unwrap();
        let _ = t.iter_from(b"", None).unwrap();
        assert_eq!(t.accesses(), 2);
    }

    #[test]
    fn corrupted_data_block_surfaces_as_error_not_wrong_data() {
        let dev: Arc<MemDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
        let dev_dyn: Arc<dyn StorageDevice> = dev.clone();
        let cfg = LsmConfig {
            block_size: 512,
            ..LsmConfig::small_for_tests()
        };
        let mut b = TableBuilder::new(dev_dyn, &cfg, 10.0).unwrap();
        for i in 0..200 {
            b.add(format!("key{i:06}").as_bytes(), i, ValueKind::Put, b"value")
                .unwrap();
        }
        let (file, meta) = b.finish().unwrap();
        // flip one byte inside the first data block, on the device
        let loc = meta.data_blocks[0];
        let mut raw = dev
            .read(file.id(), loc.start_block, loc.num_blocks, IoCategory::Data)
            .unwrap();
        raw[10] ^= 0xFF;
        let id2 = dev.create().unwrap();
        // rebuild a corrupted copy of the whole file
        let total = dev.len_blocks(file.id()).unwrap();
        let mut all = dev.read(file.id(), 0, total, IoCategory::Data).unwrap();
        all[(loc.start_block * 512 + 10) as usize] ^= 0xFF;
        dev.append(id2, &all, IoCategory::Data).unwrap();
        dev.seal(id2).unwrap();
        let corrupt_file = lsm_storage::ImmutableFile::open(dev.clone(), id2).unwrap();
        let table = Table::open(corrupt_file, IndexKind::Fence).unwrap();
        let err = table.get(b"key000000", None);
        assert!(
            matches!(err, Err(lsm_storage::StorageError::Corruption(_))),
            "corruption must surface as an error: {err:?}"
        );
    }

    #[test]
    fn open_rejects_garbage() {
        let dev: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
        let mut w = lsm_storage::WritableFile::create(dev.clone(), IoCategory::Data).unwrap();
        w.append(&vec![0xAB; 1024]).unwrap();
        let f = w.seal().unwrap();
        assert!(Table::open(f, IndexKind::Fence).is_err());
    }
}
