//! Data block encoding: restart-point prefix compression (the
//! LevelDB/RocksDB format) plus an optional in-block hash index
//! (tutorial Module II.4's data-block hash index).
//!
//! Layout:
//!
//! ```text
//! entry*: varint shared_key_len | varint unshared_key_len | varint value_len
//!         | varint seqno | u8 kind | unshared_key_bytes | value_bytes
//! [hash index bytes]
//! restart_offset: u32 * num_restarts
//! num_restarts: u32
//! hash_index_len: u32      (0 = no hash index)
//! checksum: u32            (FNV-1a over everything above)
//! ```

use lsm_index::block_hash::{BlockHashIndex, HashProbe};
use lsm_storage::{StorageError, StorageResult};

use crate::entry::{get_varint, put_varint, ValueKind};

/// Maximum restart ordinal representable in the hash index.
const MAX_HASH_RESTARTS: usize = 250;

/// FNV-1a, truncated to 32 bits — the per-block integrity checksum.
fn block_checksum(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h ^ (h >> 32)) as u32
}

/// One decoded block entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockEntry {
    /// User key.
    pub key: Vec<u8>,
    /// Sequence number.
    pub seqno: u64,
    /// Put or tombstone.
    pub kind: ValueKind,
    /// Value bytes.
    pub value: Vec<u8>,
}

/// Builds one prefix-compressed data block.
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    count_since_restart: usize,
    last_key: Vec<u8>,
    num_entries: usize,
    hash_entries: Vec<(Vec<u8>, u8)>,
    with_hash_index: bool,
}

impl BlockBuilder {
    /// New builder; `restart_interval` entries share each restart point.
    pub fn new(restart_interval: usize, with_hash_index: bool) -> Self {
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            restart_interval: restart_interval.max(1),
            count_since_restart: 0,
            last_key: Vec::new(),
            num_entries: 0,
            hash_entries: Vec::new(),
            with_hash_index,
        }
    }

    /// Appends an entry; keys must arrive in ascending order.
    pub fn add(&mut self, key: &[u8], seqno: u64, kind: ValueKind, value: &[u8]) {
        debug_assert!(
            self.num_entries == 0 || key > self.last_key.as_slice(),
            "keys must be added in strictly ascending order"
        );
        let shared = if self.count_since_restart >= self.restart_interval {
            self.restarts.push(self.buf.len() as u32);
            self.count_since_restart = 0;
            0
        } else {
            key.iter()
                .zip(self.last_key.iter())
                .take_while(|(a, b)| a == b)
                .count()
        };
        put_varint(&mut self.buf, shared as u64);
        put_varint(&mut self.buf, (key.len() - shared) as u64);
        put_varint(&mut self.buf, value.len() as u64);
        put_varint(&mut self.buf, seqno);
        self.buf.push(kind.to_u8());
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        if self.with_hash_index {
            let ordinal = (self.restarts.len() - 1).min(255) as u8;
            self.hash_entries.push((key.to_vec(), ordinal));
        }
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.count_since_restart += 1;
        self.num_entries += 1;
    }

    /// Current encoded size estimate, including the trailer.
    pub fn estimated_size(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 12 + if self.with_hash_index {
            self.hash_entries.len() * 2
        } else {
            0
        }
    }

    /// Number of entries added.
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// Whether nothing was added.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// The last (largest) key added.
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }

    /// Finishes the block, returning its bytes and resetting the builder.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.buf);
        // hash index (skipped when too many restarts for u8 ordinals)
        let hash_bytes = if self.with_hash_index
            && !self.hash_entries.is_empty()
            && self.restarts.len() <= MAX_HASH_RESTARTS
        {
            BlockHashIndex::build(
                self.hash_entries.iter().map(|(k, o)| (k.as_slice(), *o)),
                self.hash_entries.len(),
                0.75,
            )
            .to_bytes()
        } else {
            Vec::new()
        };
        out.extend_from_slice(&hash_bytes);
        for r in &self.restarts {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&(self.restarts.len() as u32).to_le_bytes());
        out.extend_from_slice(&(hash_bytes.len() as u32).to_le_bytes());
        let sum = block_checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        // reset
        self.restarts = vec![0];
        self.count_since_restart = 0;
        self.last_key.clear();
        self.num_entries = 0;
        self.hash_entries.clear();
        out
    }
}

/// Iterates a decoded block. Generic over the backing storage so it can
/// borrow a slice (tests, merges) or own a cached block (table scans).
pub struct BlockIter<D: AsRef<[u8]>> {
    entries_end: usize,
    data: D,
    restarts: Vec<u32>,
    /// Byte range of the serialized hash index (empty = none); probed
    /// zero-copy, so opening an iterator never allocates for it.
    hash_range: std::ops::Range<usize>,
    /// Byte offset of the next entry to decode.
    offset: usize,
    current_key: Vec<u8>,
}

impl<D: AsRef<[u8]>> BlockIter<D> {
    /// Parses a block produced by [`BlockBuilder::finish`].
    pub fn new(data: D) -> Option<Self> {
        let (entries_end, restarts, hash_range) = {
            let d = data.as_ref();
            if d.len() < 16 {
                return None;
            }
            // integrity first: a corrupt block must never decode silently
            let stored = u32::from_le_bytes(d[d.len() - 4..].try_into().ok()?);
            if block_checksum(&d[..d.len() - 4]) != stored {
                return None;
            }
            let d = &d[..d.len() - 4];
            let hash_len = u32::from_le_bytes(d[d.len() - 4..].try_into().ok()?) as usize;
            let n_restarts =
                u32::from_le_bytes(d[d.len() - 8..d.len() - 4].try_into().ok()?) as usize;
            let restarts_off = d.len().checked_sub(8 + n_restarts * 4)?;
            let hash_off = restarts_off.checked_sub(hash_len)?;
            let mut restarts = Vec::with_capacity(n_restarts);
            for i in 0..n_restarts {
                let off = restarts_off + i * 4;
                restarts.push(u32::from_le_bytes(d[off..off + 4].try_into().ok()?));
            }
            (hash_off, restarts, hash_off..hash_off + hash_len)
        };
        Some(BlockIter {
            entries_end,
            data,
            restarts,
            hash_range,
            offset: 0,
            current_key: Vec::new(),
        })
    }

    /// Positions at the first entry.
    pub fn seek_to_first(&mut self) {
        self.offset = 0;
        self.current_key.clear();
    }

    /// Decodes the entry at the current offset and advances. `None` when
    /// the entries are exhausted or the block is corrupt. Use
    /// [`BlockIter::try_next_entry`] where the two must be distinguished.
    pub fn next_entry(&mut self) -> Option<BlockEntry> {
        self.try_next_entry().ok().flatten()
    }

    /// Fallible variant of [`BlockIter::next_entry`]: `Ok(None)` means the
    /// entries are cleanly exhausted, `Err(Corruption)` means the bytes at
    /// the current offset do not decode even though the block's checksum
    /// verified — in-memory corruption after verification, or a writer bug.
    pub fn try_next_entry(&mut self) -> StorageResult<Option<BlockEntry>> {
        if self.offset >= self.entries_end {
            return Ok(None);
        }
        let at = self.offset;
        self.decode_at_offset().map(Some).ok_or_else(|| {
            StorageError::Corruption(format!("undecodable block entry at byte {at}"))
        })
    }

    fn decode_at_offset(&mut self) -> Option<BlockEntry> {
        let d = &self.data.as_ref()[self.offset..self.entries_end];
        let mut at = 0usize;
        let (shared, n) = get_varint(&d[at..])?;
        at += n;
        let (unshared, n) = get_varint(&d[at..])?;
        at += n;
        let (vlen, n) = get_varint(&d[at..])?;
        at += n;
        let (seqno, n) = get_varint(&d[at..])?;
        at += n;
        let kind = ValueKind::from_u8(*d.get(at)?)?;
        at += 1;
        let (shared, unshared, vlen) = (shared as usize, unshared as usize, vlen as usize);
        if shared > self.current_key.len() || at + unshared + vlen > d.len() {
            return None;
        }
        self.current_key.truncate(shared);
        self.current_key.extend_from_slice(&d[at..at + unshared]);
        at += unshared;
        let value = d[at..at + vlen].to_vec();
        at += vlen;
        self.offset += at;
        Some(BlockEntry {
            key: self.current_key.clone(),
            seqno,
            kind,
            value,
        })
    }

    /// Restart-point full key at ordinal `r` (restart entries always have
    /// `shared == 0`).
    fn restart_key(&self, r: usize) -> Option<Vec<u8>> {
        let off = self.restarts[r] as usize;
        let d = &self.data.as_ref()[off..self.entries_end];
        let mut at = 0usize;
        let (_shared, n) = get_varint(&d[at..])?;
        at += n;
        let (unshared, n) = get_varint(&d[at..])?;
        at += n;
        let (_vlen, n) = get_varint(&d[at..])?;
        at += n;
        let (_seq, n) = get_varint(&d[at..])?;
        at += n;
        at += 1; // kind
        let unshared = unshared as usize;
        d.get(at..at + unshared).map(|k| k.to_vec())
    }

    fn seek_to_restart(&mut self, r: usize) {
        self.offset = self.restarts[r] as usize;
        self.current_key.clear();
    }

    /// Positions at the first entry with key ≥ `target`; returns it.
    pub fn seek(&mut self, target: &[u8]) -> Option<BlockEntry> {
        // binary search over restart points: last restart whose key ≤ target
        let (mut lo, mut hi) = (0usize, self.restarts.len());
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            match self.restart_key(mid) {
                Some(k) if k.as_slice() <= target => lo = mid,
                _ => hi = mid,
            }
        }
        self.seek_to_restart(lo);
        while let Some(e) = self.next_entry() {
            if e.key.as_slice() >= target {
                return Some(e);
            }
        }
        None
    }

    /// Point lookup using the hash index when available: O(1) restart
    /// location instead of binary search. Returns `(entry, used_hash)`.
    pub fn get(&mut self, target: &[u8]) -> (Option<BlockEntry>, bool) {
        if !self.hash_range.is_empty() {
            let probe = BlockHashIndex::probe_raw(
                &self.data.as_ref()[self.hash_range.clone()],
                target,
            )
            .unwrap_or(HashProbe::Fallback);
            match probe {
                HashProbe::Absent => return (None, true),
                HashProbe::Restart(r) if (r as usize) < self.restarts.len() => {
                    self.seek_to_restart(r as usize);
                    while let Some(e) = self.next_entry() {
                        if e.key.as_slice() == target {
                            return (Some(e), true);
                        }
                        if e.key.as_slice() > target {
                            return (None, true);
                        }
                    }
                    return (None, true);
                }
                _ => {} // collision or corrupt ordinal: fall back
            }
        }
        match self.seek(target) {
            Some(e) if e.key == target => (Some(e), false),
            _ => (None, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_block(n: usize, interval: usize, hash: bool) -> Vec<u8> {
        let mut b = BlockBuilder::new(interval, hash);
        for i in 0..n {
            let key = format!("key{i:05}");
            let value = format!("value-{i}");
            b.add(key.as_bytes(), i as u64, ValueKind::Put, value.as_bytes());
        }
        b.finish()
    }

    #[test]
    fn roundtrip_all_entries() {
        let data = build_block(100, 16, false);
        let mut it = BlockIter::new(&data).unwrap();
        it.seek_to_first();
        for i in 0..100 {
            let e = it.next_entry().unwrap();
            assert_eq!(e.key, format!("key{i:05}").into_bytes());
            assert_eq!(e.value, format!("value-{i}").into_bytes());
            assert_eq!(e.seqno, i as u64);
            assert_eq!(e.kind, ValueKind::Put);
        }
        assert!(it.next_entry().is_none());
    }

    #[test]
    fn seek_finds_exact_and_successor() {
        let data = build_block(100, 8, false);
        let mut it = BlockIter::new(&data).unwrap();
        let e = it.seek(b"key00050").unwrap();
        assert_eq!(e.key, b"key00050".to_vec());
        let e = it.seek(b"key00050x").unwrap();
        assert_eq!(e.key, b"key00051".to_vec());
        let e = it.seek(b"").unwrap();
        assert_eq!(e.key, b"key00000".to_vec());
        assert!(it.seek(b"zzz").is_none());
    }

    #[test]
    fn seek_then_next_continues() {
        let data = build_block(50, 4, false);
        let mut it = BlockIter::new(&data).unwrap();
        it.seek(b"key00030").unwrap();
        let e = it.next_entry().unwrap();
        assert_eq!(e.key, b"key00031".to_vec());
    }

    #[test]
    fn get_with_hash_index() {
        let data = build_block(100, 8, true);
        let mut it = BlockIter::new(&data).unwrap();
        // every present key must be found; most (all but hash collisions)
        // through the hash path
        let mut hash_hits = 0;
        for i in 0..100 {
            let key = format!("key{i:05}");
            let (e, used_hash) = it.get(key.as_bytes());
            assert_eq!(e.unwrap().value, format!("value-{i}").into_bytes());
            if used_hash {
                hash_hits += 1;
            }
        }
        assert!(hash_hits > 50, "only {hash_hits} hash-path hits");
        let (none, _) = it.get(b"key99999");
        assert!(none.is_none());
    }

    #[test]
    fn get_without_hash_index() {
        let data = build_block(100, 8, false);
        let mut it = BlockIter::new(&data).unwrap();
        let (e, used_hash) = it.get(b"key00042");
        assert_eq!(e.unwrap().value, b"value-42".to_vec());
        assert!(!used_hash);
    }

    #[test]
    fn restart_interval_one_disables_sharing() {
        let data1 = build_block(50, 1, false);
        let data16 = build_block(50, 16, false);
        // interval 1 stores full keys: bigger
        assert!(data1.len() > data16.len());
        // both decode identically, via the fallible path so corruption
        // would surface as a typed error rather than a panic
        let mut a = BlockIter::new(&data1).unwrap();
        let mut b = BlockIter::new(&data16).unwrap();
        loop {
            match (a.try_next_entry().unwrap(), b.try_next_entry().unwrap()) {
                (Some(x), Some(y)) => assert_eq!(x, y),
                (None, None) => break,
                (x, y) => assert_eq!(x, y, "iterators must exhaust together"),
            }
        }
    }

    #[test]
    fn undecodable_entry_is_a_typed_error() {
        // craft a block whose trailer and checksum are valid but whose
        // entry bytes are varint garbage: the whole-block checksum passes,
        // so the corruption must surface at decode time as a typed error
        let mut data = vec![0xFFu8; 8];
        data.extend_from_slice(&0u32.to_le_bytes()); // restart offset
        data.extend_from_slice(&1u32.to_le_bytes()); // num_restarts
        data.extend_from_slice(&0u32.to_le_bytes()); // hash_index_len
        let sum = block_checksum(&data);
        data.extend_from_slice(&sum.to_le_bytes());
        let mut it = BlockIter::new(data.as_slice()).unwrap();
        match it.try_next_entry() {
            Err(StorageError::Corruption(msg)) => assert!(msg.contains("undecodable"), "{msg}"),
            other => panic!("expected Corruption, got {other:?}"),
        }
        // the lossy path maps the same corruption to exhaustion
        it.seek_to_first();
        assert!(it.next_entry().is_none());
    }

    #[test]
    fn tombstones_roundtrip() {
        let mut b = BlockBuilder::new(4, false);
        b.add(b"a", 1, ValueKind::Put, b"v");
        b.add(b"b", 2, ValueKind::Delete, b"");
        let data = b.finish();
        let mut it = BlockIter::new(&data).unwrap();
        it.next_entry().unwrap();
        let t = it.next_entry().unwrap();
        assert_eq!(t.kind, ValueKind::Delete);
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut b = BlockBuilder::new(4, false);
        b.add(b"x", 1, ValueKind::Put, b"1");
        let first = b.finish();
        assert!(b.is_empty());
        b.add(b"a", 2, ValueKind::Put, b"2");
        let second = b.finish();
        let mut it = BlockIter::new(&second).unwrap();
        assert_eq!(it.next_entry().unwrap().key, b"a".to_vec());
        let mut it1 = BlockIter::new(&first).unwrap();
        assert_eq!(it1.next_entry().unwrap().key, b"x".to_vec());
    }

    #[test]
    fn corrupt_blocks_are_rejected_not_panicking() {
        assert!(BlockIter::new(&[]).is_none());
        assert!(BlockIter::new(&[0u8; 4]).is_none());
        let data = build_block(10, 4, false);
        // truncation breaks the checksum
        let mut trunc = data.clone();
        trunc.truncate(data.len() - 1);
        assert!(BlockIter::new(trunc.as_slice()).is_none());
    }

    #[test]
    fn single_bit_flips_are_detected_anywhere() {
        let data = build_block(30, 8, true);
        for pos in (0..data.len()).step_by(37) {
            let mut corrupt = data.clone();
            corrupt[pos] ^= 0x10;
            assert!(
                BlockIter::new(corrupt.as_slice()).is_none(),
                "bit flip at byte {pos} undetected"
            );
        }
    }

    #[test]
    fn estimated_size_tracks_actual() {
        let mut b = BlockBuilder::new(8, false);
        for i in 0..20 {
            b.add(format!("k{i:03}").as_bytes(), i, ValueKind::Put, b"vvvv");
        }
        let est = b.estimated_size();
        let actual = b.finish().len();
        assert!((est as i64 - actual as i64).unsigned_abs() < 32, "{est} vs {actual}");
    }

    #[test]
    fn single_entry_block() {
        let mut b = BlockBuilder::new(16, true);
        b.add(b"only", 7, ValueKind::Put, b"value");
        let data = b.finish();
        let mut it = BlockIter::new(&data).unwrap();
        let (e, _) = it.get(b"only");
        assert_eq!(e.unwrap().seqno, 7);
    }

    #[test]
    fn binary_keys_with_zero_bytes() {
        let mut b = BlockBuilder::new(4, false);
        b.add(&[0, 0, 1], 1, ValueKind::Put, &[0xFF, 0x00]);
        b.add(&[0, 1, 0], 2, ValueKind::Put, &[]);
        let data = b.finish();
        let mut it = BlockIter::new(&data).unwrap();
        let e = it.seek(&[0, 0, 1]).unwrap();
        assert_eq!(e.value, vec![0xFF, 0x00]);
    }
}
