//! Data block encoding: restart-point prefix compression (the
//! LevelDB/RocksDB format) plus an optional in-block hash index
//! (tutorial Module II.4's data-block hash index).
//!
//! Layout:
//!
//! ```text
//! entry*: varint shared_key_len | varint unshared_key_len | varint value_len
//!         | varint seqno | u8 kind | unshared_key_bytes | value_bytes
//! [hash index bytes]
//! restart_offset: u32 * num_restarts
//! num_restarts: u32
//! hash_index_len: u32      (0 = no hash index)
//! checksum: u32            (FNV-1a over everything above)
//! ```
//!
//! Decoding is zero-copy: [`BlockIter`] is a cursor whose `key()`/`value()`
//! accessors borrow from the block bytes (restart-aligned keys directly;
//! prefix-compressed keys from a scratch buffer that is reused across
//! entries and never clones). Owned [`BlockEntry`]s are produced only at
//! API boundaries via [`EntryRef::to_entry`] / [`BlockIter::next_entry`].

use lsm_index::block_hash::{BlockHashIndex, HashProbe};
use lsm_storage::{StorageError, StorageResult};

use crate::entry::{get_varint, put_varint, ValueKind};

/// Maximum restart ordinal representable in the hash index.
const MAX_HASH_RESTARTS: usize = 250;

/// FNV-1a, truncated to 32 bits — the per-block integrity checksum.
fn block_checksum(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h ^ (h >> 32)) as u32
}

/// One decoded block entry (owned). The hot paths work with
/// [`EntryRef`] views instead; this exists for API boundaries that
/// need ownership.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockEntry {
    /// User key.
    pub key: Vec<u8>,
    /// Sequence number.
    pub seqno: u64,
    /// Put or tombstone.
    pub kind: ValueKind,
    /// Value bytes.
    pub value: Vec<u8>,
}

/// Borrowed view of one block entry. `key` and `value` point into the
/// iterator's block (or its scratch buffer) and are valid until the
/// cursor moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryRef<'a> {
    /// User key.
    pub key: &'a [u8],
    /// Sequence number.
    pub seqno: u64,
    /// Put or tombstone.
    pub kind: ValueKind,
    /// Value bytes.
    pub value: &'a [u8],
}

impl EntryRef<'_> {
    /// Copies the view into an owned [`BlockEntry`] — the explicit
    /// allocation point when an entry must outlive the cursor.
    pub fn to_entry(&self) -> BlockEntry {
        BlockEntry {
            key: self.key.to_vec(),
            seqno: self.seqno,
            kind: self.kind,
            value: self.value.to_vec(),
        }
    }
}

/// Keys at most this long rebuild in a fixed inline buffer; the scratch
/// only touches the heap for longer keys.
const KEY_INLINE: usize = 64;

/// Inline-first growable byte buffer for rebuilding prefix-compressed
/// keys. Short keys (the overwhelmingly common case) stay in the inline
/// array, which is what keeps warm point lookups and scans at zero heap
/// allocations.
#[derive(Debug)]
pub(crate) struct KeyBuf {
    inline: [u8; KEY_INLINE],
    ilen: usize,
    heap: Vec<u8>,
    spilled: bool,
}

impl KeyBuf {
    pub(crate) fn new() -> Self {
        KeyBuf {
            inline: [0; KEY_INLINE],
            ilen: 0,
            heap: Vec::new(),
            spilled: false,
        }
    }

    pub(crate) fn clear(&mut self) {
        self.ilen = 0;
        self.heap.clear();
        self.spilled = false;
    }

    pub(crate) fn len(&self) -> usize {
        if self.spilled {
            self.heap.len()
        } else {
            self.ilen
        }
    }

    pub(crate) fn as_slice(&self) -> &[u8] {
        if self.spilled {
            &self.heap
        } else {
            &self.inline[..self.ilen]
        }
    }

    pub(crate) fn truncate(&mut self, n: usize) {
        if self.spilled {
            self.heap.truncate(n);
        } else {
            self.ilen = self.ilen.min(n);
        }
    }

    pub(crate) fn extend_from_slice(&mut self, bytes: &[u8]) {
        if !self.spilled {
            if self.ilen + bytes.len() <= KEY_INLINE {
                self.inline[self.ilen..self.ilen + bytes.len()].copy_from_slice(bytes);
                self.ilen += bytes.len();
                return;
            }
            // spill: move the inline prefix to the heap once, keep growing there
            self.heap.clear();
            self.heap.extend_from_slice(&self.inline[..self.ilen]);
            self.spilled = true;
        }
        self.heap.extend_from_slice(bytes);
    }

    pub(crate) fn set(&mut self, bytes: &[u8]) {
        self.truncate(0);
        self.extend_from_slice(bytes);
    }
}

impl Default for KeyBuf {
    fn default() -> Self {
        KeyBuf::new()
    }
}

/// Builds one prefix-compressed data block.
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    count_since_restart: usize,
    last_key: Vec<u8>,
    num_entries: usize,
    hash_entries: Vec<(Vec<u8>, u8)>,
    with_hash_index: bool,
}

impl BlockBuilder {
    /// New builder; `restart_interval` entries share each restart point.
    pub fn new(restart_interval: usize, with_hash_index: bool) -> Self {
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            restart_interval: restart_interval.max(1),
            count_since_restart: 0,
            last_key: Vec::new(),
            num_entries: 0,
            hash_entries: Vec::new(),
            with_hash_index,
        }
    }

    /// Appends an entry; keys must arrive in ascending order.
    pub fn add(&mut self, key: &[u8], seqno: u64, kind: ValueKind, value: &[u8]) {
        debug_assert!(
            self.num_entries == 0 || key > self.last_key.as_slice(),
            "keys must be added in strictly ascending order"
        );
        let shared = if self.count_since_restart >= self.restart_interval {
            self.restarts.push(self.buf.len() as u32);
            self.count_since_restart = 0;
            0
        } else {
            key.iter()
                .zip(self.last_key.iter())
                .take_while(|(a, b)| a == b)
                .count()
        };
        put_varint(&mut self.buf, shared as u64);
        put_varint(&mut self.buf, (key.len() - shared) as u64);
        put_varint(&mut self.buf, value.len() as u64);
        put_varint(&mut self.buf, seqno);
        self.buf.push(kind.to_u8());
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        if self.with_hash_index {
            let ordinal = (self.restarts.len() - 1).min(255) as u8;
            self.hash_entries.push((key.to_vec(), ordinal));
        }
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.count_since_restart += 1;
        self.num_entries += 1;
    }

    /// Current encoded size estimate, including the trailer.
    pub fn estimated_size(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 12 + if self.with_hash_index {
            self.hash_entries.len() * 2
        } else {
            0
        }
    }

    /// Number of entries added.
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// Whether nothing was added.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// The last (largest) key added.
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }

    /// Finishes the block, returning its bytes and resetting the builder.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.buf);
        // hash index (skipped when too many restarts for u8 ordinals)
        let hash_bytes = if self.with_hash_index
            && !self.hash_entries.is_empty()
            && self.restarts.len() <= MAX_HASH_RESTARTS
        {
            BlockHashIndex::build(
                self.hash_entries.iter().map(|(k, o)| (k.as_slice(), *o)),
                self.hash_entries.len(),
                0.75,
            )
            .to_bytes()
        } else {
            Vec::new()
        };
        out.extend_from_slice(&hash_bytes);
        for r in &self.restarts {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&(self.restarts.len() as u32).to_le_bytes());
        out.extend_from_slice(&(hash_bytes.len() as u32).to_le_bytes());
        let sum = block_checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        // reset
        self.restarts = vec![0];
        self.count_since_restart = 0;
        self.last_key.clear();
        self.num_entries = 0;
        self.hash_entries.clear();
        out
    }
}

/// Where the cursor's current key lives.
#[derive(Clone, Copy, Debug)]
enum KeyLoc {
    /// Borrowed from the block bytes (restart-aligned entry, `shared == 0`).
    Direct { start: usize, len: usize },
    /// Rebuilt in the reusable scratch buffer.
    Scratch,
}

/// Cursor over a decoded block. Generic over the backing storage so it
/// can borrow a slice (tests, merges) or own a cached block (table
/// scans — cloning a [`lsm_storage::Block`] is a refcount bump).
///
/// Opening the cursor allocates nothing: restart offsets are read from
/// the trailer bytes on demand, and the key scratch buffer is inline
/// for keys up to 64 bytes. Use [`BlockIter::advance`]/[`BlockIter::seek`]
/// to position, then `key()`/`value()`/`current()` to view the entry
/// without copying.
pub struct BlockIter<D: AsRef<[u8]>> {
    entries_end: usize,
    data: D,
    /// Byte offset of the restart-offset array in `data`.
    restarts_off: usize,
    num_restarts: usize,
    /// Byte range of the serialized hash index (empty = none); probed
    /// zero-copy, so opening an iterator never allocates for it.
    hash_range: std::ops::Range<usize>,
    /// Byte offset of the next entry to decode.
    offset: usize,
    key_loc: KeyLoc,
    scratch: KeyBuf,
    val_start: usize,
    val_len: usize,
    seqno: u64,
    kind: ValueKind,
    valid: bool,
}

impl<D: AsRef<[u8]>> BlockIter<D> {
    /// Parses a block produced by [`BlockBuilder::finish`].
    pub fn new(data: D) -> Option<Self> {
        let (entries_end, restarts_off, num_restarts, hash_range) = {
            let d = data.as_ref();
            if d.len() < 16 {
                return None;
            }
            // integrity first: a corrupt block must never decode silently
            let stored = u32::from_le_bytes(d[d.len() - 4..].try_into().ok()?);
            if block_checksum(&d[..d.len() - 4]) != stored {
                return None;
            }
            let d = &d[..d.len() - 4];
            let hash_len = u32::from_le_bytes(d[d.len() - 4..].try_into().ok()?) as usize;
            let n_restarts =
                u32::from_le_bytes(d[d.len() - 8..d.len() - 4].try_into().ok()?) as usize;
            let restarts_off = d.len().checked_sub(8 + n_restarts * 4)?;
            let hash_off = restarts_off.checked_sub(hash_len)?;
            (hash_off, restarts_off, n_restarts, hash_off..hash_off + hash_len)
        };
        Some(BlockIter {
            entries_end,
            data,
            restarts_off,
            num_restarts,
            hash_range,
            offset: 0,
            key_loc: KeyLoc::Scratch,
            scratch: KeyBuf::new(),
            val_start: 0,
            val_len: 0,
            seqno: 0,
            kind: ValueKind::Put,
            valid: false,
        })
    }

    /// Positions before the first entry; the next [`BlockIter::advance`]
    /// lands on it.
    pub fn seek_to_first(&mut self) {
        self.offset = 0;
        self.scratch.clear();
        self.key_loc = KeyLoc::Scratch;
        self.valid = false;
    }

    /// Whether the cursor currently points at an entry.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// Current key; valid until the cursor moves.
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid, "key() on an invalid cursor");
        match self.key_loc {
            KeyLoc::Direct { start, len } => &self.data.as_ref()[start..start + len],
            KeyLoc::Scratch => self.scratch.as_slice(),
        }
    }

    /// Current value, borrowed from the block bytes.
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid, "value() on an invalid cursor");
        &self.data.as_ref()[self.val_start..self.val_start + self.val_len]
    }

    /// Current sequence number.
    pub fn seqno(&self) -> u64 {
        debug_assert!(self.valid, "seqno() on an invalid cursor");
        self.seqno
    }

    /// Current entry kind.
    pub fn kind(&self) -> ValueKind {
        debug_assert!(self.valid, "kind() on an invalid cursor");
        self.kind
    }

    /// Borrowed view of the current entry.
    pub fn current(&self) -> EntryRef<'_> {
        EntryRef {
            key: self.key(),
            seqno: self.seqno,
            kind: self.kind,
            value: self.value(),
        }
    }

    /// Moves to the next entry. `Ok(false)` means the entries are cleanly
    /// exhausted (the cursor is no longer valid); `Err(Corruption)` means
    /// the bytes at the current offset do not decode even though the
    /// block's checksum verified — in-memory corruption after
    /// verification, or a writer bug.
    pub fn advance(&mut self) -> StorageResult<bool> {
        if self.offset >= self.entries_end {
            self.valid = false;
            return Ok(false);
        }
        let at = self.offset;
        if self.decode_current().is_none() {
            self.valid = false;
            return Err(StorageError::Corruption(format!(
                "undecodable block entry at byte {at}"
            )));
        }
        Ok(true)
    }

    /// Decodes the entry at `self.offset` into the cursor state. `None`
    /// on malformed bytes.
    fn decode_current(&mut self) -> Option<()> {
        let base = self.offset;
        let d = &self.data.as_ref()[base..self.entries_end];
        let mut at = 0usize;
        let (shared, n) = get_varint(&d[at..])?;
        at += n;
        let (unshared, n) = get_varint(&d[at..])?;
        at += n;
        let (vlen, n) = get_varint(&d[at..])?;
        at += n;
        let (seqno, n) = get_varint(&d[at..])?;
        at += n;
        let kind = ValueKind::from_u8(*d.get(at)?)?;
        at += 1;
        let (shared, unshared, vlen) = (shared as usize, unshared as usize, vlen as usize);
        let cur_key_len = match self.key_loc {
            KeyLoc::Direct { len, .. } => len,
            KeyLoc::Scratch => self.scratch.len(),
        };
        if shared > cur_key_len || at + unshared + vlen > d.len() {
            return None;
        }
        if shared == 0 {
            // restart-aligned: the full key sits in the block — borrow it
            self.key_loc = KeyLoc::Direct {
                start: base + at,
                len: unshared,
            };
        } else {
            if let KeyLoc::Direct { start, .. } = self.key_loc {
                // previous key was borrowed: seed the scratch with its prefix
                self.scratch.truncate(0);
                let prefix = &self.data.as_ref()[start..start + shared];
                self.scratch.extend_from_slice(prefix);
            } else {
                self.scratch.truncate(shared);
            }
            self.scratch.extend_from_slice(&d[at..at + unshared]);
            self.key_loc = KeyLoc::Scratch;
        }
        at += unshared;
        self.val_start = base + at;
        self.val_len = vlen;
        self.seqno = seqno;
        self.kind = kind;
        self.offset = base + at + vlen;
        self.valid = true;
        Some(())
    }

    /// Decodes the entry at the current offset and advances. `None` when
    /// the entries are exhausted or the block is corrupt. Use
    /// [`BlockIter::try_next_entry`] where the two must be distinguished.
    pub fn next_entry(&mut self) -> Option<BlockEntry> {
        self.try_next_entry().ok().flatten()
    }

    /// Owned-entry variant of [`BlockIter::advance`]: `Ok(None)` means the
    /// entries are cleanly exhausted, `Err(Corruption)` means undecodable
    /// bytes.
    pub fn try_next_entry(&mut self) -> StorageResult<Option<BlockEntry>> {
        Ok(if self.advance()? {
            Some(self.current().to_entry())
        } else {
            None
        })
    }

    /// Restart offset at ordinal `r`, read from the trailer on demand.
    fn restart_off(&self, r: usize) -> usize {
        let off = self.restarts_off + r * 4;
        let d = self.data.as_ref();
        u32::from_le_bytes(d[off..off + 4].try_into().unwrap()) as usize
    }

    /// Restart-point full key at ordinal `r`, borrowed from the block
    /// (restart entries always have `shared == 0`).
    fn restart_key(&self, r: usize) -> Option<&[u8]> {
        let off = self.restart_off(r);
        let d = self.data.as_ref().get(off..self.entries_end)?;
        let mut at = 0usize;
        let (_shared, n) = get_varint(&d[at..])?;
        at += n;
        let (unshared, n) = get_varint(&d[at..])?;
        at += n;
        let (_vlen, n) = get_varint(&d[at..])?;
        at += n;
        let (_seq, n) = get_varint(&d[at..])?;
        at += n;
        at += 1; // kind
        d.get(at..at + unshared as usize)
    }

    fn seek_to_restart(&mut self, r: usize) {
        self.offset = self.restart_off(r);
        self.scratch.clear();
        self.key_loc = KeyLoc::Scratch;
        self.valid = false;
    }

    /// Positions at the first entry with key ≥ `target`. Returns whether
    /// such an entry exists; on `true` the cursor is valid and points at
    /// it.
    pub fn seek(&mut self, target: &[u8]) -> StorageResult<bool> {
        if self.num_restarts == 0 {
            self.valid = false;
            return Ok(false);
        }
        // binary search over restart points: last restart whose key ≤ target
        let (mut lo, mut hi) = (0usize, self.num_restarts);
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            match self.restart_key(mid) {
                Some(k) if k <= target => lo = mid,
                _ => hi = mid,
            }
        }
        self.seek_to_restart(lo);
        while self.advance()? {
            if self.key() >= target {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Point lookup using the hash index when available: O(1) restart
    /// location instead of binary search. Returns `(found, used_hash)`;
    /// on `found` the cursor points at the matching entry.
    pub fn get(&mut self, target: &[u8]) -> StorageResult<(bool, bool)> {
        if !self.hash_range.is_empty() {
            let probe = BlockHashIndex::probe_raw(
                &self.data.as_ref()[self.hash_range.clone()],
                target,
            )
            .unwrap_or(HashProbe::Fallback);
            match probe {
                HashProbe::Absent => {
                    self.valid = false;
                    return Ok((false, true));
                }
                HashProbe::Restart(r) if (r as usize) < self.num_restarts => {
                    self.seek_to_restart(r as usize);
                    while self.advance()? {
                        if self.key() == target {
                            return Ok((true, true));
                        }
                        if self.key() > target {
                            self.valid = false;
                            return Ok((false, true));
                        }
                    }
                    return Ok((false, true));
                }
                _ => {} // collision or corrupt ordinal: fall back
            }
        }
        let found = self.seek(target)? && self.key() == target;
        if !found {
            self.valid = false;
        }
        Ok((found, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_block(n: usize, interval: usize, hash: bool) -> Vec<u8> {
        let mut b = BlockBuilder::new(interval, hash);
        for i in 0..n {
            let key = format!("key{i:05}");
            let value = format!("value-{i}");
            b.add(key.as_bytes(), i as u64, ValueKind::Put, value.as_bytes());
        }
        b.finish()
    }

    #[test]
    fn roundtrip_all_entries() {
        let data = build_block(100, 16, false);
        let mut it = BlockIter::new(&data).unwrap();
        it.seek_to_first();
        for i in 0..100 {
            let e = it.next_entry().unwrap();
            assert_eq!(e.key, format!("key{i:05}").into_bytes());
            assert_eq!(e.value, format!("value-{i}").into_bytes());
            assert_eq!(e.seqno, i as u64);
            assert_eq!(e.kind, ValueKind::Put);
        }
        assert!(it.next_entry().is_none());
    }

    #[test]
    fn cursor_roundtrip_matches_owned() {
        let data = build_block(100, 16, true);
        let mut owned = BlockIter::new(&data).unwrap();
        let mut cursor = BlockIter::new(&data).unwrap();
        loop {
            let o = owned.try_next_entry().unwrap();
            let c = cursor.advance().unwrap();
            match (o, c) {
                (Some(e), true) => {
                    assert_eq!(e.key.as_slice(), cursor.key());
                    assert_eq!(e.value.as_slice(), cursor.value());
                    assert_eq!(e.seqno, cursor.seqno());
                    assert_eq!(e.kind, cursor.kind());
                }
                (None, false) => break,
                (o, c) => panic!("owned={o:?} cursor_valid={c}"),
            }
        }
    }

    #[test]
    fn seek_finds_exact_and_successor() {
        let data = build_block(100, 8, false);
        let mut it = BlockIter::new(&data).unwrap();
        assert!(it.seek(b"key00050").unwrap());
        assert_eq!(it.key(), b"key00050");
        assert!(it.seek(b"key00050x").unwrap());
        assert_eq!(it.key(), b"key00051");
        assert!(it.seek(b"").unwrap());
        assert_eq!(it.key(), b"key00000");
        assert!(!it.seek(b"zzz").unwrap());
    }

    #[test]
    fn seek_then_next_continues() {
        let data = build_block(50, 4, false);
        let mut it = BlockIter::new(&data).unwrap();
        assert!(it.seek(b"key00030").unwrap());
        let e = it.next_entry().unwrap();
        assert_eq!(e.key, b"key00031".to_vec());
    }

    #[test]
    fn get_with_hash_index() {
        let data = build_block(100, 8, true);
        let mut it = BlockIter::new(&data).unwrap();
        // every present key must be found; most (all but hash collisions)
        // through the hash path
        let mut hash_hits = 0;
        for i in 0..100 {
            let key = format!("key{i:05}");
            let (found, used_hash) = it.get(key.as_bytes()).unwrap();
            assert!(found);
            assert_eq!(it.value(), format!("value-{i}").as_bytes());
            if used_hash {
                hash_hits += 1;
            }
        }
        assert!(hash_hits > 50, "only {hash_hits} hash-path hits");
        let (found, _) = it.get(b"key99999").unwrap();
        assert!(!found);
    }

    #[test]
    fn get_without_hash_index() {
        let data = build_block(100, 8, false);
        let mut it = BlockIter::new(&data).unwrap();
        let (found, used_hash) = it.get(b"key00042").unwrap();
        assert!(found);
        assert_eq!(it.value(), b"value-42");
        assert!(!used_hash);
    }

    #[test]
    fn restart_interval_one_disables_sharing() {
        let data1 = build_block(50, 1, false);
        let data16 = build_block(50, 16, false);
        // interval 1 stores full keys: bigger
        assert!(data1.len() > data16.len());
        // both decode identically, via the fallible path so corruption
        // would surface as a typed error rather than a panic
        let mut a = BlockIter::new(&data1).unwrap();
        let mut b = BlockIter::new(&data16).unwrap();
        loop {
            match (a.try_next_entry().unwrap(), b.try_next_entry().unwrap()) {
                (Some(x), Some(y)) => assert_eq!(x, y),
                (None, None) => break,
                (x, y) => assert_eq!(x, y, "iterators must exhaust together"),
            }
        }
    }

    #[test]
    fn undecodable_entry_is_a_typed_error() {
        // craft a block whose trailer and checksum are valid but whose
        // entry bytes are varint garbage: the whole-block checksum passes,
        // so the corruption must surface at decode time as a typed error
        let mut data = vec![0xFFu8; 8];
        data.extend_from_slice(&0u32.to_le_bytes()); // restart offset
        data.extend_from_slice(&1u32.to_le_bytes()); // num_restarts
        data.extend_from_slice(&0u32.to_le_bytes()); // hash_index_len
        let sum = block_checksum(&data);
        data.extend_from_slice(&sum.to_le_bytes());
        let mut it = BlockIter::new(data.as_slice()).unwrap();
        match it.try_next_entry() {
            Err(StorageError::Corruption(msg)) => assert!(msg.contains("undecodable"), "{msg}"),
            other => panic!("expected Corruption, got {other:?}"),
        }
        // the lossy path maps the same corruption to exhaustion
        it.seek_to_first();
        assert!(it.next_entry().is_none());
    }

    #[test]
    fn tombstones_roundtrip() {
        let mut b = BlockBuilder::new(4, false);
        b.add(b"a", 1, ValueKind::Put, b"v");
        b.add(b"b", 2, ValueKind::Delete, b"");
        let data = b.finish();
        let mut it = BlockIter::new(&data).unwrap();
        it.next_entry().unwrap();
        let t = it.next_entry().unwrap();
        assert_eq!(t.kind, ValueKind::Delete);
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut b = BlockBuilder::new(4, false);
        b.add(b"x", 1, ValueKind::Put, b"1");
        let first = b.finish();
        assert!(b.is_empty());
        b.add(b"a", 2, ValueKind::Put, b"2");
        let second = b.finish();
        let mut it = BlockIter::new(&second).unwrap();
        assert_eq!(it.next_entry().unwrap().key, b"a".to_vec());
        let mut it1 = BlockIter::new(&first).unwrap();
        assert_eq!(it1.next_entry().unwrap().key, b"x".to_vec());
    }

    #[test]
    fn corrupt_blocks_are_rejected_not_panicking() {
        assert!(BlockIter::new(&[]).is_none());
        assert!(BlockIter::new(&[0u8; 4]).is_none());
        let data = build_block(10, 4, false);
        // truncation breaks the checksum
        let mut trunc = data.clone();
        trunc.truncate(data.len() - 1);
        assert!(BlockIter::new(trunc.as_slice()).is_none());
    }

    #[test]
    fn single_bit_flips_are_detected_anywhere() {
        let data = build_block(30, 8, true);
        for pos in (0..data.len()).step_by(37) {
            let mut corrupt = data.clone();
            corrupt[pos] ^= 0x10;
            assert!(
                BlockIter::new(corrupt.as_slice()).is_none(),
                "bit flip at byte {pos} undetected"
            );
        }
    }

    #[test]
    fn estimated_size_tracks_actual() {
        let mut b = BlockBuilder::new(8, false);
        for i in 0..20 {
            b.add(format!("k{i:03}").as_bytes(), i, ValueKind::Put, b"vvvv");
        }
        let est = b.estimated_size();
        let actual = b.finish().len();
        assert!((est as i64 - actual as i64).unsigned_abs() < 32, "{est} vs {actual}");
    }

    #[test]
    fn single_entry_block() {
        let mut b = BlockBuilder::new(16, true);
        b.add(b"only", 7, ValueKind::Put, b"value");
        let data = b.finish();
        let mut it = BlockIter::new(&data).unwrap();
        let (found, _) = it.get(b"only").unwrap();
        assert!(found);
        assert_eq!(it.seqno(), 7);
    }

    #[test]
    fn binary_keys_with_zero_bytes() {
        let mut b = BlockBuilder::new(4, false);
        b.add(&[0, 0, 1], 1, ValueKind::Put, &[0xFF, 0x00]);
        b.add(&[0, 1, 0], 2, ValueKind::Put, &[]);
        let data = b.finish();
        let mut it = BlockIter::new(&data).unwrap();
        assert!(it.seek(&[0, 0, 1]).unwrap());
        assert_eq!(it.value(), &[0xFF, 0x00]);
    }

    #[test]
    fn long_keys_spill_scratch_to_heap() {
        // keys longer than the inline scratch exercise the heap spill path
        let mut b = BlockBuilder::new(4, false);
        let prefix = "p".repeat(100);
        let mut keys = Vec::new();
        for i in 0..20 {
            keys.push(format!("{prefix}{i:04}"));
        }
        for (i, k) in keys.iter().enumerate() {
            b.add(k.as_bytes(), i as u64, ValueKind::Put, b"v");
        }
        let data = b.finish();
        let mut it = BlockIter::new(&data).unwrap();
        for k in &keys {
            assert!(it.advance().unwrap());
            assert_eq!(it.key(), k.as_bytes());
        }
        assert!(!it.advance().unwrap());
        // and seek still works on long keys
        assert!(it.seek(keys[13].as_bytes()).unwrap());
        assert_eq!(it.key(), keys[13].as_bytes());
    }

    #[test]
    fn keybuf_inline_and_spill() {
        let mut k = KeyBuf::new();
        k.extend_from_slice(b"abc");
        assert_eq!(k.as_slice(), b"abc");
        k.truncate(2);
        assert_eq!(k.as_slice(), b"ab");
        k.extend_from_slice(&[b'x'; 100]);
        assert_eq!(k.len(), 102);
        assert_eq!(&k.as_slice()[..2], b"ab");
        k.truncate(3);
        assert_eq!(&k.as_slice()[..2], b"ab");
        k.set(b"fresh");
        assert_eq!(k.as_slice(), b"fresh");
        k.clear();
        assert_eq!(k.len(), 0);
    }
}
