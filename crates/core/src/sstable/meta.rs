//! Table metadata and footer.
//!
//! The meta section is the table's self-description: key range, entry
//! counts, section locations, and per-data-block locations. The footer is
//! a fixed 24-byte record at the start of the file's final device block
//! pointing at the meta section.

use crate::entry::{get_varint, put_varint};

/// Magic number identifying our SSTable format.
pub const TABLE_MAGIC: u64 = 0x4C534D_5353540A; // "LSM SST\n"

/// Location of one data block: starting device block and device-block count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockLocation {
    /// First device block.
    pub start_block: u64,
    /// Device blocks occupied.
    pub num_blocks: u64,
    /// Exact byte length of the encoded block (excluding padding).
    pub byte_len: u64,
}

/// A section of the file (filter / range filter / index).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Section {
    /// First device block (0 with `byte_len == 0` means absent).
    pub start_block: u64,
    /// Exact byte length (0 = absent).
    pub byte_len: u64,
}

impl Section {
    /// Whether the section exists.
    pub fn is_present(&self) -> bool {
        self.byte_len > 0
    }
}

/// Everything a reader needs to navigate the table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableMeta {
    /// Smallest user key.
    pub min_key: Vec<u8>,
    /// Largest user key.
    pub max_key: Vec<u8>,
    /// Total entries (including tombstones).
    pub num_entries: u64,
    /// Tombstone count (drives delete-aware compaction decisions).
    pub num_tombstones: u64,
    /// Largest sequence number in the table.
    pub max_seqno: u64,
    /// Per-data-block locations, in key order.
    pub data_blocks: Vec<BlockLocation>,
    /// Last user key of each data block (the fence pointers), parallel to
    /// `data_blocks`.
    pub fences: Vec<Vec<u8>>,
    /// Point-filter section.
    pub filter: Section,
    /// Range-filter section.
    pub range_filter: Section,
    /// Byte length of each filter partition within the filter section
    /// (empty = monolithic filter). Partition `i` guards data block `i`;
    /// partitions are laid out back to back from the section start.
    pub filter_partitions: Vec<u32>,
    /// Serialized filter tag this table was built with (one of the
    /// `FILTER_TAG_*` constants; 0 = no point filter). Readers trust this,
    /// not the global config, so tables built under different dynamic
    /// configurations stay readable side by side.
    pub filter_kind_tag: u8,
    /// Filter bits per key the builder used, in milli-bits (×1000).
    /// Purely informational for readers, but lets tooling and the tuner
    /// audit what allocation each table actually carries.
    pub filter_bits_milli: u64,
}

impl TableMeta {
    /// Serializes the meta section.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint(&mut out, self.min_key.len() as u64);
        out.extend_from_slice(&self.min_key);
        put_varint(&mut out, self.max_key.len() as u64);
        out.extend_from_slice(&self.max_key);
        put_varint(&mut out, self.num_entries);
        put_varint(&mut out, self.num_tombstones);
        put_varint(&mut out, self.max_seqno);
        put_varint(&mut out, self.data_blocks.len() as u64);
        for (loc, fence) in self.data_blocks.iter().zip(&self.fences) {
            put_varint(&mut out, loc.start_block);
            put_varint(&mut out, loc.num_blocks);
            put_varint(&mut out, loc.byte_len);
            put_varint(&mut out, fence.len() as u64);
            out.extend_from_slice(fence);
        }
        for s in [self.filter, self.range_filter] {
            put_varint(&mut out, s.start_block);
            put_varint(&mut out, s.byte_len);
        }
        put_varint(&mut out, self.filter_partitions.len() as u64);
        for &len in &self.filter_partitions {
            put_varint(&mut out, len as u64);
        }
        put_varint(&mut out, self.filter_kind_tag as u64);
        put_varint(&mut out, self.filter_bits_milli);
        out
    }

    /// Deserializes [`TableMeta::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut off = 0usize;
        let read_varint = |bytes: &[u8], off: &mut usize| -> Option<u64> {
            let (v, n) = get_varint(bytes.get(*off..)?)?;
            *off += n;
            Some(v)
        };
        let mk_len = read_varint(bytes, &mut off)? as usize;
        let min_key = bytes.get(off..off + mk_len)?.to_vec();
        off += mk_len;
        let xk_len = read_varint(bytes, &mut off)? as usize;
        let max_key = bytes.get(off..off + xk_len)?.to_vec();
        off += xk_len;
        let num_entries = read_varint(bytes, &mut off)?;
        let num_tombstones = read_varint(bytes, &mut off)?;
        let max_seqno = read_varint(bytes, &mut off)?;
        let n_blocks = read_varint(bytes, &mut off)? as usize;
        let mut data_blocks = Vec::with_capacity(n_blocks);
        let mut fences = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let start_block = read_varint(bytes, &mut off)?;
            let num_blocks = read_varint(bytes, &mut off)?;
            let byte_len = read_varint(bytes, &mut off)?;
            let flen = read_varint(bytes, &mut off)? as usize;
            fences.push(bytes.get(off..off + flen)?.to_vec());
            off += flen;
            data_blocks.push(BlockLocation {
                start_block,
                num_blocks,
                byte_len,
            });
        }
        let mut sections = [Section::default(); 2];
        for s in sections.iter_mut() {
            s.start_block = read_varint(bytes, &mut off)?;
            s.byte_len = read_varint(bytes, &mut off)?;
        }
        let n_parts = read_varint(bytes, &mut off)? as usize;
        if n_parts > 1 << 24 {
            return None;
        }
        let mut filter_partitions = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            filter_partitions.push(read_varint(bytes, &mut off)? as u32);
        }
        let filter_kind_tag = u8::try_from(read_varint(bytes, &mut off)?).ok()?;
        let filter_bits_milli = read_varint(bytes, &mut off)?;
        Some(TableMeta {
            min_key,
            max_key,
            num_entries,
            num_tombstones,
            max_seqno,
            data_blocks,
            fences,
            filter: sections[0],
            range_filter: sections[1],
            filter_partitions,
            filter_kind_tag,
            filter_bits_milli,
        })
    }

    /// Whether `key` is within `[min_key, max_key]`.
    pub fn key_in_range(&self, key: &[u8]) -> bool {
        key >= self.min_key.as_slice() && key <= self.max_key.as_slice()
    }
}

/// Fixed footer: `magic | meta_start_block | meta_byte_len`.
pub fn encode_footer(meta_start_block: u64, meta_byte_len: u64) -> [u8; 24] {
    let mut out = [0u8; 24];
    out[0..8].copy_from_slice(&TABLE_MAGIC.to_le_bytes());
    out[8..16].copy_from_slice(&meta_start_block.to_le_bytes());
    out[16..24].copy_from_slice(&meta_byte_len.to_le_bytes());
    out
}

/// Decodes a footer; `None` if the magic does not match.
pub fn decode_footer(bytes: &[u8]) -> Option<(u64, u64)> {
    if bytes.len() < 24 {
        return None;
    }
    let magic = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
    if magic != TABLE_MAGIC {
        return None;
    }
    let start = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let len = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
    Some((start, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableMeta {
        TableMeta {
            min_key: b"aaa".to_vec(),
            max_key: b"zzz".to_vec(),
            num_entries: 1000,
            num_tombstones: 17,
            max_seqno: 424242,
            data_blocks: vec![
                BlockLocation {
                    start_block: 0,
                    num_blocks: 1,
                    byte_len: 4000,
                },
                BlockLocation {
                    start_block: 1,
                    num_blocks: 2,
                    byte_len: 8100,
                },
            ],
            fences: vec![b"mmm".to_vec(), b"zzz".to_vec()],
            filter: Section {
                start_block: 3,
                byte_len: 1234,
            },
            range_filter: Section::default(),
            filter_partitions: vec![600, 634],
            filter_kind_tag: 1,
            filter_bits_milli: 10_500,
        }
    }

    #[test]
    fn meta_roundtrip() {
        let m = sample();
        let back = TableMeta::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn meta_rejects_truncation() {
        let bytes = sample().to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(TableMeta::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn footer_roundtrip() {
        let f = encode_footer(77, 8812);
        assert_eq!(decode_footer(&f), Some((77, 8812)));
    }

    #[test]
    fn footer_rejects_bad_magic() {
        let mut f = encode_footer(1, 2);
        f[0] ^= 0xFF;
        assert_eq!(decode_footer(&f), None);
        assert_eq!(decode_footer(&[0u8; 10]), None);
    }

    #[test]
    fn key_range_check() {
        let m = sample();
        assert!(m.key_in_range(b"aaa"));
        assert!(m.key_in_range(b"mmm"));
        assert!(m.key_in_range(b"zzz"));
        assert!(!m.key_in_range(b"aa"));
        assert!(!m.key_in_range(b"zzzz"));
    }

    #[test]
    fn absent_sections() {
        let m = sample();
        assert!(m.filter.is_present());
        assert!(!m.range_filter.is_present());
    }
}
