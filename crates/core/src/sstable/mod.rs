//! Immutable SSTable format: prefix-compressed data blocks with restart
//! points and optional in-block hash indexes, a filter section, an
//! optional range-filter section, a fence-pointer index section, and a
//! self-describing footer — the file layout every LSM engine variant in
//! the tutorial shares.
//!
//! File layout (all sections start on a device-block boundary):
//!
//! ```text
//! [data block 0][data block 1]…[filter][range filter][index][meta+footer]
//! ```

pub mod block;
pub mod builder;
pub mod meta;
pub mod reader;

pub use block::{BlockBuilder, BlockEntry, BlockIter, EntryRef};
pub use builder::TableBuilder;
pub use meta::TableMeta;
pub use reader::{Table, TableGet, TableIterator, TableProbe};
