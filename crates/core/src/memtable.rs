//! The mutable in-memory write buffer (tutorial Module I.1).
//!
//! Keeps the newest version of each key in a sorted map; a flush drains it
//! into one SSTable. Updates are absorbed in place (the LSM buffer's
//! write-absorption effect), so the flushed run never carries two versions
//! of one key.
//!
//! Optionally runs as a *two-level buffer* (FloDB, EuroSys '17; tutorial
//! Module II.5): a small unsorted hash front absorbs writes in O(1) and
//! spills into the sorted level in batches. The win is skewed updates
//! against a large sorted level — hot keys are overwritten in the cheap
//! hash and (since replacements don't grow the front) may never touch the
//! tree; on unique-key ingest the front is overhead, which the criterion
//! bench shows honestly.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use crate::entry::{InternalEntry, ValueKind};

#[derive(Clone, Debug)]
struct MemValue {
    seqno: u64,
    kind: ValueKind,
    value: Vec<u8>,
}

/// A sorted, size-tracked write buffer with an optional hash front.
#[derive(Clone, Debug, Default)]
pub struct Memtable {
    map: BTreeMap<Vec<u8>, MemValue>,
    /// FloDB-style unsorted front (disabled when `front_budget == 0`).
    front: HashMap<Vec<u8>, MemValue>,
    front_bytes: usize,
    front_budget: usize,
    bytes: usize,
    peak_bytes: usize,
}

impl Memtable {
    /// Empty single-level memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty two-level memtable: writes land in a hash front of
    /// `front_budget` bytes and spill into the sorted level in batches.
    pub fn with_front(front_budget: usize) -> Self {
        Memtable {
            front_budget,
            ..Self::default()
        }
    }

    fn entry_cost(key: &[u8], value: &[u8]) -> usize {
        key.len() + value.len() + 24
    }

    /// Moves every front entry into the sorted level. Keys present in
    /// both levels release the superseded sorted copy's cost.
    fn spill_front(&mut self) {
        for (k, v) in std::mem::take(&mut self.front) {
            let key_len = k.len();
            if let Some(old) = self.map.insert(k, v) {
                let old_cost = key_len + old.value.len() + 24;
                self.bytes = self.bytes.saturating_sub(old_cost);
            }
        }
        self.front_bytes = 0;
    }

    /// Inserts a put or tombstone, replacing any older version.
    pub fn insert(&mut self, key: Vec<u8>, seqno: u64, kind: ValueKind, value: Vec<u8>) {
        self.insert_inner(key, seqno, kind, value);
        self.peak_bytes = self.peak_bytes.max(self.bytes);
    }

    fn insert_inner(&mut self, key: Vec<u8>, seqno: u64, kind: ValueKind, value: Vec<u8>) {
        if self.front_budget > 0 {
            let new_cost = Self::entry_cost(&key, &value);
            let key_len = key.len();
            match self.front.insert(key, MemValue { seqno, kind, value }) {
                Some(old) => {
                    let old_cost = key_len + old.value.len() + 24;
                    self.front_bytes = self.front_bytes + new_cost - old_cost;
                    self.bytes = self.bytes + new_cost - old_cost;
                }
                None => {
                    self.front_bytes += new_cost;
                    self.bytes += new_cost;
                }
            }
            if self.front_bytes >= self.front_budget {
                self.spill_front();
            }
            return;
        }
        let key_len = key.len();
        let new_cost = key_len + value.len() + 24;
        match self.map.insert(key, MemValue { seqno, kind, value }) {
            Some(old) => {
                let old_cost = key_len + old.value.len() + 24;
                self.bytes = self.bytes + new_cost - old_cost;
            }
            None => self.bytes += new_cost,
        }
    }

    /// Current approximate footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// High-water mark of [`Memtable::bytes`] over this memtable's
    /// lifetime (observability gauge; survives `drain_sorted`).
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Number of (latest-version) entries, including tombstones. With a
    /// front active this may double-count keys present in both levels.
    pub fn len(&self) -> usize {
        self.map.len() + self.front.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty() && self.front.is_empty()
    }

    /// Latest version of `key`, if buffered. The hash front is newer than
    /// the sorted level, so it wins.
    pub fn get(&self, key: &[u8]) -> Option<InternalEntry> {
        self.front
            .get(key)
            .or_else(|| self.map.get(key))
            .map(|v| InternalEntry {
                key: key.to_vec(),
                seqno: v.seqno,
                kind: v.kind,
                value: v.value.clone(),
            })
    }

    /// Entries within the bound pair, ascending by key. With a hash front
    /// active, its in-range entries are sorted and merged on the fly
    /// (front entries shadow sorted ones) — the price FloDB pays on scans.
    pub fn range(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> impl Iterator<Item = InternalEntry> + '_ {
        let in_bounds = |k: &[u8]| -> bool {
            (match lo {
                Bound::Included(b) => k >= b,
                Bound::Excluded(b) => k > b,
                Bound::Unbounded => true,
            }) && (match hi {
                Bound::Included(b) => k <= b,
                Bound::Excluded(b) => k < b,
                Bound::Unbounded => true,
            })
        };
        let mut front: Vec<(&Vec<u8>, &MemValue)> = self
            .front
            .iter()
            .filter(|(k, _)| in_bounds(k))
            .collect();
        front.sort_by(|a, b| a.0.cmp(b.0));
        let mut front = front.into_iter().peekable();
        let mut sorted = self.map.range::<[u8], _>((lo, hi)).peekable();
        std::iter::from_fn(move || {
            let take_front = match (front.peek(), sorted.peek()) {
                (Some((fk, _)), Some((sk, _))) => {
                    if fk == sk {
                        sorted.next(); // front shadows the sorted copy
                        true
                    } else {
                        fk < sk
                    }
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            let (k, v) = if take_front {
                front.next().unwrap()
            } else {
                sorted.next().unwrap()
            };
            Some(InternalEntry {
                key: k.clone(),
                seqno: v.seqno,
                kind: v.kind,
                value: v.value.clone(),
            })
        })
    }

    /// Drains into a sorted entry list for flushing; the memtable is empty
    /// afterwards.
    pub fn drain_sorted(&mut self) -> Vec<InternalEntry> {
        if !self.front.is_empty() {
            for (k, v) in std::mem::take(&mut self.front) {
                self.map.insert(k, v);
            }
        }
        self.bytes = 0;
        self.front_bytes = 0;
        std::mem::take(&mut self.map)
            .into_iter()
            .map(|(k, v)| InternalEntry {
                key: k,
                seqno: v.seqno,
                kind: v.kind,
                value: v.value,
            })
            .collect()
    }

    /// Benchmark helper: force-spills the front into the sorted level so
    /// a preloaded two-level memtable starts with an empty front.
    #[doc(hidden)]
    pub fn drain_into_sorted_for_bench(&mut self) {
        self.spill_front();
    }

    /// Smallest and largest buffered keys.
    pub fn key_range(&self) -> Option<(Vec<u8>, Vec<u8>)> {
        let mut first = self.map.keys().next().cloned();
        let mut last = self.map.keys().next_back().cloned();
        for k in self.front.keys() {
            if first.as_ref().is_none_or(|f| k < f) {
                first = Some(k.clone());
            }
            if last.as_ref().is_none_or(|l| k > l) {
                last = Some(k.clone());
            }
        }
        Some((first?, last?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut m = Memtable::new();
        m.insert(b"a".to_vec(), 1, ValueKind::Put, b"1".to_vec());
        let e = m.get(b"a").unwrap();
        assert_eq!(e.value, b"1");
        assert_eq!(e.seqno, 1);
        assert!(m.get(b"b").is_none());
    }

    #[test]
    fn newer_version_replaces() {
        let mut m = Memtable::new();
        m.insert(b"a".to_vec(), 1, ValueKind::Put, b"old".to_vec());
        m.insert(b"a".to_vec(), 2, ValueKind::Put, b"new".to_vec());
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(b"a").unwrap().value, b"new");
        assert_eq!(m.get(b"a").unwrap().seqno, 2);
    }

    #[test]
    fn tombstone_shadows() {
        let mut m = Memtable::new();
        m.insert(b"a".to_vec(), 1, ValueKind::Put, b"v".to_vec());
        m.insert(b"a".to_vec(), 2, ValueKind::Delete, vec![]);
        let e = m.get(b"a").unwrap();
        assert!(e.is_tombstone());
    }

    #[test]
    fn bytes_grow_with_inserts() {
        let mut m = Memtable::new();
        assert_eq!(m.bytes(), 0);
        m.insert(b"key1".to_vec(), 1, ValueKind::Put, vec![0u8; 100]);
        let one = m.bytes();
        assert!(one >= 104);
        m.insert(b"key2".to_vec(), 2, ValueKind::Put, vec![0u8; 100]);
        assert!(m.bytes() > one);
    }

    #[test]
    fn drain_is_sorted_and_empties() {
        let mut m = Memtable::new();
        for k in ["c", "a", "b"] {
            m.insert(k.as_bytes().to_vec(), 1, ValueKind::Put, vec![]);
        }
        let drained = m.drain_sorted();
        assert_eq!(
            drained.iter().map(|e| e.key.clone()).collect::<Vec<_>>(),
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]
        );
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn range_scans() {
        let mut m = Memtable::new();
        for i in 0..10u8 {
            m.insert(vec![i], i as u64, ValueKind::Put, vec![i]);
        }
        let hits: Vec<_> = m
            .range(Bound::Included(&[3][..]), Bound::Excluded(&[7][..]))
            .collect();
        assert_eq!(hits.len(), 4);
        assert_eq!(hits[0].key, vec![3]);
        assert_eq!(hits[3].key, vec![6]);
    }

    #[test]
    fn two_level_front_absorbs_and_spills() {
        let mut m = Memtable::with_front(200);
        for i in 0..20u32 {
            m.insert(format!("k{i:03}").into_bytes(), i as u64, ValueKind::Put, vec![i as u8; 8]);
        }
        // everything readable regardless of which level holds it
        for i in 0..20u32 {
            let e = m.get(format!("k{i:03}").as_bytes()).unwrap();
            assert_eq!(e.value, vec![i as u8; 8]);
        }
        // newer front version shadows an older spilled one
        m.insert(b"k005".to_vec(), 99, ValueKind::Put, b"newest".to_vec());
        assert_eq!(m.get(b"k005").unwrap().value, b"newest".to_vec());
        assert_eq!(m.get(b"k005").unwrap().seqno, 99);
    }

    #[test]
    fn two_level_range_merges_front_and_sorted() {
        let mut m = Memtable::with_front(10_000); // never spills
        // interleave: evens via a pre-spilled path, odds stay in the front
        for i in (0..20u32).step_by(2) {
            m.insert(format!("k{i:03}").into_bytes(), i as u64, ValueKind::Put, vec![]);
        }
        m.drain_sorted(); // reset
        let mut m = Memtable::with_front(10_000);
        for i in 0..20u32 {
            m.insert(format!("k{i:03}").into_bytes(), i as u64, ValueKind::Put, vec![i as u8]);
        }
        let got: Vec<_> = m
            .range(Bound::Included(&b"k003"[..]), Bound::Excluded(&b"k015"[..]))
            .collect();
        assert_eq!(got.len(), 12);
        for (j, e) in got.iter().enumerate() {
            assert_eq!(e.key, format!("k{:03}", j + 3).into_bytes());
        }
    }

    #[test]
    fn two_level_drain_is_complete_and_sorted() {
        let mut m = Memtable::with_front(150);
        for i in (0..30u32).rev() {
            m.insert(format!("k{i:03}").into_bytes(), i as u64, ValueKind::Put, vec![1u8; 4]);
        }
        let drained = m.drain_sorted();
        assert_eq!(drained.len(), 30);
        for w in drained.windows(2) {
            assert!(w[0].key < w[1].key);
        }
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn key_range() {
        let mut m = Memtable::new();
        assert!(m.key_range().is_none());
        m.insert(b"m".to_vec(), 1, ValueKind::Put, vec![]);
        m.insert(b"a".to_vec(), 2, ValueKind::Put, vec![]);
        m.insert(b"z".to_vec(), 3, ValueKind::Put, vec![]);
        assert_eq!(m.key_range(), Some((b"a".to_vec(), b"z".to_vec())));
    }
}
