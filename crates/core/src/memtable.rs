//! The mutable in-memory write buffer (tutorial Module I.1).
//!
//! Backed by a bump-arena skiplist: node metadata lives in one `Vec`,
//! key/value bytes in a single offset-addressed arena, so a put performs
//! **zero per-entry heap allocations** in steady state (the arena and
//! node vector grow geometrically, amortized). Updates append the new
//! value to the arena and repoint the node — the superseded bytes stay
//! until the flush drops the whole arena at once, which is the classic
//! bump-arena trade (RocksDB/LevelDB memtables work the same way).
//! Immutable memtables keep their arena alive until the flush completes;
//! readers borrow value bytes straight out of it via
//! [`Memtable::get_ref`].
//!
//! Optionally runs as a *two-level buffer* (FloDB, EuroSys '17; tutorial
//! Module II.5): a small unsorted hash front absorbs writes in O(1) and
//! spills into the sorted level in batches. The win is skewed updates
//! against a large sorted level — hot keys are overwritten in the cheap
//! hash and (since replacements don't grow the front) may never touch the
//! tree; on unique-key ingest the front is overhead, which the criterion
//! bench shows honestly. The front stores owned buffers (it is opt-in
//! and off by default).

use std::collections::HashMap;
use std::ops::Bound;

use crate::entry::{InternalEntry, ValueKind};

#[derive(Clone, Debug)]
struct MemValue {
    seqno: u64,
    kind: ValueKind,
    value: Vec<u8>,
}

/// Skiplist fanout: p = 1/4, so 12 levels cover ~4^12 entries.
const MAX_HEIGHT: usize = 12;
/// Null link (also "head" when used as a predecessor).
const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    key_off: u32,
    key_len: u32,
    val_off: u32,
    val_len: u32,
    seqno: u64,
    kind: ValueKind,
    next: [u32; MAX_HEIGHT],
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Index-based skiplist over a bump arena. No unsafe: links are `u32`
/// node ids, bytes are `(offset, len)` into the arena `Vec`, so the
/// structure stays valid across reallocation and is trivially `Clone`
/// (snapshots) and `Send`.
#[derive(Clone, Debug)]
struct SkipArena {
    nodes: Vec<Node>,
    head: [u32; MAX_HEIGHT],
    arena: Vec<u8>,
    height: usize,
    /// Deterministic height source: node heights come from a hash of the
    /// insertion counter, so runs are reproducible.
    counter: u64,
}

impl Default for SkipArena {
    fn default() -> Self {
        SkipArena {
            nodes: Vec::new(),
            head: [NIL; MAX_HEIGHT],
            arena: Vec::new(),
            height: 1,
            counter: 0,
        }
    }
}

impl SkipArena {
    fn push_bytes(&mut self, bytes: &[u8]) -> (u32, u32) {
        let off = self.arena.len() as u32;
        self.arena.extend_from_slice(bytes);
        (off, bytes.len() as u32)
    }

    fn bytes_at(&self, off: u32, len: u32) -> &[u8] {
        &self.arena[off as usize..(off + len) as usize]
    }

    fn key_of(&self, id: u32) -> &[u8] {
        let n = &self.nodes[id as usize];
        self.bytes_at(n.key_off, n.key_len)
    }

    fn value_of(&self, id: u32) -> &[u8] {
        let n = &self.nodes[id as usize];
        self.bytes_at(n.val_off, n.val_len)
    }

    fn next_of(&self, pred: u32, level: usize) -> u32 {
        if pred == NIL {
            self.head[level]
        } else {
            self.nodes[pred as usize].next[level]
        }
    }

    fn random_height(&mut self) -> usize {
        self.counter += 1;
        let mut x = splitmix64(self.counter);
        let mut h = 1;
        while h < MAX_HEIGHT && x & 3 == 0 {
            h += 1;
            x >>= 2;
        }
        h
    }

    /// First node with key ≥ `key` (NIL if none), filling `prevs` with
    /// the per-level predecessors (NIL = head).
    fn find(&self, key: &[u8], prevs: &mut [u32; MAX_HEIGHT]) -> u32 {
        let mut pred = NIL;
        let mut level = self.height - 1;
        loop {
            let next = self.next_of(pred, level);
            if next != NIL && self.key_of(next) < key {
                pred = next;
                continue;
            }
            prevs[level] = pred;
            if level == 0 {
                return next;
            }
            level -= 1;
        }
    }

    /// First node with key ≥ `key`, without tracking predecessors.
    fn seek(&self, key: &[u8]) -> u32 {
        let mut pred = NIL;
        let mut level = self.height - 1;
        loop {
            let next = self.next_of(pred, level);
            if next != NIL && self.key_of(next) < key {
                pred = next;
                continue;
            }
            if level == 0 {
                return next;
            }
            level -= 1;
        }
    }

    fn seek_exact(&self, key: &[u8]) -> Option<u32> {
        let id = self.seek(key);
        (id != NIL && self.key_of(id) == key).then_some(id)
    }

    /// Inserts or updates. Returns the replaced value's length on update
    /// (for byte accounting); `None` for a fresh key.
    fn insert(&mut self, key: &[u8], seqno: u64, kind: ValueKind, value: &[u8]) -> Option<u32> {
        let mut prevs = [NIL; MAX_HEIGHT];
        let found = self.find(key, &mut prevs);
        if found != NIL && self.key_of(found) == key {
            // in-place update: bump-append the value, repoint the node
            let (off, len) = self.push_bytes(value);
            let n = &mut self.nodes[found as usize];
            let old_len = n.val_len;
            n.val_off = off;
            n.val_len = len;
            n.seqno = seqno;
            n.kind = kind;
            return Some(old_len);
        }
        let h = self.random_height();
        if h > self.height {
            // prevs above the old height are head links (already NIL)
            self.height = h;
        }
        let (key_off, key_len) = self.push_bytes(key);
        let (val_off, val_len) = self.push_bytes(value);
        let id = self.nodes.len() as u32;
        let mut node = Node {
            key_off,
            key_len,
            val_off,
            val_len,
            seqno,
            kind,
            next: [NIL; MAX_HEIGHT],
        };
        for (level, slot) in node.next.iter_mut().enumerate().take(h) {
            *slot = self.next_of(prevs[level], level);
        }
        self.nodes.push(node);
        for (level, &pred) in prevs.iter().enumerate().take(h) {
            if pred == NIL {
                self.head[level] = id;
            } else {
                self.nodes[pred as usize].next[level] = id;
            }
        }
        None
    }

    fn first(&self) -> u32 {
        self.head[0]
    }

    fn last_key(&self) -> Option<&[u8]> {
        let mut pred = NIL;
        for level in (0..self.height).rev() {
            loop {
                let next = self.next_of(pred, level);
                if next == NIL {
                    break;
                }
                pred = next;
            }
        }
        (pred != NIL).then(|| self.key_of(pred))
    }

    fn reset(&mut self) {
        self.nodes.clear();
        self.arena.clear();
        self.head = [NIL; MAX_HEIGHT];
        self.height = 1;
        self.counter = 0;
    }
}

/// Borrowed view of a buffered entry; `value` points into the memtable
/// arena (or the hash front) and is valid while the memtable is.
#[derive(Clone, Copy, Debug)]
pub struct MemEntryRef<'a> {
    /// Sequence number.
    pub seqno: u64,
    /// Put or tombstone.
    pub kind: ValueKind,
    /// Value bytes.
    pub value: &'a [u8],
}

/// A sorted, size-tracked write buffer with an optional hash front.
#[derive(Clone, Debug, Default)]
pub struct Memtable {
    list: SkipArena,
    /// FloDB-style unsorted front (disabled when `front_budget == 0`).
    front: HashMap<Vec<u8>, MemValue>,
    front_bytes: usize,
    front_budget: usize,
    bytes: usize,
    peak_bytes: usize,
}

impl Memtable {
    /// Empty single-level memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty two-level memtable: writes land in a hash front of
    /// `front_budget` bytes and spill into the sorted level in batches.
    pub fn with_front(front_budget: usize) -> Self {
        Memtable {
            front_budget,
            ..Self::default()
        }
    }

    fn entry_cost(key: &[u8], value: &[u8]) -> usize {
        key.len() + value.len() + 24
    }

    /// Moves every front entry into the sorted level. Keys present in
    /// both levels release the superseded sorted copy's cost.
    fn spill_front(&mut self) {
        for (k, v) in std::mem::take(&mut self.front) {
            if let Some(old_len) = self.list.insert(&k, v.seqno, v.kind, &v.value) {
                let old_cost = k.len() + old_len as usize + 24;
                self.bytes = self.bytes.saturating_sub(old_cost);
            }
        }
        self.front_bytes = 0;
    }

    /// Inserts a put or tombstone, replacing any older version. Takes
    /// slices: the bytes are bump-copied into the arena, so the caller's
    /// buffers can be reused — no per-entry `Vec` churn on the write path.
    pub fn insert(&mut self, key: &[u8], seqno: u64, kind: ValueKind, value: &[u8]) {
        self.insert_inner(key, seqno, kind, value);
        self.peak_bytes = self.peak_bytes.max(self.bytes);
    }

    fn insert_inner(&mut self, key: &[u8], seqno: u64, kind: ValueKind, value: &[u8]) {
        let new_cost = Self::entry_cost(key, value);
        if self.front_budget > 0 {
            match self.front.insert(
                key.to_vec(),
                MemValue {
                    seqno,
                    kind,
                    value: value.to_vec(),
                },
            ) {
                Some(old) => {
                    let old_cost = key.len() + old.value.len() + 24;
                    self.front_bytes = self.front_bytes + new_cost - old_cost;
                    self.bytes = self.bytes + new_cost - old_cost;
                }
                None => {
                    self.front_bytes += new_cost;
                    self.bytes += new_cost;
                }
            }
            if self.front_bytes >= self.front_budget {
                self.spill_front();
            }
            return;
        }
        match self.list.insert(key, seqno, kind, value) {
            Some(old_len) => {
                let old_cost = key.len() + old_len as usize + 24;
                self.bytes = self.bytes + new_cost - old_cost;
            }
            None => self.bytes += new_cost,
        }
    }

    /// Current approximate logical footprint in bytes (latest versions
    /// only; superseded arena bytes are excluded — they are reclaimed
    /// wholesale at flush).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// High-water mark of [`Memtable::bytes`] over this memtable's
    /// lifetime (observability gauge; survives `drain_sorted`).
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Number of (latest-version) entries, including tombstones. With a
    /// front active this may double-count keys present in both levels.
    pub fn len(&self) -> usize {
        self.list.nodes.len() + self.front.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.list.nodes.is_empty() && self.front.is_empty()
    }

    /// Latest version of `key` as a borrowed view — the allocation-free
    /// read path. The hash front is newer than the sorted level, so it
    /// wins.
    pub fn get_ref(&self, key: &[u8]) -> Option<MemEntryRef<'_>> {
        if let Some(v) = self.front.get(key) {
            return Some(MemEntryRef {
                seqno: v.seqno,
                kind: v.kind,
                value: &v.value,
            });
        }
        let id = self.list.seek_exact(key)?;
        let n = &self.list.nodes[id as usize];
        Some(MemEntryRef {
            seqno: n.seqno,
            kind: n.kind,
            value: self.list.value_of(id),
        })
    }

    /// Latest version of `key`, if buffered (owned convenience wrapper).
    pub fn get(&self, key: &[u8]) -> Option<InternalEntry> {
        self.get_ref(key).map(|r| InternalEntry {
            key: key.to_vec(),
            seqno: r.seqno,
            kind: r.kind,
            value: r.value.to_vec(),
        })
    }

    /// Entries within the bound pair, ascending by key. With a hash front
    /// active, its in-range entries are sorted and merged on the fly
    /// (front entries shadow sorted ones) — the price FloDB pays on scans.
    pub fn range<'a>(
        &'a self,
        lo: Bound<&'a [u8]>,
        hi: Bound<&'a [u8]>,
    ) -> impl Iterator<Item = InternalEntry> + 'a {
        let in_bounds = |k: &[u8]| -> bool {
            (match lo {
                Bound::Included(b) => k >= b,
                Bound::Excluded(b) => k > b,
                Bound::Unbounded => true,
            }) && (match hi {
                Bound::Included(b) => k <= b,
                Bound::Excluded(b) => k < b,
                Bound::Unbounded => true,
            })
        };
        let mut front: Vec<(&Vec<u8>, &MemValue)> = self
            .front
            .iter()
            .filter(|(k, _)| in_bounds(k))
            .collect();
        front.sort_by(|a, b| a.0.cmp(b.0));
        let mut front = front.into_iter().peekable();
        // position the sorted cursor at the lower bound
        let mut cur = match lo {
            Bound::Included(b) => self.list.seek(b),
            Bound::Excluded(b) => {
                let mut id = self.list.seek(b);
                if id != NIL && self.list.key_of(id) == b {
                    id = self.list.nodes[id as usize].next[0];
                }
                id
            }
            Bound::Unbounded => self.list.first(),
        };
        let past_hi = move |k: &[u8]| -> bool {
            match hi {
                Bound::Included(b) => k > b,
                Bound::Excluded(b) => k >= b,
                Bound::Unbounded => false,
            }
        };
        std::iter::from_fn(move || {
            let sorted_key = (cur != NIL)
                .then(|| self.list.key_of(cur))
                .filter(|k| !past_hi(k));
            let take_front = match (front.peek(), sorted_key) {
                (Some((fk, _)), Some(sk)) => {
                    if fk.as_slice() == sk {
                        // front shadows the sorted copy
                        cur = self.list.nodes[cur as usize].next[0];
                        true
                    } else {
                        fk.as_slice() < sk
                    }
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            if take_front {
                let (k, v) = front.next().unwrap();
                Some(InternalEntry {
                    key: k.clone(),
                    seqno: v.seqno,
                    kind: v.kind,
                    value: v.value.clone(),
                })
            } else {
                let id = cur;
                cur = self.list.nodes[id as usize].next[0];
                let n = &self.list.nodes[id as usize];
                Some(InternalEntry {
                    key: self.list.key_of(id).to_vec(),
                    seqno: n.seqno,
                    kind: n.kind,
                    value: self.list.value_of(id).to_vec(),
                })
            }
        })
    }

    /// Drains into a sorted entry list for flushing; the memtable is empty
    /// afterwards (the arena is released wholesale).
    pub fn drain_sorted(&mut self) -> Vec<InternalEntry> {
        if !self.front.is_empty() {
            self.spill_front();
        }
        let mut out = Vec::with_capacity(self.list.nodes.len());
        let mut cur = self.list.first();
        while cur != NIL {
            let n = &self.list.nodes[cur as usize];
            out.push(InternalEntry {
                key: self.list.key_of(cur).to_vec(),
                seqno: n.seqno,
                kind: n.kind,
                value: self.list.value_of(cur).to_vec(),
            });
            cur = n.next[0];
        }
        self.list.reset();
        self.bytes = 0;
        self.front_bytes = 0;
        out
    }

    /// Benchmark helper: force-spills the front into the sorted level so
    /// a preloaded two-level memtable starts with an empty front.
    #[doc(hidden)]
    pub fn drain_into_sorted_for_bench(&mut self) {
        self.spill_front();
    }

    /// Smallest and largest buffered keys.
    pub fn key_range(&self) -> Option<(Vec<u8>, Vec<u8>)> {
        let mut first = (self.list.first() != NIL).then(|| self.list.key_of(self.list.first()).to_vec());
        let mut last = self.list.last_key().map(|k| k.to_vec());
        for k in self.front.keys() {
            if first.as_ref().is_none_or(|f| k < f) {
                first = Some(k.clone());
            }
            if last.as_ref().is_none_or(|l| k > l) {
                last = Some(k.clone());
            }
        }
        Some((first?, last?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut m = Memtable::new();
        m.insert(b"a", 1, ValueKind::Put, b"1");
        let e = m.get(b"a").unwrap();
        assert_eq!(e.value, b"1");
        assert_eq!(e.seqno, 1);
        assert!(m.get(b"b").is_none());
    }

    #[test]
    fn newer_version_replaces() {
        let mut m = Memtable::new();
        m.insert(b"a", 1, ValueKind::Put, b"old");
        m.insert(b"a", 2, ValueKind::Put, b"new");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(b"a").unwrap().value, b"new");
        assert_eq!(m.get(b"a").unwrap().seqno, 2);
    }

    #[test]
    fn tombstone_shadows() {
        let mut m = Memtable::new();
        m.insert(b"a", 1, ValueKind::Put, b"v");
        m.insert(b"a", 2, ValueKind::Delete, b"");
        let e = m.get(b"a").unwrap();
        assert!(e.is_tombstone());
    }

    #[test]
    fn bytes_grow_with_inserts() {
        let mut m = Memtable::new();
        assert_eq!(m.bytes(), 0);
        m.insert(b"key1", 1, ValueKind::Put, &[0u8; 100]);
        let one = m.bytes();
        assert!(one >= 104);
        m.insert(b"key2", 2, ValueKind::Put, &[0u8; 100]);
        assert!(m.bytes() > one);
    }

    #[test]
    fn replacement_does_not_grow_logical_bytes() {
        let mut m = Memtable::new();
        m.insert(b"k", 1, ValueKind::Put, &[0u8; 64]);
        let one = m.bytes();
        for s in 2..50u64 {
            m.insert(b"k", s, ValueKind::Put, &[1u8; 64]);
        }
        assert_eq!(m.bytes(), one, "in-place update must not grow logical bytes");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(b"k").unwrap().seqno, 49);
    }

    #[test]
    fn get_ref_borrows_latest_value() {
        let mut m = Memtable::new();
        m.insert(b"a", 1, ValueKind::Put, b"first");
        m.insert(b"a", 2, ValueKind::Put, b"second");
        let r = m.get_ref(b"a").unwrap();
        assert_eq!(r.value, b"second");
        assert_eq!(r.seqno, 2);
        assert!(m.get_ref(b"zz").is_none());
    }

    #[test]
    fn drain_is_sorted_and_empties() {
        let mut m = Memtable::new();
        for k in ["c", "a", "b"] {
            m.insert(k.as_bytes(), 1, ValueKind::Put, b"");
        }
        let drained = m.drain_sorted();
        assert_eq!(
            drained.iter().map(|e| e.key.clone()).collect::<Vec<_>>(),
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]
        );
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn large_random_order_insert_drains_sorted() {
        let mut m = Memtable::new();
        // deterministic pseudo-shuffle over 4000 keys
        for i in 0..4000u64 {
            let k = (i * 2654435761) % 4000;
            m.insert(format!("key{k:06}").as_bytes(), i, ValueKind::Put, format!("v{k}").as_bytes());
        }
        assert_eq!(m.len(), 4000);
        let drained = m.drain_sorted();
        assert_eq!(drained.len(), 4000);
        for w in drained.windows(2) {
            assert!(w[0].key < w[1].key, "drain must be strictly sorted");
        }
    }

    #[test]
    fn range_scans() {
        let mut m = Memtable::new();
        for i in 0..10u8 {
            m.insert(&[i], i as u64, ValueKind::Put, &[i]);
        }
        let hits: Vec<_> = m
            .range(Bound::Included(&[3][..]), Bound::Excluded(&[7][..]))
            .collect();
        assert_eq!(hits.len(), 4);
        assert_eq!(hits[0].key, vec![3]);
        assert_eq!(hits[3].key, vec![6]);
    }

    #[test]
    fn range_excluded_lower_bound() {
        let mut m = Memtable::new();
        for i in 0..5u8 {
            m.insert(&[i], i as u64, ValueKind::Put, &[]);
        }
        let hits: Vec<_> = m
            .range(Bound::Excluded(&[1][..]), Bound::Included(&[3][..]))
            .collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].key, vec![2]);
        assert_eq!(hits[1].key, vec![3]);
    }

    #[test]
    fn two_level_front_absorbs_and_spills() {
        let mut m = Memtable::with_front(200);
        for i in 0..20u32 {
            m.insert(format!("k{i:03}").as_bytes(), i as u64, ValueKind::Put, &vec![i as u8; 8]);
        }
        // everything readable regardless of which level holds it
        for i in 0..20u32 {
            let e = m.get(format!("k{i:03}").as_bytes()).unwrap();
            assert_eq!(e.value, vec![i as u8; 8]);
        }
        // newer front version shadows an older spilled one
        m.insert(b"k005", 99, ValueKind::Put, b"newest");
        assert_eq!(m.get(b"k005").unwrap().value, b"newest".to_vec());
        assert_eq!(m.get(b"k005").unwrap().seqno, 99);
    }

    #[test]
    fn two_level_range_merges_front_and_sorted() {
        let mut m = Memtable::with_front(10_000); // never spills
        // interleave: evens via a pre-spilled path, odds stay in the front
        for i in (0..20u32).step_by(2) {
            m.insert(format!("k{i:03}").as_bytes(), i as u64, ValueKind::Put, b"");
        }
        m.drain_sorted(); // reset
        let mut m = Memtable::with_front(10_000);
        for i in 0..20u32 {
            m.insert(format!("k{i:03}").as_bytes(), i as u64, ValueKind::Put, &[i as u8]);
        }
        let got: Vec<_> = m
            .range(Bound::Included(&b"k003"[..]), Bound::Excluded(&b"k015"[..]))
            .collect();
        assert_eq!(got.len(), 12);
        for (j, e) in got.iter().enumerate() {
            assert_eq!(e.key, format!("k{:03}", j + 3).into_bytes());
        }
    }

    #[test]
    fn two_level_drain_is_complete_and_sorted() {
        let mut m = Memtable::with_front(150);
        for i in (0..30u32).rev() {
            m.insert(format!("k{i:03}").as_bytes(), i as u64, ValueKind::Put, &[1u8; 4]);
        }
        let drained = m.drain_sorted();
        assert_eq!(drained.len(), 30);
        for w in drained.windows(2) {
            assert!(w[0].key < w[1].key);
        }
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn key_range() {
        let mut m = Memtable::new();
        assert!(m.key_range().is_none());
        m.insert(b"m", 1, ValueKind::Put, b"");
        m.insert(b"a", 2, ValueKind::Put, b"");
        m.insert(b"z", 3, ValueKind::Put, b"");
        assert_eq!(m.key_range(), Some((b"a".to_vec(), b"z".to_vec())));
    }

    #[test]
    fn clone_snapshots_are_independent() {
        let mut m = Memtable::new();
        m.insert(b"a", 1, ValueKind::Put, b"1");
        let snap = m.clone();
        m.insert(b"a", 2, ValueKind::Put, b"2");
        m.insert(b"b", 3, ValueKind::Put, b"3");
        assert_eq!(snap.get(b"a").unwrap().value, b"1");
        assert!(snap.get(b"b").is_none());
        assert_eq!(m.get(b"a").unwrap().value, b"2");
    }
}
