//! Online-retunable configuration overlay.
//!
//! [`LsmConfig`] is immutable for the lifetime of a [`crate::Db`]; the
//! self-tuner (crate `lsm-tuner`) needs to steer a handful of knobs on a
//! *running* engine without reopening it. [`DynamicConfig`] is that
//! surface: a lock-free overlay of atomically-stored overrides consulted
//! at the decision points that can safely change mid-flight —
//!
//! - **filter memory** (`bits_per_key`, uniform vs Monkey allocation):
//!   picked up by the *next* table build, so new tables carry the new
//!   budget while old tables stay readable (each table records its own
//!   filter parameters in its footer);
//! - **merge policy and size ratio** (`layout`, `size_ratio`): picked up
//!   by the *next* compaction-planning pass — the shape of existing data
//!   is never rewritten eagerly, the picker simply starts enforcing the
//!   new invariant;
//! - **L0 backpressure thresholds** (`l0_slowdown_runs`,
//!   `l0_stall_runs`): read by the write path on every write, derived
//!   from the model instead of fixed config.
//!
//! Every field uses `0` (or tag `0`) as "no override: fall through to
//! the boot-time [`LsmConfig`]", so a freshly-opened engine behaves
//! byte-identically to one without the overlay. Updates are validated
//! against the merged effective config before being published, and bump
//! a generation counter so observers can cheaply detect change.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use crate::config::{FilterAllocation, LsmConfig, MergeLayout};

/// A requested change to the dynamic overlay. `None` fields leave the
/// current override untouched; `Some` fields replace it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DynamicUpdate {
    /// New total filter budget in bits per key.
    pub bits_per_key: Option<f64>,
    /// New filter-memory allocation strategy.
    pub filter_allocation: Option<FilterAllocation>,
    /// New merge layout. Only the uniform layouts (`Leveled`, `Tiered`,
    /// `LazyLeveled`) can be staged dynamically; `Hybrid` is boot-only.
    pub layout: Option<MergeLayout>,
    /// New size ratio between adjacent levels.
    pub size_ratio: Option<usize>,
    /// New L0 slowdown threshold (runs).
    pub l0_slowdown_runs: Option<usize>,
    /// New L0 stall threshold (runs).
    pub l0_stall_runs: Option<usize>,
}

impl DynamicUpdate {
    /// Whether the update changes nothing.
    pub fn is_empty(&self) -> bool {
        *self == DynamicUpdate::default()
    }
}

/// Point-in-time view of the overlay, with `None` for unset overrides.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DynamicSnapshot {
    /// Filter budget override, bits per key.
    pub bits_per_key: Option<f64>,
    /// Filter-allocation override.
    pub filter_allocation: Option<FilterAllocation>,
    /// Merge-layout override.
    pub layout: Option<MergeLayout>,
    /// Size-ratio override.
    pub size_ratio: Option<usize>,
    /// L0 slowdown-threshold override.
    pub l0_slowdown_runs: Option<usize>,
    /// L0 stall-threshold override.
    pub l0_stall_runs: Option<usize>,
    /// How many updates have been published since open.
    pub generation: u64,
}

const ALLOC_UNIFORM: u8 = 1;
const ALLOC_MONKEY: u8 = 2;
const LAYOUT_LEVELED: u8 = 1;
const LAYOUT_TIERED: u8 = 2;
const LAYOUT_LAZY: u8 = 3;

/// Lock-free override overlay; see the module docs. All loads are
/// `Acquire` and stores `Release`: each knob is independently coherent,
/// which is all the consumers need (a table build or plan pass reads
/// each knob once).
#[derive(Debug, Default)]
pub struct DynamicConfig {
    /// Filter budget ×1000; 0 = unset.
    bits_per_key_milli: AtomicU64,
    /// 0 = unset, 1 = uniform, 2 = monkey.
    filter_allocation: AtomicU8,
    /// 0 = unset, 1 = leveled, 2 = tiered, 3 = lazy-leveled.
    layout: AtomicU8,
    /// 0 = unset.
    size_ratio: AtomicUsize,
    /// 0 = unset.
    l0_slowdown_runs: AtomicUsize,
    /// 0 = unset.
    l0_stall_runs: AtomicUsize,
    /// Published updates since open.
    generation: AtomicU64,
}

impl DynamicConfig {
    /// Fresh overlay with nothing overridden.
    pub fn new() -> Self {
        DynamicConfig::default()
    }

    /// Filter budget override, if set.
    pub fn bits_per_key(&self) -> Option<f64> {
        match self.bits_per_key_milli.load(Ordering::Acquire) {
            0 => None,
            m => Some(m as f64 / 1000.0),
        }
    }

    /// Filter-allocation override, if set.
    pub fn filter_allocation(&self) -> Option<FilterAllocation> {
        match self.filter_allocation.load(Ordering::Acquire) {
            ALLOC_UNIFORM => Some(FilterAllocation::Uniform),
            ALLOC_MONKEY => Some(FilterAllocation::Monkey),
            _ => None,
        }
    }

    /// Merge-layout override, if set.
    pub fn layout(&self) -> Option<MergeLayout> {
        match self.layout.load(Ordering::Acquire) {
            LAYOUT_LEVELED => Some(MergeLayout::Leveled),
            LAYOUT_TIERED => Some(MergeLayout::Tiered),
            LAYOUT_LAZY => Some(MergeLayout::LazyLeveled),
            _ => None,
        }
    }

    /// Size-ratio override, if set.
    pub fn size_ratio(&self) -> Option<usize> {
        match self.size_ratio.load(Ordering::Acquire) {
            0 => None,
            t => Some(t),
        }
    }

    /// L0 slowdown/stall thresholds override, if set (read together on
    /// the write path).
    pub fn l0_thresholds(&self) -> (Option<usize>, Option<usize>) {
        let slow = self.l0_slowdown_runs.load(Ordering::Acquire);
        let stall = self.l0_stall_runs.load(Ordering::Acquire);
        (
            (slow != 0).then_some(slow),
            (stall != 0).then_some(stall),
        )
    }

    /// Published updates since open.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Current overrides as a plain snapshot.
    pub fn snapshot(&self) -> DynamicSnapshot {
        let (slow, stall) = self.l0_thresholds();
        DynamicSnapshot {
            bits_per_key: self.bits_per_key(),
            filter_allocation: self.filter_allocation(),
            layout: self.layout(),
            size_ratio: self.size_ratio(),
            l0_slowdown_runs: slow,
            l0_stall_runs: stall,
            generation: self.generation(),
        }
    }

    /// The boot config with every set override applied — what the
    /// compaction planner and table builders actually run under.
    pub fn effective(&self, base: &LsmConfig) -> LsmConfig {
        let mut cfg = base.clone();
        self.apply_to(&mut cfg);
        cfg
    }

    fn apply_to(&self, cfg: &mut LsmConfig) {
        if let Some(b) = self.bits_per_key() {
            cfg.bits_per_key = b;
        }
        if let Some(a) = self.filter_allocation() {
            cfg.filter_allocation = a;
        }
        if let Some(l) = self.layout() {
            cfg.layout = l;
        }
        if let Some(t) = self.size_ratio() {
            cfg.size_ratio = t;
        }
        let (slow, stall) = self.l0_thresholds();
        if let Some(s) = slow {
            cfg.l0_slowdown_runs = s;
        }
        if let Some(s) = stall {
            cfg.l0_stall_runs = s;
        }
    }

    /// Validates `update` against `base` merged with the current
    /// overrides, then publishes it. Errors leave the overlay untouched.
    pub fn apply(&self, base: &LsmConfig, update: &DynamicUpdate) -> Result<(), String> {
        if let Some(b) = update.bits_per_key {
            if !(b.is_finite() && (0.0..=64.0).contains(&b)) {
                return Err(format!("dynamic bits_per_key {b} out of range 0..=64"));
            }
        }
        if let Some(MergeLayout::Hybrid(_)) = update.layout {
            return Err("hybrid layout cannot be set dynamically".into());
        }
        // Validate the would-be effective config before publishing.
        let mut cfg = self.effective(base);
        if let Some(b) = update.bits_per_key {
            cfg.bits_per_key = b;
        }
        if let Some(a) = update.filter_allocation {
            cfg.filter_allocation = a;
        }
        if let Some(l) = &update.layout {
            cfg.layout = l.clone();
        }
        if let Some(t) = update.size_ratio {
            cfg.size_ratio = t;
        }
        if let Some(s) = update.l0_slowdown_runs {
            cfg.l0_slowdown_runs = s;
        }
        if let Some(s) = update.l0_stall_runs {
            cfg.l0_stall_runs = s;
        }
        cfg.validate()?;
        // Publish, knob by knob. Concurrent plan passes may observe a
        // partially-applied update; each knob is individually valid and
        // the next pass sees the full set.
        if let Some(b) = update.bits_per_key {
            let milli = ((b * 1000.0).round() as u64).max(1);
            self.bits_per_key_milli.store(milli, Ordering::Release);
        }
        if let Some(a) = update.filter_allocation {
            let tag = match a {
                FilterAllocation::Uniform => ALLOC_UNIFORM,
                FilterAllocation::Monkey => ALLOC_MONKEY,
            };
            self.filter_allocation.store(tag, Ordering::Release);
        }
        if let Some(l) = &update.layout {
            let tag = match l {
                MergeLayout::Leveled => LAYOUT_LEVELED,
                MergeLayout::Tiered => LAYOUT_TIERED,
                MergeLayout::LazyLeveled => LAYOUT_LAZY,
                MergeLayout::Hybrid(_) => unreachable!("rejected above"),
            };
            self.layout.store(tag, Ordering::Release);
        }
        if let Some(t) = update.size_ratio {
            self.size_ratio.store(t, Ordering::Release);
        }
        if let Some(s) = update.l0_slowdown_runs {
            self.l0_slowdown_runs.store(s, Ordering::Release);
        }
        if let Some(s) = update.l0_stall_runs {
            self.l0_stall_runs.store(s, Ordering::Release);
        }
        self.generation.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_overlay_is_identity() {
        let d = DynamicConfig::new();
        let base = LsmConfig::small_for_tests();
        assert_eq!(d.effective(&base), base);
        assert_eq!(d.generation(), 0);
        assert_eq!(d.snapshot(), DynamicSnapshot::default());
    }

    #[test]
    fn overrides_apply_and_stack() {
        let d = DynamicConfig::new();
        let base = LsmConfig::small_for_tests();
        d.apply(
            &base,
            &DynamicUpdate {
                bits_per_key: Some(14.5),
                layout: Some(MergeLayout::LazyLeveled),
                ..Default::default()
            },
        )
        .unwrap();
        d.apply(
            &base,
            &DynamicUpdate {
                size_ratio: Some(6),
                filter_allocation: Some(FilterAllocation::Monkey),
                ..Default::default()
            },
        )
        .unwrap();
        let eff = d.effective(&base);
        assert_eq!(eff.bits_per_key, 14.5);
        assert_eq!(eff.layout, MergeLayout::LazyLeveled);
        assert_eq!(eff.size_ratio, 6);
        assert_eq!(eff.filter_allocation, FilterAllocation::Monkey);
        // untouched knobs fall through
        assert_eq!(eff.buffer_bytes, base.buffer_bytes);
        assert_eq!(d.generation(), 2);
    }

    #[test]
    fn invalid_updates_rejected_and_leave_overlay_untouched() {
        let d = DynamicConfig::new();
        let base = LsmConfig::small_for_tests();
        assert!(d
            .apply(
                &base,
                &DynamicUpdate {
                    size_ratio: Some(1),
                    ..Default::default()
                }
            )
            .is_err());
        assert!(d
            .apply(
                &base,
                &DynamicUpdate {
                    bits_per_key: Some(-1.0),
                    ..Default::default()
                }
            )
            .is_err());
        assert!(d
            .apply(
                &base,
                &DynamicUpdate {
                    layout: Some(MergeLayout::Hybrid(vec![2])),
                    ..Default::default()
                }
            )
            .is_err());
        // stall below slowdown violates validate() on the merged config
        assert!(d
            .apply(
                &base,
                &DynamicUpdate {
                    l0_slowdown_runs: Some(10),
                    l0_stall_runs: Some(4),
                    ..Default::default()
                }
            )
            .is_err());
        assert_eq!(d.generation(), 0);
        assert_eq!(d.effective(&base), base);
    }

    #[test]
    fn threshold_updates_respect_threaded_invariant() {
        let d = DynamicConfig::new();
        let base = LsmConfig {
            background: crate::config::BackgroundMode::Threaded,
            ..LsmConfig::small_for_tests()
        };
        // stall at the L0 run cap would wedge writers in threaded mode
        assert!(d
            .apply(
                &base,
                &DynamicUpdate {
                    l0_slowdown_runs: Some(1),
                    l0_stall_runs: Some(base.l0_run_cap),
                    ..Default::default()
                }
            )
            .is_err());
        assert!(d
            .apply(
                &base,
                &DynamicUpdate {
                    l0_slowdown_runs: Some(base.l0_run_cap + 2),
                    l0_stall_runs: Some(base.l0_run_cap + 4),
                    ..Default::default()
                }
            )
            .is_ok());
    }
}
