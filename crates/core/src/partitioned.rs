//! Key-space partitioning (tutorial Module I.2: "for better load
//! balancing, some LSM engines partition the key space and store the
//! partitions in separate trees" — LHAM, Nova-LSM, PebblesDB).
//!
//! A [`PartitionedDb`] splits the key space into contiguous ranges, each
//! served by its own independent [`Db`]. Every tree is a fraction of the
//! size, so its levels are shallower and its compactions proportionally
//! smaller — which is precisely the stall-smoothing effect experiment E18
//! measures. Scans stitch the partitions back together in key order.

use std::ops::Range;
use std::sync::Arc;

use lsm_storage::{DeviceProfile, MemDevice, StorageDevice, StorageResult};

use crate::config::LsmConfig;
use crate::db::Db;
use crate::stats::DbStatsSnapshot;

/// A range-partitioned collection of LSM trees.
pub struct PartitionedDb {
    /// Exclusive upper bound of each partition except the last (which is
    /// unbounded); ascending. `partitions.len() == bounds.len() + 1`.
    bounds: Vec<Vec<u8>>,
    partitions: Vec<Db>,
}

impl PartitionedDb {
    /// Opens one in-memory tree per partition, split at `bounds`
    /// (ascending, distinct). With `bounds = [m]`, keys `< m` go to
    /// partition 0 and keys `≥ m` to partition 1.
    pub fn open_in_memory(cfg: LsmConfig, bounds: Vec<Vec<u8>>) -> StorageResult<Self> {
        Self::open_simulated(cfg, bounds, DeviceProfile::free())
    }

    /// Like [`PartitionedDb::open_in_memory`] with a device latency
    /// profile per partition (each partition simulates its own device,
    /// like the per-component disaggregation of Nova-LSM).
    pub fn open_simulated(
        cfg: LsmConfig,
        bounds: Vec<Vec<u8>>,
        profile: DeviceProfile,
    ) -> StorageResult<Self> {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let partitions = (0..=bounds.len())
            .map(|_| {
                let device: Arc<dyn StorageDevice> =
                    Arc::new(MemDevice::new(cfg.block_size, profile));
                Db::open(device, cfg.clone())
            })
            .collect::<StorageResult<Vec<_>>>()?;
        Ok(PartitionedDb { bounds, partitions })
    }

    /// Sum of all partitions' simulated clocks; one operation only
    /// advances its own partition, so deltas of this sum measure per-op
    /// simulated latency.
    pub fn sim_now_total_ns(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.device().latency().clock().now_ns())
            .sum()
    }

    /// Evenly splits a `user{id:012}` key space of `n` ids into `k`
    /// partitions (the encoding of `lsm_workload::encode_key`).
    pub fn open_uniform(cfg: LsmConfig, n: u64, k: usize) -> StorageResult<Self> {
        let k = k.max(1);
        let bounds = (1..k)
            .map(|i| format!("user{:012}", n * i as u64 / k as u64).into_bytes())
            .collect();
        Self::open_in_memory(cfg, bounds)
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition serving `key`.
    pub fn partition_of(&self, key: &[u8]) -> &Db {
        let idx = self.bounds.partition_point(|b| b.as_slice() <= key);
        &self.partitions[idx]
    }

    /// Inserts or updates a key.
    pub fn put(&self, key: Vec<u8>, value: Vec<u8>) -> StorageResult<()> {
        self.partition_of(&key).put(key, value)
    }

    /// Deletes a key.
    pub fn delete(&self, key: Vec<u8>) -> StorageResult<()> {
        self.partition_of(&key).delete(key)
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        self.partition_of(key).get(key)
    }

    /// Range scan across partitions, stitched in key order.
    pub fn scan(
        &self,
        range: Range<Vec<u8>>,
        limit: usize,
    ) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        if range.start >= range.end {
            return Ok(Vec::new());
        }
        let first = self.bounds.partition_point(|b| b.as_slice() <= range.start.as_slice());
        let mut out = Vec::new();
        for idx in first..self.partitions.len() {
            // stop once the partition starts at or past the range end
            if idx > first {
                if let Some(lower) = self.bounds.get(idx - 1) {
                    if lower.as_slice() >= range.end.as_slice() {
                        break;
                    }
                }
            }
            let remaining = limit - out.len();
            if remaining == 0 {
                break;
            }
            let part = self
                .partitions[idx]
                .scan(range.start.clone()..range.end.clone(), remaining)?;
            out.extend(part);
        }
        Ok(out)
    }

    /// Sum of the partitions' engine counters.
    pub fn stats(&self) -> DbStatsSnapshot {
        let mut total = DbStatsSnapshot::default();
        for p in &self.partitions {
            let s = p.stats().snapshot();
            // delta_since(default) is the identity; add field-wise via the
            // snapshot's own arithmetic
            total = add_snapshots(&total, &s);
        }
        total
    }

    /// Largest single compaction across all partitions — each tree is a
    /// fraction of the data, so this shrinks roughly by the partition
    /// count (the load-balancing / stall-smoothing payoff).
    pub fn largest_compaction_entries(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.stats().snapshot().largest_compaction_entries)
            .max()
            .unwrap_or(0)
    }

    /// Per-partition entry counts, for balance inspection.
    pub fn partition_entries(&self) -> Vec<u64> {
        self.partitions.iter().map(|p| p.approximate_entries()).collect()
    }
}

fn add_snapshots(a: &DbStatsSnapshot, b: &DbStatsSnapshot) -> DbStatsSnapshot {
    // delta_since is saturating subtraction; addition needs explicit code
    DbStatsSnapshot {
        puts: a.puts + b.puts,
        deletes: a.deletes + b.deletes,
        gets: a.gets + b.gets,
        gets_found: a.gets_found + b.gets_found,
        scans: a.scans + b.scans,
        scan_entries: a.scan_entries + b.scan_entries,
        bytes_ingested: a.bytes_ingested + b.bytes_ingested,
        flushes: a.flushes + b.flushes,
        compactions: a.compactions + b.compactions,
        compaction_entries: a.compaction_entries + b.compaction_entries,
        tombstones_dropped: a.tombstones_dropped + b.tombstones_dropped,
        versions_dropped: a.versions_dropped + b.versions_dropped,
        runs_probed: a.runs_probed + b.runs_probed,
        filter_prunes: a.filter_prunes + b.filter_prunes,
        blocks_examined: a.blocks_examined + b.blocks_examined,
        range_prunes: a.range_prunes + b.range_prunes,
        range_filter_prunes: a.range_filter_prunes + b.range_filter_prunes,
        prefetched_blocks: a.prefetched_blocks + b.prefetched_blocks,
        vlog_values: a.vlog_values + b.vlog_values,
        vlog_resolves: a.vlog_resolves + b.vlog_resolves,
        largest_compaction_entries: a.largest_compaction_entries.max(b.largest_compaction_entries),
        wal_appends: a.wal_appends + b.wal_appends,
        write_batches: a.write_batches + b.write_batches,
        batched_writes: a.batched_writes + b.batched_writes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Vec<u8> {
        format!("user{i:012}").into_bytes()
    }

    fn load(k: usize, n: u32) -> PartitionedDb {
        let db = PartitionedDb::open_uniform(LsmConfig::small_for_tests(), n as u64, k).unwrap();
        for i in 0..n {
            let id = (i as u64 * 2654435761 % n as u64) as u32;
            db.put(key(id), format!("v{id}").into_bytes()).unwrap();
        }
        db
    }

    #[test]
    fn partitioned_reads_match_writes() {
        let db = load(4, 4000);
        for i in (0..4000u32).step_by(13) {
            assert_eq!(db.get(&key(i)).unwrap(), Some(format!("v{i}").into_bytes()));
        }
        assert_eq!(db.get(b"user_none").unwrap(), None);
    }

    #[test]
    fn scans_stitch_partitions_in_order() {
        let db = load(4, 4000);
        // a range spanning partition boundaries (1000, 2000, 3000)
        let got = db.scan(key(950)..key(3050), usize::MAX).unwrap();
        assert_eq!(got.len(), 2100);
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0, "cross-partition order violated");
        }
        assert_eq!(got[0].0, key(950));
        assert_eq!(got.last().unwrap().0, key(3049));
        // limit respected across partitions
        let limited = db.scan(key(950)..key(3050), 120).unwrap();
        assert_eq!(limited.len(), 120);
        assert_eq!(limited.last().unwrap().0, key(1069));
    }

    #[test]
    fn partitions_balance_a_uniform_load() {
        let db = load(4, 8000);
        let entries = db.partition_entries();
        assert_eq!(entries.len(), 4);
        for (i, &e) in entries.iter().enumerate() {
            assert!(
                (1500..=2500).contains(&e),
                "partition {i} unbalanced: {entries:?}"
            );
        }
    }

    #[test]
    fn partitioning_shrinks_the_largest_compaction() {
        let single = load(1, 12_000);
        let sharded = load(4, 12_000);
        let s1 = single.largest_compaction_entries();
        let s4 = sharded.largest_compaction_entries();
        assert!(
            s4 * 2 < s1,
            "partitioning should shrink the largest compaction: {s4} vs {s1}"
        );
    }

    #[test]
    fn deletes_route_to_the_right_partition() {
        let db = load(3, 3000);
        db.delete(key(2500)).unwrap();
        assert_eq!(db.get(&key(2500)).unwrap(), None);
        assert_eq!(db.get(&key(2501)).unwrap(), Some(b"v2501".to_vec()));
    }

    #[test]
    fn single_partition_degenerates_to_plain_db() {
        let db = PartitionedDb::open_uniform(LsmConfig::small_for_tests(), 100, 1).unwrap();
        assert_eq!(db.num_partitions(), 1);
        db.put(key(5), b"v".to_vec()).unwrap();
        assert_eq!(db.get(&key(5)).unwrap(), Some(b"v".to_vec()));
    }
}
