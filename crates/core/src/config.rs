//! Engine configuration: the LSM design space as a struct.
//!
//! Every field is a design dimension the tutorial names; the experiment
//! suite sweeps them one (or two) at a time.

use lsm_cache::CachePolicy;
use lsm_filters::{FilterKind, RangeFilterKind};
use lsm_index::IndexKind;

/// Storage data layout / merge policy (tutorial Module I.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeLayout {
    /// One sorted run per level (beyond level 0); eager merging.
    Leveled,
    /// Up to `size_ratio` runs per level; lazy merging.
    Tiered,
    /// Tiered everywhere except the last level, which is leveled
    /// (Dostoevsky).
    LazyLeveled,
    /// Explicit per-level run caps, smallest level first (Fluid LSM /
    /// LSM-bush style hybrids). Levels beyond the vector reuse its last
    /// entry.
    Hybrid(Vec<usize>),
}

impl MergeLayout {
    /// Run cap for level `i` (0-based) given the tree currently has
    /// `levels` levels and size ratio `t`.
    pub fn run_cap(&self, i: usize, levels: usize, t: usize) -> usize {
        match self {
            MergeLayout::Leveled => 1,
            MergeLayout::Tiered => (t - 1).max(1),
            MergeLayout::LazyLeveled => {
                if i + 1 >= levels {
                    1
                } else {
                    (t - 1).max(1)
                }
            }
            MergeLayout::Hybrid(caps) => {
                let cap = caps
                    .get(i)
                    .or_else(|| caps.last())
                    .copied()
                    .unwrap_or(1);
                cap.max(1)
            }
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            MergeLayout::Leveled => "leveled",
            MergeLayout::Tiered => "tiered",
            MergeLayout::LazyLeveled => "lazy-leveled",
            MergeLayout::Hybrid(_) => "hybrid",
        }
    }
}

/// How much of a level one compaction moves (tutorial Module I.2's
/// compaction granularity primitive).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionGranularity {
    /// Merge every overlapping file of the source level at once.
    Full,
    /// Merge one source file at a time, chosen by [`FilePicker`] —
    /// the partial compaction of RocksDB/X-Engine, which trades peak
    /// compaction size (tail latency) for more frequent compactions.
    Partial(FilePicker),
}

/// Which file partial compaction picks (tutorial Module I.2: "the design
/// decision on which file(s) to compact affects ingestion performance").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilePicker {
    /// Rotate through the key space (LevelDB's cursor).
    RoundRobin,
    /// File with the least overlap in the next level (write-amp optimal
    /// greedy choice).
    MinOverlap,
    /// Least-recently-read file (protects the read-hot working set).
    Coldest,
    /// Oldest file first (drains stale data, helps tombstone GC).
    Oldest,
    /// Most tombstone-dense file first (Lethe-style delete-aware picking:
    /// pushes deletes toward the last level so their space is reclaimed
    /// and their read overhead removed sooner).
    MostTombstones,
}

impl FilePicker {
    /// All pickers, for experiment sweeps.
    pub const ALL: [FilePicker; 5] = [
        FilePicker::RoundRobin,
        FilePicker::MinOverlap,
        FilePicker::Coldest,
        FilePicker::Oldest,
        FilePicker::MostTombstones,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FilePicker::RoundRobin => "round-robin",
            FilePicker::MinOverlap => "min-overlap",
            FilePicker::Coldest => "coldest",
            FilePicker::Oldest => "oldest",
            FilePicker::MostTombstones => "most-tombstones",
        }
    }
}

/// How maintenance (flush and the compaction cascade) is scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackgroundMode {
    /// Maintenance runs synchronously inside the write that triggers it,
    /// under one write lock — deterministic by design, so experiments are
    /// reproducible and I/O attribution is exact.
    Inline,
    /// Maintenance runs on a background worker pool: a full memtable is
    /// frozen into an immutable companion and flushed off the write path,
    /// and the compaction cascade drains on its own thread. Writers block
    /// only on backpressure (see `l0_slowdown_runs` / `l0_stall_runs`).
    Threaded,
}

impl BackgroundMode {
    /// Reads the mode from the `LSM_BACKGROUND` environment variable
    /// (`threaded` selects [`BackgroundMode::Threaded`]; anything else,
    /// including unset, selects [`BackgroundMode::Inline`]). This is how
    /// CI runs the whole suite once per mode without code changes; tests
    /// that require one specific mode pin the field explicitly.
    pub fn from_env() -> Self {
        match std::env::var("LSM_BACKGROUND") {
            Ok(v) if v.eq_ignore_ascii_case("threaded") => BackgroundMode::Threaded,
            _ => BackgroundMode::Inline,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            BackgroundMode::Inline => "inline",
            BackgroundMode::Threaded => "threaded",
        }
    }
}

/// How filter memory is spread across levels (tutorial Module II.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterAllocation {
    /// Same bits/key everywhere (the production default).
    Uniform,
    /// Monkey's optimal allocation: smaller levels get more bits/key.
    Monkey,
}

/// Key-value separation configuration (WiscKey; tutorial Module I.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvSeparation {
    /// Values at or above this size go to the value log.
    pub min_value_bytes: usize,
}

/// Full engine configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct LsmConfig {
    /// Storage block size in bytes.
    pub block_size: usize,
    /// Memtable capacity in bytes before a flush.
    pub buffer_bytes: usize,
    /// Size ratio `T` between adjacent level capacities.
    pub size_ratio: usize,
    /// Run cap for level 0 (how many flushed runs accumulate before
    /// compaction into level 1).
    pub l0_run_cap: usize,
    /// Storage layout / merge policy.
    pub layout: MergeLayout,
    /// Compaction granularity and file-picking policy.
    pub granularity: CompactionGranularity,
    /// Target SSTable size in bytes (sorted runs are partitioned into
    /// files of roughly this size, enabling partial compaction).
    pub target_table_bytes: usize,
    /// Point-filter family.
    pub filter: FilterKind,
    /// Partitioned filters (RocksDB's partitioned index/filter): one
    /// filter partition per data block, fetched through the block cache on
    /// demand instead of held resident per table — finer-grained memory at
    /// the cost of a filter-block access per probe.
    pub partitioned_filters: bool,
    /// Filter bits per key (interpreted per [`FilterAllocation`]).
    pub bits_per_key: f64,
    /// Uniform vs Monkey allocation of filter memory across levels.
    pub filter_allocation: FilterAllocation,
    /// Range-filter family (`None` disables).
    pub range_filter: RangeFilterKind,
    /// Block-index family.
    pub index: IndexKind,
    /// In-block hash index (RocksDB data-block hash index).
    pub block_hash_index: bool,
    /// Restart interval for block prefix compression.
    pub restart_interval: usize,
    /// Block cache capacity in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Block cache eviction policy.
    pub cache_policy: CachePolicy,
    /// Leaper-style prefetch of hot blocks after compaction.
    pub prefetch_after_compaction: bool,
    /// WAL durability (disable for pure in-memory experiments).
    pub wal: bool,
    /// WiscKey-style key-value separation (`None` disables).
    pub kv_separation: Option<KvSeparation>,
    /// FloDB-style two-level buffer: bytes of unsorted hash front in the
    /// memtable (0 disables). Writes land in the front in O(1) and spill
    /// into the sorted level in batches; scans pay a small on-the-fly
    /// merge.
    pub buffer_front_bytes: usize,
    /// Maintenance scheduling: deterministic inline, or a background
    /// worker pool with an active + immutable memtable pair.
    pub background: BackgroundMode,
    /// Worker threads for [`BackgroundMode::Threaded`] (ignored inline).
    pub background_workers: usize,
    /// Key-range shards per compaction merge (degree of compaction
    /// parallelism — Sarkar et al.'s explicit design axis). `1` (the
    /// default) keeps the serial `merge_tables` path and its exact I/O
    /// ordering, so existing Inline experiments stay byte-identical.
    /// Values above 1 split each merge at input-index fence keys into
    /// balanced sub-compactions that fan out across the worker pool in
    /// `Threaded` mode (and run serially, but through the sharded path,
    /// inline) — the output tables are byte-identical either way.
    pub max_subcompactions: usize,
    /// Concurrent compaction jobs the scheduler admits (jobs must be
    /// disjoint in (level, key-range); see
    /// [`crate::compaction::scheduler::CompactionScheduler`]).
    pub max_background_jobs: usize,
    /// Token-bucket compaction I/O throttle: sustained merge byte rate
    /// (input + output data bytes) per second. `0` disables. Waits are
    /// real sleeps, so the throttle shapes *wall-clock* pacing in
    /// `Threaded` mode; under `Inline`'s simulated clock it never changes
    /// any byte written, only elapsed wall time.
    pub compaction_throttle_bytes_per_sec: u64,
    /// Token-bucket burst capacity in bytes (the largest debit that never
    /// waits). Ignored when the throttle is disabled.
    pub compaction_throttle_burst_bytes: u64,
    /// L0 run count at which writers are *slowed* (a short sleep per
    /// write) in threaded mode, giving compaction a chance to catch up.
    pub l0_slowdown_runs: usize,
    /// L0 run count at which writers *stall* (block until compaction
    /// drains L0 below the threshold) in threaded mode. Readers are never
    /// blocked by backpressure.
    pub l0_stall_runs: usize,
    /// Per-write delay applied in the slowdown band, in microseconds.
    pub slowdown_micros: u64,
    /// Capacity of the structured event ring ([`crate::Db::drain_events`]);
    /// when full, the oldest events are dropped and counted.
    pub event_ring_capacity: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            block_size: 4096,
            buffer_bytes: 1 << 20,
            size_ratio: 10,
            l0_run_cap: 4,
            layout: MergeLayout::Leveled,
            granularity: CompactionGranularity::Full,
            target_table_bytes: 2 << 20,
            filter: FilterKind::Bloom,
            partitioned_filters: false,
            bits_per_key: 10.0,
            filter_allocation: FilterAllocation::Uniform,
            range_filter: RangeFilterKind::None,
            index: IndexKind::Fence,
            block_hash_index: false,
            restart_interval: 16,
            cache_bytes: 8 << 20,
            cache_policy: CachePolicy::Lru,
            prefetch_after_compaction: false,
            wal: true,
            kv_separation: None,
            buffer_front_bytes: 0,
            background: BackgroundMode::from_env(),
            background_workers: 2,
            max_subcompactions: 1,
            max_background_jobs: 2,
            compaction_throttle_bytes_per_sec: 0,
            compaction_throttle_burst_bytes: 1 << 20,
            l0_slowdown_runs: 8,
            l0_stall_runs: 12,
            slowdown_micros: 100,
            event_ring_capacity: 4096,
        }
    }
}

impl LsmConfig {
    /// A configuration with small buffers and tables so unit tests hit
    /// flushes and multi-level compactions with little data.
    pub fn small_for_tests() -> Self {
        LsmConfig {
            block_size: 512,
            buffer_bytes: 4 << 10,
            size_ratio: 4,
            l0_run_cap: 2,
            target_table_bytes: 8 << 10,
            cache_bytes: 64 << 10,
            ..Default::default()
        }
    }

    /// Level capacity in bytes for level `i` (0-based): the buffer size
    /// times `T^(i+1)`.
    pub fn level_capacity_bytes(&self, i: usize) -> u64 {
        let t = self.size_ratio.max(2) as u64;
        (self.buffer_bytes as u64).saturating_mul(t.saturating_pow(i as u32 + 1))
    }

    /// Validates invariants; called by `Db::open`.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_size < 64 {
            return Err("block_size must be ≥ 64".into());
        }
        if self.buffer_bytes < self.block_size {
            return Err("buffer_bytes must be ≥ block_size".into());
        }
        if self.size_ratio < 2 {
            return Err("size_ratio must be ≥ 2".into());
        }
        if self.l0_run_cap == 0 {
            return Err("l0_run_cap must be ≥ 1".into());
        }
        if self.restart_interval == 0 {
            return Err("restart_interval must be ≥ 1".into());
        }
        if self.target_table_bytes < self.block_size {
            return Err("target_table_bytes must be ≥ block_size".into());
        }
        if let MergeLayout::Hybrid(caps) = &self.layout {
            if caps.is_empty() {
                return Err("hybrid layout needs at least one run cap".into());
            }
        }
        if self.background == BackgroundMode::Threaded && self.background_workers == 0 {
            return Err("threaded background mode needs ≥ 1 worker".into());
        }
        if self.max_subcompactions == 0 || self.max_subcompactions > 64 {
            return Err("max_subcompactions must be in 1..=64".into());
        }
        if self.max_background_jobs == 0 {
            return Err("max_background_jobs must be ≥ 1".into());
        }
        if self.compaction_throttle_bytes_per_sec > 0
            && self.compaction_throttle_burst_bytes == 0
        {
            return Err("an enabled compaction throttle needs a nonzero burst".into());
        }
        if self.l0_slowdown_runs == 0 || self.l0_stall_runs < self.l0_slowdown_runs {
            return Err("need 1 ≤ l0_slowdown_runs ≤ l0_stall_runs".into());
        }
        // The compaction trigger fires only when L0 *exceeds* its run cap.
        // A stall threshold at or below the cap would block writers at a
        // level the planner considers healthy — a permanent stall.
        if self.background == BackgroundMode::Threaded && self.l0_stall_runs <= self.l0_run_cap {
            return Err("l0_stall_runs must exceed l0_run_cap in threaded mode".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(LsmConfig::default().validate().is_ok());
        assert!(LsmConfig::small_for_tests().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let cases: [LsmConfig; 11] = [
            LsmConfig { max_subcompactions: 0, ..Default::default() },
            LsmConfig { max_background_jobs: 0, ..Default::default() },
            LsmConfig {
                compaction_throttle_bytes_per_sec: 1 << 20,
                compaction_throttle_burst_bytes: 0,
                ..Default::default()
            },
            LsmConfig { size_ratio: 1, ..Default::default() },
            LsmConfig { block_size: 8, ..Default::default() },
            LsmConfig { buffer_bytes: 100, ..Default::default() },
            LsmConfig { layout: MergeLayout::Hybrid(vec![]), ..Default::default() },
            LsmConfig { restart_interval: 0, ..Default::default() },
            LsmConfig {
                background: BackgroundMode::Threaded,
                background_workers: 0,
                ..Default::default()
            },
            LsmConfig { l0_stall_runs: 2, l0_slowdown_runs: 4, ..Default::default() },
            LsmConfig {
                // stall at the L0 cap: writers would block with nothing
                // for the planner to do
                background: BackgroundMode::Threaded,
                l0_run_cap: 4,
                l0_slowdown_runs: 2,
                l0_stall_runs: 4,
                ..Default::default()
            },
        ];
        for (i, c) in cases.iter().enumerate() {
            assert!(c.validate().is_err(), "case {i} should be rejected");
        }
    }

    #[test]
    fn level_capacities_grow_geometrically() {
        let c = LsmConfig {
            buffer_bytes: 1000,
            size_ratio: 10,
            ..Default::default()
        };
        assert_eq!(c.level_capacity_bytes(0), 10_000);
        assert_eq!(c.level_capacity_bytes(1), 100_000);
        assert_eq!(c.level_capacity_bytes(2), 1_000_000);
    }

    #[test]
    fn run_caps_by_layout() {
        let t = 10;
        assert_eq!(MergeLayout::Leveled.run_cap(0, 3, t), 1);
        assert_eq!(MergeLayout::Tiered.run_cap(1, 3, t), 9);
        assert_eq!(MergeLayout::LazyLeveled.run_cap(0, 3, t), 9);
        assert_eq!(MergeLayout::LazyLeveled.run_cap(2, 3, t), 1);
        let h = MergeLayout::Hybrid(vec![4, 2, 1]);
        assert_eq!(h.run_cap(0, 5, t), 4);
        assert_eq!(h.run_cap(1, 5, t), 2);
        assert_eq!(h.run_cap(2, 5, t), 1);
        assert_eq!(h.run_cap(4, 5, t), 1, "reuses last cap");
    }

    #[test]
    fn lazy_leveled_single_level_is_leveled() {
        assert_eq!(MergeLayout::LazyLeveled.run_cap(0, 1, 10), 1);
    }
}
