//! The manifest: durable description of the current version.
//!
//! Rewritten atomically (new file, then delete the old) on every flush and
//! compaction. Recovery scans the device for the newest file carrying the
//! manifest magic, reopens the tables it lists, and replays the WAL it
//! points at.

use std::sync::Arc;

use lsm_storage::{FileId, IoCategory, StorageDevice, StorageResult, WritableFile};

use crate::entry::{get_varint, put_varint};

/// Magic marking a manifest file's first bytes.
pub const MANIFEST_MAGIC: u64 = 0x4C_53_4D_4D_41_4E_0A; // "LSM MAN\n"

/// Serializable manifest state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ManifestState {
    /// Table file ids: `levels[i][j]` = the j-th (youngest-first) run of
    /// level i, as a list of file ids in key order.
    pub levels: Vec<Vec<Vec<u64>>>,
    /// Current WAL file id (0 = none).
    pub wal: u64,
    /// WAL covering the frozen (immutable) memtable awaiting a background
    /// flush (0 = none). Replayed *before* `wal` on recovery: its records
    /// are strictly older than the active WAL's.
    pub wal_prev: u64,
    /// Current value-log file id (0 = none).
    pub vlog: u64,
    /// Next sequence number to assign.
    pub next_seqno: u64,
    /// Replication watermark: the highest replication-log sequence this
    /// engine has applied (0 = never a replica). Persisted so a promoted
    /// replica can adopt the committed sequence and a restarted replica
    /// knows where to resubscribe. The watermark is only as fresh as the
    /// last manifest write; batches applied since then are recovered from
    /// the WAL and may be legally re-applied (replication apply is
    /// idempotent for a suffix re-delivered in order).
    pub applied_seq: u64,
}

impl ManifestState {
    /// Serializes with the leading magic.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        put_varint(&mut out, self.wal);
        put_varint(&mut out, self.wal_prev);
        put_varint(&mut out, self.vlog);
        put_varint(&mut out, self.next_seqno);
        put_varint(&mut out, self.applied_seq);
        put_varint(&mut out, self.levels.len() as u64);
        for level in &self.levels {
            put_varint(&mut out, level.len() as u64);
            for run in level {
                put_varint(&mut out, run.len() as u64);
                for &id in run {
                    put_varint(&mut out, id);
                }
            }
        }
        out
    }

    /// Deserializes; `None` when the magic or framing is wrong.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 || u64::from_le_bytes(bytes[0..8].try_into().ok()?) != MANIFEST_MAGIC {
            return None;
        }
        let mut off = 8usize;
        let next = |off: &mut usize| -> Option<u64> {
            let (v, n) = get_varint(bytes.get(*off..)?)?;
            *off += n;
            Some(v)
        };
        let wal = next(&mut off)?;
        let wal_prev = next(&mut off)?;
        let vlog = next(&mut off)?;
        let next_seqno = next(&mut off)?;
        let applied_seq = next(&mut off)?;
        let n_levels = next(&mut off)? as usize;
        if n_levels > 64 {
            return None;
        }
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let n_runs = next(&mut off)? as usize;
            if n_runs > 1 << 20 {
                return None;
            }
            let mut runs = Vec::with_capacity(n_runs);
            for _ in 0..n_runs {
                let n_tables = next(&mut off)? as usize;
                if n_tables > 1 << 24 {
                    return None;
                }
                let mut tables = Vec::with_capacity(n_tables);
                for _ in 0..n_tables {
                    tables.push(next(&mut off)?);
                }
                runs.push(tables);
            }
            levels.push(runs);
        }
        Some(ManifestState {
            levels,
            wal,
            wal_prev,
            vlog,
            next_seqno,
            applied_seq,
        })
    }

    /// Every table file id the manifest references.
    pub fn referenced_files(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .levels
            .iter()
            .flat_map(|l| l.iter())
            .flat_map(|r| r.iter())
            .copied()
            .collect();
        if self.wal != 0 {
            out.push(self.wal);
        }
        if self.wal_prev != 0 {
            out.push(self.wal_prev);
        }
        if self.vlog != 0 {
            out.push(self.vlog);
        }
        out
    }
}

/// Writes a new manifest file and deletes the previous one. Returns the
/// new manifest's file id.
pub fn write_manifest(
    device: &Arc<dyn StorageDevice>,
    state: &ManifestState,
    previous: Option<FileId>,
) -> StorageResult<FileId> {
    let mut f = WritableFile::create(Arc::clone(device), IoCategory::Misc)?;
    f.append(&state.to_bytes())?;
    let file = f.seal()?;
    let id = file.id();
    if let Some(prev) = previous {
        // best effort: a missing previous manifest is not fatal
        let _ = device.delete(prev);
    }
    Ok(id)
}

/// Scans the device for every parseable manifest, newest first.
///
/// Normally at most one manifest is live, but a crash between writing a new
/// manifest and deleting its predecessor leaves two; recovery tries the
/// newest and falls back to older candidates if the files it references
/// turn out to be missing or corrupt.
pub fn find_manifest_candidates(
    device: &Arc<dyn StorageDevice>,
) -> StorageResult<Vec<(FileId, ManifestState)>> {
    let mut found: Vec<(FileId, ManifestState)> = Vec::new();
    for id in device.live_files() {
        let len = device.len_blocks(id)?;
        if len == 0 {
            continue;
        }
        let first = device.read(id, 0, len, IoCategory::Misc)?;
        if let Some(state) = ManifestState::from_bytes(&first) {
            found.push((id, state));
        }
    }
    found.sort_by_key(|(id, _)| std::cmp::Reverse(id.0));
    Ok(found)
}

/// Scans the device for the newest parseable manifest. Returns it with its
/// file id.
pub fn find_manifest(
    device: &Arc<dyn StorageDevice>,
) -> StorageResult<Option<(FileId, ManifestState)>> {
    Ok(find_manifest_candidates(device)?.into_iter().next())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_storage::{DeviceProfile, MemDevice};

    fn device() -> Arc<dyn StorageDevice> {
        Arc::new(MemDevice::new(512, DeviceProfile::free()))
    }

    fn sample() -> ManifestState {
        ManifestState {
            levels: vec![
                vec![vec![10], vec![9]],
                vec![],
                vec![vec![3, 4, 5]],
            ],
            wal: 42,
            wal_prev: 41,
            vlog: 0,
            next_seqno: 12345,
            applied_seq: 678,
        }
    }

    #[test]
    fn applied_seq_roundtrips() {
        let mut s = sample();
        s.applied_seq = u64::MAX;
        assert_eq!(ManifestState::from_bytes(&s.to_bytes()), Some(s));
        let fresh = ManifestState::default();
        assert_eq!(fresh.applied_seq, 0);
        assert_eq!(
            ManifestState::from_bytes(&fresh.to_bytes()).unwrap().applied_seq,
            0
        );
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        assert_eq!(ManifestState::from_bytes(&s.to_bytes()), Some(s));
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(ManifestState::from_bytes(b"nonsense").is_none());
        let bytes = sample().to_bytes();
        assert!(ManifestState::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn write_and_find() {
        let dev = device();
        let s = sample();
        let id = write_manifest(&dev, &s, None).unwrap();
        let (found_id, found) = find_manifest(&dev).unwrap().unwrap();
        assert_eq!(found_id, id);
        assert_eq!(found, s);
    }

    #[test]
    fn rewrite_supersedes_and_deletes_old() {
        let dev = device();
        let id1 = write_manifest(&dev, &sample(), None).unwrap();
        let mut s2 = sample();
        s2.next_seqno = 99999;
        let id2 = write_manifest(&dev, &s2, Some(id1)).unwrap();
        let (found_id, found) = find_manifest(&dev).unwrap().unwrap();
        assert_eq!(found_id, id2);
        assert_eq!(found.next_seqno, 99999);
        assert!(!dev.live_files().contains(&id1), "old manifest deleted");
    }

    #[test]
    fn no_manifest_on_empty_device() {
        assert!(find_manifest(&device()).unwrap().is_none());
    }

    #[test]
    fn referenced_files_cover_everything() {
        let refs = sample().referenced_files();
        for id in [10, 9, 3, 4, 5, 42, 41] {
            assert!(refs.contains(&id), "{id} missing");
        }
        assert!(!refs.contains(&0), "vlog 0 means none");
    }

    #[test]
    fn candidates_are_newest_first() {
        let dev = device();
        let id1 = write_manifest(&dev, &sample(), None).unwrap();
        let mut s2 = sample();
        s2.next_seqno = 777;
        // simulate a crash before the old manifest was deleted
        let id2 = write_manifest(&dev, &s2, None).unwrap();
        let cands = find_manifest_candidates(&dev).unwrap();
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].0, id2);
        assert_eq!(cands[0].1.next_seqno, 777);
        assert_eq!(cands[1].0, id1);
    }

    #[test]
    fn foreign_files_are_ignored_by_find() {
        let dev = device();
        // a non-manifest file
        let mut w = WritableFile::create(dev.clone(), IoCategory::Data).unwrap();
        w.append(&[0u8; 600]).unwrap();
        w.seal().unwrap();
        let id = write_manifest(&dev, &sample(), None).unwrap();
        let (found_id, _) = find_manifest(&dev).unwrap().unwrap();
        assert_eq!(found_id, id);
    }
}
