//! Optimistic multi-key transactions (OCC) over the engine's snapshot
//! and group-commit machinery.
//!
//! A [`Txn`] reads through a pinned [`crate::Snapshot`] while recording a
//! **read-set**, buffers its writes locally, and at [`Txn::commit`]
//! validates the read-set against the engine's per-key last-committed
//! sequence numbers — first-committer-wins: if any key the transaction
//! read was overwritten after its snapshot, the commit fails with a
//! typed [`Conflict`] and the engine is untouched. A clean validation
//! folds the write-set into one **atomic** WAL group (all-or-nothing
//! under crash recovery) under the same write-lock acquisition, so
//! validation and apply are a single serialization point.
//!
//! ## Protocol
//!
//! 1. **Begin** pins a snapshot and registers its sequence floor
//!    (`next_seqno - 1`) under the engine write lock. From that moment
//!    every committed write records `key → seqno` into an OCC side map —
//!    the map is only maintained while transactions are live, so the
//!    plain write path pays a single branch when none are.
//! 2. **Reads** go to the transaction's own write buffer first
//!    (read-your-own-writes), then the snapshot; the key enters the
//!    read-set either way (a read of a missing key is still a read — a
//!    later insert of that key must conflict).
//! 3. **Writes** buffer in commit order; nothing reaches the engine
//!    before commit, so an abort — explicit, dropped handle, or
//!    server-side idle timeout — leaves zero trace.
//! 4. **Commit** takes the write lock, validates every read key against
//!    the side map (`recorded seqno > snapshot floor` ⇒ conflict),
//!    applies the write-set as one atomic WAL group, and draws a global
//!    commit stamp while the lock is held. Stamp order is therefore the
//!    serialization order: replaying committed transactions by stamp
//!    reproduces the exact engine state.
//!
//! Blind writes (keys written but never read) always win — two
//! transactions writing the same key without reading it both commit,
//! last stamp wins, exactly as two plain puts would. Snapshot lifetime
//! is bounded by the handle: dropping the last [`Txn`] releases its
//! snapshot pin (value-log GC unblocks) and its floor (the OCC map
//! prunes to the oldest surviving transaction, or drops entirely).

use std::collections::{BTreeMap, HashSet};
use std::fmt;

use lsm_storage::{StorageError, StorageResult};

use crate::db::{commit_txn_parts, Db, TxnApplyPart, WriteBatch};
use crate::snapshot::Snapshot;

/// First-committer-wins validation failure: a key in the transaction's
/// read-set was overwritten after its snapshot. The transaction did not
/// commit and left no trace; the caller retries with a fresh [`Txn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The read key that was overwritten.
    pub key: Vec<u8>,
    /// The transaction's snapshot floor on the conflicting engine.
    pub snap_seqno: u64,
    /// Sequence number of the committed write that invalidated the read.
    pub conflict_seqno: u64,
}

/// Why a [`Txn::commit`] failed.
#[derive(Debug)]
pub enum TxnError {
    /// Validation failed — retry with a fresh transaction.
    Conflict(Conflict),
    /// The engine failed while validating or applying.
    Storage(StorageError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Conflict(c) => write!(
                f,
                "txn conflict on key {:?}: committed seqno {} > snapshot {}",
                c.key, c.conflict_seqno, c.snap_seqno
            ),
            TxnError::Storage(e) => write!(f, "txn storage error: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<StorageError> for TxnError {
    fn from(e: StorageError) -> Self {
        TxnError::Storage(e)
    }
}

/// An optimistic transaction over one engine. See the module docs for
/// the protocol; obtain one with [`Db::begin_txn`].
pub struct Txn {
    db: Db,
    snap: Snapshot,
    snap_seqno: u64,
    read_set: HashSet<Vec<u8>>,
    /// Buffered writes: `Some(value)` = put, `None` = delete. A `BTreeMap`
    /// so the commit batch applies in deterministic key order.
    writes: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Set once the floor has been released (commit or explicit abort),
    /// so `Drop` doesn't release it twice.
    ended: bool,
}

impl Txn {
    pub(crate) fn begin(db: &Db) -> StorageResult<Txn> {
        let (snap, snap_seqno) = db.txn_begin()?;
        Ok(Txn {
            db: db.clone(),
            snap,
            snap_seqno,
            read_set: HashSet::new(),
            writes: BTreeMap::new(),
            ended: false,
        })
    }

    /// The highest sequence number visible to this transaction's
    /// snapshot — its validation floor.
    pub fn snapshot_seqno(&self) -> u64 {
        self.snap_seqno
    }

    /// Keys read so far (validated at commit).
    pub fn read_set_len(&self) -> usize {
        self.read_set.len()
    }

    /// Writes buffered so far.
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Transactional read: own buffered writes first, then the snapshot.
    /// The key joins the read-set either way.
    pub fn get(&mut self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        self.read_set.insert(key.to_vec());
        if let Some(buffered) = self.writes.get(key) {
            return Ok(buffered.clone());
        }
        self.snap.get(key)
    }

    /// Buffers an insert/update; nothing reaches the engine until commit.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.writes.insert(key, Some(value));
    }

    /// Buffers a delete.
    pub fn delete(&mut self, key: Vec<u8>) {
        self.writes.insert(key, None);
    }

    /// Validates the read-set and atomically applies the write-set.
    /// Returns the global commit stamp (the serialization point) on
    /// success. On [`TxnError::Conflict`] the engine is untouched.
    pub fn commit(mut self) -> Result<u64, TxnError> {
        let mut batch = WriteBatch::new();
        for (key, value) in std::mem::take(&mut self.writes) {
            match value {
                Some(v) => batch.put(key, v),
                None => batch.delete(key),
            }
        }
        let read_set: Vec<Vec<u8>> = std::mem::take(&mut self.read_set).into_iter().collect();
        let mut parts = [TxnApplyPart {
            db: &self.db,
            snap_seqno: self.snap_seqno,
            read_set,
            write_set: batch,
        }];
        let out = commit_txn_parts(&mut parts);
        drop(parts);
        self.release();
        match out {
            Ok(Ok(stamp)) => Ok(stamp),
            Ok(Err(conflict)) => Err(TxnError::Conflict(conflict)),
            Err(e) => Err(TxnError::Storage(e)),
        }
    }

    /// Discards the transaction. Equivalent to dropping the handle, but
    /// reads as intent at call sites.
    pub fn abort(self) {
        // Drop does the floor release and snapshot unpin.
    }

    fn release(&mut self) {
        if !self.ended {
            self.ended = true;
            self.db.txn_end(self.snap_seqno);
        }
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        self.release();
    }
}

impl Db {
    /// Begins an optimistic transaction: pins a snapshot, records reads,
    /// buffers writes, validates first-committer-wins at
    /// [`Txn::commit`]. See [`crate::txn`] for the protocol.
    pub fn begin_txn(&self) -> StorageResult<Txn> {
        Txn::begin(self)
    }
}

/// A cross-engine transaction part assembled by a serving layer: the
/// read-set and write-set a [`Txn`]-like handle accumulated against one
/// engine, to be committed atomically with sibling parts via
/// [`commit_parts`].
pub struct TxnPart {
    db: Db,
    snap_seqno: u64,
    read_set: Vec<Vec<u8>>,
    writes: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

impl Txn {
    /// Dismantles the handle into a [`TxnPart`] for a multi-engine
    /// commit, releasing the snapshot pin but **keeping the floor
    /// registered** until [`commit_parts`] (or [`TxnPart::release`])
    /// runs — the conflict window must stay open through the commit.
    pub fn into_part(mut self) -> TxnPart {
        self.ended = true; // the part now owns the floor release
        TxnPart {
            db: self.db.clone(),
            snap_seqno: self.snap_seqno,
            read_set: std::mem::take(&mut self.read_set).into_iter().collect(),
            writes: std::mem::take(&mut self.writes).into_iter().collect(),
        }
    }
}

impl TxnPart {
    /// The engine this part targets.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// The buffered write-set in key order (`Some` = put, `None` =
    /// delete) — lets a serving layer tee or replicate exactly what a
    /// commit will apply.
    pub fn writes(&self) -> &[(Vec<u8>, Option<Vec<u8>>)] {
        &self.writes
    }

    /// Keys in the part's read-set.
    pub fn read_set_len(&self) -> usize {
        self.read_set.len()
    }

    /// Releases the part's snapshot floor without committing (abort).
    pub fn release(self) {
        // Drop runs the release.
    }
}

impl Drop for TxnPart {
    fn drop(&mut self) {
        self.db.txn_end(self.snap_seqno);
    }
}

/// Commits a group of [`TxnPart`]s (one per distinct engine) as a single
/// atomic transaction: every part's read-set validates under every
/// involved engine's write lock (taken in one stable global order), and
/// only a fully-clean validation applies the write-sets — each engine's
/// slice as one atomic WAL group. Returns the shared commit stamp.
///
/// Cross-engine crash atomicity is **not** guaranteed: each engine's
/// slice is individually all-or-nothing in its own WAL, but a crash
/// between two engines' syncs can persist one slice without the other
/// (see DESIGN.md "Transactions" for the full contract).
pub fn commit_parts(parts: Vec<TxnPart>) -> Result<u64, TxnError> {
    let mut apply: Vec<TxnApplyPart<'_>> = parts
        .iter()
        .map(|p| {
            let mut batch = WriteBatch::new();
            for (key, value) in &p.writes {
                match value {
                    Some(v) => batch.put(key.clone(), v.clone()),
                    None => batch.delete(key.clone()),
                }
            }
            TxnApplyPart {
                db: &p.db,
                snap_seqno: p.snap_seqno,
                read_set: p.read_set.clone(),
                write_set: batch,
            }
        })
        .collect();
    let out = commit_txn_parts(&mut apply);
    drop(apply);
    drop(parts); // floors release after validation+apply completed
    match out {
        Ok(Ok(stamp)) => Ok(stamp),
        Ok(Err(conflict)) => Err(TxnError::Conflict(conflict)),
        Err(e) => Err(TxnError::Storage(e)),
    }
}
