//! Engine-level observability: the glue between the generic metric
//! primitives in `lsm-obs` and the engine's hot paths.
//!
//! One [`EngineMetrics`] lives inside each [`crate::Db`]. It owns the
//! metrics registry, the bounded event ring, and the latency histograms
//! for the five engine operations the experiment suite cares about
//! (get / put / scan / flush / compaction).
//!
//! ## Determinism
//!
//! Latency histograms need a clock. Under
//! [`crate::config::BackgroundMode::Inline`] every test and experiment is
//! expected to be bit-for-bit reproducible, so the clock is the device's
//! *simulated* clock ([`lsm_storage::SimClock`]): a timestamp is just the
//! simulated nanoseconds the latency model has charged so far, and an
//! operation's duration is the simulated cost of the I/O it performed.
//! Under `Threaded` mode determinism is off the table anyway (the OS
//! scheduler interleaves work), so timestamps come from a wall
//! [`Instant`] instead.
//!
//! ## Locking
//!
//! The event ring's mutex and the registry's `RwLock` are leaves: no
//! engine lock is ever acquired while holding them, so they can be called
//! from any point in the engine without deadlock risk. The backpressure
//! band tracker serializes band *transitions* through its own leaf mutex
//! so that Slowdown/Stall enter/exit events are well-nested even when
//! many writers cross a threshold at once; the fast path (band unchanged)
//! is a single atomic load.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lsm_obs::{EventKind, EventRing, Histogram, MetricsRegistry, MetricsSnapshot, StallReason};
use lsm_storage::SimClock;
use parking_lot::Mutex;

/// Where timestamps come from — see the module docs on determinism.
enum MetricClock {
    /// Simulated device time: deterministic, advances only on charged I/O.
    Simulated(SimClock),
    /// Wall-clock time since `Db::open`.
    Wall(Instant),
}

impl MetricClock {
    fn now_ns(&self) -> u64 {
        match self {
            MetricClock::Simulated(c) => c.now_ns(),
            MetricClock::Wall(t) => t.elapsed().as_nanos() as u64,
        }
    }
}

/// Backpressure bands in escalation order. Stored as a `u8` so the hot
/// path can check "did the band change?" with one atomic load.
const BAND_NONE: u8 = 0;
const BAND_SLOWDOWN: u8 = 1;
const BAND_STALL: u8 = 2;

/// Per-database observability state: registry, event ring, latency
/// histograms, and id generators for flush/compaction correlation.
pub struct EngineMetrics {
    /// Named counters / gauges / histograms, snapshot via
    /// [`EngineMetrics::registry`].
    registry: MetricsRegistry,
    /// Bounded structured event trace.
    events: EventRing,
    clock: MetricClock,

    /// Latency histograms for the five engine operations (nanoseconds;
    /// simulated under Inline, wall under Threaded).
    pub get_ns: Arc<Histogram>,
    pub put_ns: Arc<Histogram>,
    pub scan_ns: Arc<Histogram>,
    pub flush_ns: Arc<Histogram>,
    pub compaction_ns: Arc<Histogram>,

    /// Live gauges mirrored by the engine on every change (cached here so
    /// the hot path skips the registry's name lookup).
    pub l0_runs_gauge: Arc<lsm_obs::Gauge>,
    pub memtable_bytes_gauge: Arc<lsm_obs::Gauge>,

    /// Optimistic-transaction outcome counters (conflict rate =
    /// `txn.conflicts / (txn.commits + txn.conflicts)`).
    pub txn_begins: Arc<lsm_obs::Counter>,
    pub txn_commits: Arc<lsm_obs::Counter>,
    pub txn_conflicts: Arc<lsm_obs::Counter>,

    /// Monotone ids so `FlushStart`/`FlushEnd` (and compaction pairs) can
    /// be correlated in the trace.
    next_flush_id: AtomicU64,
    next_compaction_id: AtomicU64,
    next_subcompaction_id: AtomicU64,

    /// Current backpressure band (`BAND_*`), plus the leaf lock that
    /// serializes transitions so enter/exit events nest properly.
    bp_band: AtomicU8,
    bp_lock: Mutex<()>,
}

impl EngineMetrics {
    /// Metrics driven by the simulated device clock (Inline mode).
    pub fn simulated(clock: SimClock, event_capacity: usize) -> Self {
        Self::new(MetricClock::Simulated(clock), event_capacity)
    }

    /// Metrics driven by wall time (Threaded mode).
    pub fn wall(event_capacity: usize) -> Self {
        Self::new(MetricClock::Wall(Instant::now()), event_capacity)
    }

    fn new(clock: MetricClock, event_capacity: usize) -> Self {
        let registry = MetricsRegistry::new();
        let get_ns = registry.histogram("latency.get_ns");
        let put_ns = registry.histogram("latency.put_ns");
        let scan_ns = registry.histogram("latency.scan_ns");
        let flush_ns = registry.histogram("latency.flush_ns");
        let compaction_ns = registry.histogram("latency.compaction_ns");
        let l0_runs_gauge = registry.gauge("engine.l0_runs");
        let memtable_bytes_gauge = registry.gauge("engine.memtable_bytes");
        let txn_begins = registry.counter("txn.begins");
        let txn_commits = registry.counter("txn.commits");
        let txn_conflicts = registry.counter("txn.conflicts");
        EngineMetrics {
            registry,
            events: EventRing::new(event_capacity),
            clock,
            get_ns,
            put_ns,
            scan_ns,
            flush_ns,
            compaction_ns,
            l0_runs_gauge,
            memtable_bytes_gauge,
            txn_begins,
            txn_commits,
            txn_conflicts,
            next_flush_id: AtomicU64::new(1),
            next_compaction_id: AtomicU64::new(1),
            next_subcompaction_id: AtomicU64::new(1),
            bp_band: AtomicU8::new(BAND_NONE),
            bp_lock: Mutex::new(()),
        }
    }

    /// Current timestamp in nanoseconds (simulated or wall).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The metrics registry (for ad-hoc counters, e.g. background jobs).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Records a structured event stamped with the current clock.
    pub fn event(&self, kind: EventKind) {
        self.events.record(self.clock.now_ns(), kind);
    }

    /// Drains the event ring (oldest first).
    pub fn drain_events(&self) -> Vec<lsm_obs::Event> {
        self.events.drain()
    }

    /// Events evicted because the ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.events.dropped()
    }

    /// Allocates the next flush id.
    pub fn next_flush_id(&self) -> u64 {
        self.next_flush_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates the next compaction id.
    pub fn next_compaction_id(&self) -> u64 {
        self.next_compaction_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates the next sub-compaction (shard) id.
    pub fn next_subcompaction_id(&self) -> u64 {
        self.next_subcompaction_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Reconciles the backpressure band with the observed L0 run count,
    /// emitting well-nested Slowdown/Stall enter/exit events on each
    /// transition. `slowdown` / `stall` are the configured thresholds.
    ///
    /// Called from the write path; the unchanged-band fast path is a
    /// single atomic load.
    pub fn backpressure_band(&self, l0_runs: usize, slowdown: usize, stall: usize) {
        let target = if l0_runs >= stall {
            BAND_STALL
        } else if l0_runs >= slowdown {
            BAND_SLOWDOWN
        } else {
            BAND_NONE
        };
        if self.bp_band.load(Ordering::Relaxed) == target {
            return;
        }
        let _guard = self.bp_lock.lock();
        // Re-check under the lock; another writer may have moved the band.
        let mut cur = self.bp_band.load(Ordering::Relaxed);
        let l0 = l0_runs as u64;
        while cur != target {
            // Step one band at a time so enter/exit events nest:
            // None -> Slowdown -> Stall going up, the reverse coming down.
            let next = if target > cur { cur + 1 } else { cur - 1 };
            match (cur, next) {
                (BAND_NONE, BAND_SLOWDOWN) => {
                    self.event(EventKind::SlowdownEnter { l0_runs: l0 });
                }
                (BAND_SLOWDOWN, BAND_STALL) => {
                    self.event(EventKind::StallEnter {
                        reason: StallReason::L0,
                        l0_runs: l0,
                    });
                }
                (BAND_STALL, BAND_SLOWDOWN) => {
                    self.event(EventKind::StallExit {
                        reason: StallReason::L0,
                        l0_runs: l0,
                    });
                }
                (BAND_SLOWDOWN, BAND_NONE) => {
                    self.event(EventKind::SlowdownExit { l0_runs: l0 });
                }
                _ => unreachable!("band transition {cur} -> {next}"),
            }
            self.bp_band.store(next, Ordering::Relaxed);
            cur = next;
        }
    }

    /// Times `f`, recording its duration into `hist`. The duration is
    /// measured on the metric clock, so under Inline mode it equals the
    /// simulated I/O cost of the operation (deterministic).
    pub fn time<T>(&self, hist: &Histogram, f: impl FnOnce() -> T) -> T {
        let start = self.clock.now_ns();
        let out = f();
        hist.record(self.clock.now_ns().saturating_sub(start));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_obs::EventKind;

    fn kinds(m: &EngineMetrics) -> Vec<&'static str> {
        m.drain_events().iter().map(|e| e.kind.label()).collect()
    }

    #[test]
    fn band_transitions_are_well_nested() {
        let m = EngineMetrics::wall(64);
        m.backpressure_band(0, 8, 12);
        assert!(kinds(&m).is_empty(), "no events below slowdown");
        m.backpressure_band(8, 8, 12);
        assert_eq!(kinds(&m), ["slowdown_enter"]);
        m.backpressure_band(12, 8, 12);
        assert_eq!(kinds(&m), ["stall_enter"]);
        // Straight from stall back to none: must emit both exits in order.
        m.backpressure_band(0, 8, 12);
        assert_eq!(kinds(&m), ["stall_exit", "slowdown_exit"]);
    }

    #[test]
    fn band_jump_from_none_to_stall_emits_both_enters() {
        let m = EngineMetrics::wall(64);
        m.backpressure_band(20, 8, 12);
        assert_eq!(kinds(&m), ["slowdown_enter", "stall_enter"]);
    }

    #[test]
    fn simulated_clock_drives_timestamps() {
        let clock = SimClock::new();
        let m = EngineMetrics::simulated(clock.clone(), 16);
        clock.advance(1234);
        m.event(EventKind::SlowdownEnter { l0_runs: 9 });
        let ev = m.drain_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].at_ns, 1234);
    }

    #[test]
    fn time_records_simulated_cost() {
        let clock = SimClock::new();
        let m = EngineMetrics::simulated(clock.clone(), 16);
        m.time(&m.get_ns, || clock.advance(4096));
        let snap = m.get_ns.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.max, 4096);
    }
}
