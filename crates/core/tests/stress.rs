//! Large-scale smoke test (ignored by default: run with
//! `cargo test --release -p lsm-core --test stress -- --ignored`).
//!
//! A million keys through a realistic configuration: multi-level tree,
//! update churn, deletes, scans, recovery — the closest thing to a
//! production soak this repo ships.
//!
//! The workload is seeded: set `LSM_SEED=<u64>` to replay a particular
//! run (the seed in use is printed up front, so a failure is
//! reproducible from the test log alone).

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lsm_core::{Db, LsmConfig};
use lsm_storage::{DeviceProfile, MemDevice, StorageDevice};

/// `LSM_SEED` env override, else a fixed default.
fn seed() -> u64 {
    match std::env::var("LSM_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("LSM_SEED must be a u64, got {s:?}")),
        Err(_) => 0x50A4_5EED,
    }
}

#[test]
#[ignore = "large: ~1M keys; run in release"]
fn million_key_soak() {
    let seed = seed();
    eprintln!("million_key_soak: LSM_SEED={seed}");
    let mut rng = StdRng::seed_from_u64(seed);
    let n: u64 = 1_000_000;
    let cfg = LsmConfig {
        buffer_bytes: 1 << 20,
        block_size: 4096,
        size_ratio: 8,
        target_table_bytes: 4 << 20,
        cache_bytes: 32 << 20,
        ..LsmConfig::default()
    };
    let device: Arc<dyn StorageDevice> =
        Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()));
    let db = Db::open(Arc::clone(&device), cfg.clone()).unwrap();
    // load in a seeded permutation-ish order
    for i in 0..n {
        let id = i.wrapping_mul(2654435761) % n;
        db.put(
            format!("user{id:012}").into_bytes(),
            format!("value-{id:012}").into_bytes(),
        )
        .unwrap();
    }
    // churn: ~10% seeded updates, ~5% seeded deletes
    let mut updated: BTreeSet<u64> = BTreeSet::new();
    for _ in 0..n / 10 {
        let id = rng.gen_range(0u64..n);
        db.put(format!("user{id:012}").into_bytes(), b"updated".to_vec())
            .unwrap();
        updated.insert(id);
    }
    let mut deleted: BTreeSet<u64> = BTreeSet::new();
    for _ in 0..n / 20 {
        let id = rng.gen_range(0u64..n);
        db.delete(format!("user{id:012}").into_bytes()).unwrap();
        deleted.insert(id);
        updated.remove(&id);
    }
    // verify a sample
    let mut checked = 0;
    for i in (0..n).step_by(9973) {
        let got = db.get(format!("user{i:012}").as_bytes()).unwrap();
        if deleted.contains(&i) {
            assert_eq!(got, None, "key {i} should be deleted (LSM_SEED={seed})");
        } else if updated.contains(&i) {
            assert_eq!(
                got.as_deref(),
                Some(b"updated".as_slice()),
                "key {i} lost its update (LSM_SEED={seed})"
            );
        } else {
            assert!(got.is_some(), "key {i} lost (LSM_SEED={seed})");
        }
        checked += 1;
    }
    assert!(checked > 90);
    // scans stay ordered over the whole space
    let page = db
        .scan(b"user000000500000".to_vec()..b"user000000501000".to_vec(), 10_000)
        .unwrap();
    for w in page.windows(2) {
        assert!(w[0].0 < w[1].0, "scan out of order (LSM_SEED={seed})");
    }
    // recovery at scale
    let s = db.stats().snapshot();
    assert!(s.compactions > 10, "expected a real compaction history");
    drop(db);
    let db = Db::open(device, cfg).unwrap();
    assert!(
        db.get(format!("user{:012}", (0..n).find(|i| !deleted.contains(i)).unwrap()).as_bytes())
            .unwrap()
            .is_some(),
        "recovery lost data (LSM_SEED={seed})"
    );
}
