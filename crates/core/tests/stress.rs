//! Large-scale smoke test (ignored by default: run with
//! `cargo test --release -p lsm-core --test stress -- --ignored`).
//!
//! A million keys through a realistic configuration: multi-level tree,
//! update churn, deletes, scans, recovery — the closest thing to a
//! production soak this repo ships.

use std::sync::Arc;

use lsm_core::{Db, LsmConfig};
use lsm_storage::{DeviceProfile, MemDevice, StorageDevice};

#[test]
#[ignore = "large: ~1M keys; run in release"]
fn million_key_soak() {
    let n: u64 = 1_000_000;
    let cfg = LsmConfig {
        buffer_bytes: 1 << 20,
        block_size: 4096,
        size_ratio: 8,
        target_table_bytes: 4 << 20,
        cache_bytes: 32 << 20,
        ..LsmConfig::default()
    };
    let device: Arc<dyn StorageDevice> =
        Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()));
    let db = Db::open(Arc::clone(&device), cfg.clone()).unwrap();
    // load
    for i in 0..n {
        let id = i.wrapping_mul(2654435761) % n;
        db.put(
            format!("user{id:012}").into_bytes(),
            format!("value-{id:012}").into_bytes(),
        )
        .unwrap();
    }
    // churn: 10% updates, 5% deletes
    for i in 0..n / 10 {
        let id = (i * 7) % n;
        db.put(format!("user{id:012}").into_bytes(), b"updated".to_vec())
            .unwrap();
    }
    for i in 0..n / 20 {
        let id = (i * 13 + 1) % n;
        db.delete(format!("user{id:012}").into_bytes()).unwrap();
    }
    // verify a sample
    let mut checked = 0;
    for i in (0..n).step_by(9973) {
        let got = db.get(format!("user{i:012}").as_bytes()).unwrap();
        let deleted = (0..n / 20).any(|j| (j * 13 + 1) % n == i);
        if deleted {
            assert_eq!(got, None, "key {i} should be deleted");
        } else {
            assert!(got.is_some(), "key {i} lost");
        }
        checked += 1;
    }
    assert!(checked > 90);
    // scans stay ordered over the whole space
    let page = db
        .scan(b"user000000500000".to_vec()..b"user000000501000".to_vec(), 10_000)
        .unwrap();
    for w in page.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
    // recovery at scale
    let s = db.stats().snapshot();
    assert!(s.compactions > 10, "expected a real compaction history");
    drop(db);
    let db = Db::open(device, cfg).unwrap();
    assert!(db.get(b"user000000000003").unwrap().is_some());
}
