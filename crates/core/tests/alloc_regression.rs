//! Steady-state allocation regression tests.
//!
//! A counting global allocator wraps the system allocator; each test
//! warms the engine, then counts heap allocations across a window of
//! operations. These are the hot-path guarantees the zero-copy work
//! bought, pinned down so a refactor that quietly reintroduces a
//! per-entry `Vec` fails CI instead of a benchmark:
//!
//! - warm-cache point reads (no key-value separation) perform **zero**
//!   heap allocations through [`Db::get_with`] / [`Db::get_into`];
//! - a scan's allocation cost is its *setup* only — independent of how
//!   many entries it visits;
//! - steady-state puts stay within a small constant of allocations per
//!   operation (memtable arena + WAL scratch reuse).
//!
//! The differential tests at the bottom prove the borrowed paths return
//! byte-identical results to the owned paths against a model oracle, in
//! whichever background mode `LSM_BACKGROUND` selects.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use lsm_core::{BackgroundMode, Db, LsmConfig};

struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counter sees every thread's allocations, so counting tests must
/// not overlap each other (or the differential tests, which allocate
/// freely). One lock serializes every test in this binary.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with allocation counting enabled; returns how many heap
/// allocations (malloc + realloc) happened anywhere in the process.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOC_COUNT.load(Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOC_COUNT.load(Ordering::SeqCst) - before
}

/// Inline mode pins all maintenance to this thread, so an allocation
/// observed during a counting window belongs to the operation under
/// test, not to a background worker.
fn inline_config() -> LsmConfig {
    LsmConfig {
        background: BackgroundMode::Inline,
        buffer_bytes: 1 << 20,
        cache_bytes: 4 << 20,
        wal: true,
        ..LsmConfig::small_for_tests()
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("allockey{i:06}").into_bytes()
}

fn value(i: u32) -> Vec<u8> {
    format!("value-{i:06}-padding-padding").into_bytes()
}

/// Builds a db whose data all sits in SSTables behind a warm block
/// cache: fill, flush to quiescence, then touch every key and run the
/// full scan once so every block / filter / index the reads need is
/// resident.
fn warm_db(n: u32) -> Db {
    let db = Db::open_in_memory(inline_config()).unwrap();
    for i in 0..n {
        db.put(key(i), value(i)).unwrap();
    }
    db.flush_all().unwrap();
    let mut buf = Vec::with_capacity(256);
    for i in 0..n {
        assert!(db.get_into(&key(i), &mut buf).unwrap(), "warmup miss {i}");
    }
    let visited = db.scan_with(&key(0), &key(n), usize::MAX, |_, _| {}).unwrap();
    assert_eq!(visited, n as usize, "warmup scan must see everything");
    db
}

#[test]
fn warm_get_is_allocation_free() {
    let _g = lock();
    let db = warm_db(2000);
    let keys: Vec<Vec<u8>> = (0..2000u32).step_by(17).map(key).collect();
    let mut buf = Vec::with_capacity(256);
    let mut total_len = 0usize;
    let allocs = count_allocs(|| {
        for k in &keys {
            let hit = db.get_into(k, &mut buf).unwrap();
            assert!(hit);
            total_len += buf.len();
            let l = db.get_with(k, |v| v.len()).unwrap();
            assert_eq!(l, Some(buf.len()));
        }
    });
    assert!(total_len > 0);
    assert_eq!(
        allocs, 0,
        "warm-cache point reads must not touch the heap ({allocs} allocations leaked in)"
    );
}

#[test]
fn warm_get_miss_is_allocation_free() {
    let _g = lock();
    let db = warm_db(500);
    // warm the miss path once (filters may lazily build nothing, but the
    // probe itself must be clean)
    assert!(!db.get_into(b"allockey999999", &mut Vec::new()).unwrap());
    let misses: Vec<Vec<u8>> = (0..50u32).map(|i| format!("zzmiss{i:04}").into_bytes()).collect();
    let allocs = count_allocs(|| {
        for k in &misses {
            assert_eq!(db.get_with(k, |v| v.len()).unwrap(), None);
        }
    });
    assert_eq!(allocs, 0, "a clean miss allocated {allocs} times");
}

#[test]
fn scan_allocation_cost_is_setup_only() {
    let _g = lock();
    let db = warm_db(2000);
    let run_scan = |limit: usize| {
        let mut entries = 0usize;
        let mut bytes = 0usize;
        let allocs = count_allocs(|| {
            let n = db
                .scan_with(&key(0), &key(2000), limit, |k, v| {
                    entries += 1;
                    bytes += k.len() + v.len();
                })
                .unwrap();
            assert_eq!(n, limit);
        });
        assert_eq!(entries, limit);
        assert!(bytes > 0);
        allocs
    };
    // warm both shapes once so lazily-grown scratch reaches steady state
    run_scan(50);
    run_scan(2000);
    let short = run_scan(50);
    let long = run_scan(2000);
    assert_eq!(
        short, long,
        "scan allocations must be setup-only: {short} allocs for 50 entries vs {long} for 2000 \
         — a per-entry allocation crept back in"
    );
}

#[test]
fn steady_state_put_allocations_are_bounded() {
    let _g = lock();
    let db = Db::open_in_memory(inline_config()).unwrap();
    // reach steady state: arena grown, WAL scratch grown, front warm
    for i in 0..2000u32 {
        db.put(key(i), value(i)).unwrap();
    }
    let ops = 500u32;
    let allocs = count_allocs(|| {
        for i in 0..ops {
            db.put(key(i % 1000), value(i)).unwrap();
        }
    });
    // a put owns its key/value (two allocations) plus amortized growth;
    // the old per-put skiplist node boxes and WAL frame Vecs are gone
    let per_op = allocs as f64 / ops as f64;
    assert!(
        per_op <= 8.0,
        "steady-state put costs {per_op:.1} allocations/op ({allocs} over {ops})"
    );
}

// ---------------------------------------------------------------------------
// Differential tests: borrowed views vs owned paths vs a model oracle
// ---------------------------------------------------------------------------

/// Deterministic pseudo-random stream (no external crates).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Applies a random workload (puts, overwrites, deletes, periodic
/// flushes) to the engine and a `BTreeMap` model in lockstep, then
/// proves the owned and borrowed read paths agree with each other and
/// with the model, byte for byte. Runs in whichever background mode
/// `LSM_BACKGROUND` selects, so `scripts/verify.sh` exercises both.
#[test]
fn borrowed_reads_match_owned_reads_and_model() {
    let _g = lock();
    let cfg = LsmConfig {
        wal: true,
        ..LsmConfig::small_for_tests()
    };
    let db = Db::open_in_memory(cfg).unwrap();
    let mut model = std::collections::BTreeMap::<Vec<u8>, Vec<u8>>::new();
    let mut rng = Rng(0xE21);
    for step in 0..6000u32 {
        let i = (rng.next() % 700) as u32;
        let k = key(i);
        if rng.next() % 5 == 0 {
            db.delete(k.clone()).unwrap();
            model.remove(&k);
        } else {
            let v = format!("v{step}-{i}").into_bytes();
            db.put(k.clone(), v.clone()).unwrap();
            model.insert(k, v);
        }
        if step % 1500 == 1499 {
            db.flush_all().unwrap();
        }
    }

    // point reads: get vs get_into vs get_with must agree with the model
    let mut buf = Vec::new();
    for i in 0..700u32 {
        let k = key(i);
        let owned = db.get(&k).unwrap();
        let hit = db.get_into(&k, &mut buf).unwrap();
        let with = db.get_with(&k, |v| v.to_vec()).unwrap();
        assert_eq!(owned.as_deref(), model.get(&k).map(|v| v.as_slice()), "model vs get {i}");
        assert_eq!(hit.then(|| buf.clone()), owned, "get_into vs get {i}");
        assert_eq!(with, owned, "get_with vs get {i}");
    }

    // range scans: owned scan vs streaming scan_with, several windows
    for (lo, hi, limit) in [
        (0u32, 700u32, usize::MAX),
        (0, 700, 37),
        (100, 250, usize::MAX),
        (650, 700, 10),
    ] {
        let owned = db.scan(key(lo)..key(hi), limit).unwrap();
        let mut streamed = Vec::new();
        db.scan_with(&key(lo), &key(hi), limit, |k, v| {
            streamed.push((k.to_vec(), v.to_vec()));
        })
        .unwrap();
        assert_eq!(streamed, owned, "scan_with vs scan [{lo}, {hi}) limit {limit}");
        let expect: Vec<_> = model
            .range(key(lo)..key(hi))
            .take(limit)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        assert_eq!(owned, expect, "scan vs model [{lo}, {hi}) limit {limit}");
    }
}
