//! Durability and concurrency: property-based crash-recovery checks (the
//! WAL/manifest invariant from DESIGN.md) and a readers-vs-writer smoke
//! test.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use lsm_core::{Db, LsmConfig, MergeLayout};
use lsm_storage::{DeviceProfile, MemDevice, StorageDevice};

#[derive(Clone, Debug)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Flush,
    Reopen,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 256, v)),
        2 => any::<u16>().prop_map(|k| Op::Delete(k % 256)),
        1 => Just(Op::Flush),
        1 => Just(Op::Reopen),
    ]
}

fn key(i: u16) -> Vec<u8> {
    format!("k{i:05}").into_bytes()
}

fn cfg() -> LsmConfig {
    LsmConfig {
        buffer_bytes: 1 << 10,
        block_size: 256,
        target_table_bytes: 1 << 10,
        size_ratio: 3,
        l0_run_cap: 2,
        wal: true,
        ..LsmConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every acknowledged write survives arbitrary interleavings of
    /// flushes and (synced) reopens.
    #[test]
    fn recovery_preserves_acknowledged_writes(ops in vec(arb_op(), 1..150)) {
        let device: Arc<dyn StorageDevice> =
            Arc::new(MemDevice::new(256, DeviceProfile::free()));
        let mut db = Db::open(Arc::clone(&device), cfg()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    db.put(key(*k), vec![*v; 4]).unwrap();
                    model.insert(key(*k), vec![*v; 4]);
                }
                Op::Delete(k) => {
                    db.delete(key(*k)).unwrap();
                    model.remove(&key(*k));
                }
                Op::Flush => db.flush().unwrap(),
                Op::Reopen => {
                    drop(db); // clean shutdown syncs the WAL tail
                    db = Db::open(Arc::clone(&device), cfg()).unwrap();
                }
            }
        }
        drop(db);
        let db = Db::open(device, cfg()).unwrap();
        for k in 0..256u16 {
            prop_assert_eq!(
                db.get(&key(k)).unwrap(),
                model.get(&key(k)).cloned(),
                "key {} diverged after final reopen", k
            );
        }
    }

    /// A simulated crash (device kept, `Db` leaked without drop) loses at
    /// most the unsynced WAL tail: all explicitly synced writes survive.
    #[test]
    fn crash_preserves_synced_prefix(n_synced in 1usize..60, n_tail in 0usize..40) {
        let device: Arc<dyn StorageDevice> =
            Arc::new(MemDevice::new(256, DeviceProfile::free()));
        {
            let db = Db::open(Arc::clone(&device), cfg()).unwrap();
            for i in 0..n_synced {
                db.put(key(i as u16), vec![1u8; 4]).unwrap();
            }
            db.sync().unwrap();
            for i in 0..n_tail {
                db.put(key((1000 + i) as u16), vec![2u8; 4]).unwrap();
            }
            // crash: skip Drop so the WAL tail is NOT padded out
            std::mem::forget(db);
        }
        let db = Db::open(device, cfg()).unwrap();
        for i in 0..n_synced {
            prop_assert_eq!(
                db.get(&key(i as u16)).unwrap(),
                Some(vec![1u8; 4]),
                "synced write {} lost", i
            );
        }
        // tail writes may or may not survive (block-granular persistence);
        // recovery must be a clean prefix: if write j survived, so did all
        // earlier tail writes
        let survived: Vec<bool> = (0..n_tail)
            .map(|i| db.get(&key((1000 + i) as u16)).unwrap().is_some())
            .collect();
        let first_lost = survived.iter().position(|s| !s).unwrap_or(n_tail);
        for (i, s) in survived.iter().enumerate() {
            prop_assert_eq!(*s, i < first_lost, "torn tail is not a prefix: {:?}", survived);
        }
    }
}

#[test]
fn concurrent_readers_during_writes() {
    let db = Arc::new(
        Db::open_in_memory(LsmConfig {
            layout: MergeLayout::Tiered,
            ..LsmConfig::small_for_tests()
        })
        .unwrap(),
    );
    // preload so readers always have something to find
    for i in 0..2000u32 {
        db.put(format!("user{i:08}").into_bytes(), format!("v{i}").into_bytes())
            .unwrap();
    }
    std::thread::scope(|scope| {
        // writer keeps churning (flushes + compactions included)
        let wdb = Arc::clone(&db);
        scope.spawn(move || {
            for round in 0..3u32 {
                for i in 0..2000u32 {
                    wdb.put(
                        format!("user{i:08}").into_bytes(),
                        format!("r{round}-{i}").into_bytes(),
                    )
                    .unwrap();
                }
            }
        });
        // readers: every get must return one of the versions ever written
        for t in 0..3u32 {
            let rdb = Arc::clone(&db);
            scope.spawn(move || {
                for i in 0..6000u32 {
                    let id = (i * 7 + t * 13) % 2000;
                    let got = rdb.get(format!("user{id:08}").as_bytes()).unwrap();
                    let got = got.expect("preloaded key must always be visible");
                    let s = String::from_utf8(got).unwrap();
                    assert!(
                        s == format!("v{id}") || s.ends_with(&format!("-{id}")),
                        "unexpected value {s} for {id}"
                    );
                }
            });
        }
        // scanners: consistent snapshots while compactions replace files
        let sdb = Arc::clone(&db);
        scope.spawn(move || {
            for i in 0..200u32 {
                let lo = format!("user{:08}", (i * 17) % 1900);
                let hi = format!("user{:08}", (i * 17) % 1900 + 50);
                let got = sdb.scan(lo.into_bytes()..hi.into_bytes(), 1000).unwrap();
                assert!(got.len() <= 50);
                for w in got.windows(2) {
                    assert!(w[0].0 < w[1].0, "scan order violated");
                }
            }
        });
    });
}
