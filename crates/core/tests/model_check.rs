//! Property-based model checking: arbitrary operation sequences against a
//! `BTreeMap` reference model, across several engine configurations. The
//! engine must agree with the model on every get and scan, for every
//! layout and granularity.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use lsm_core::{
    CompactionGranularity, Db, FilePicker, FilterKind, IndexKind, LsmConfig, MergeLayout,
};

#[derive(Clone, Debug)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u16, usize),
    Flush,
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 512, v)),
        1 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
        3 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
        1 => (any::<u16>(), any::<u16>(), 1usize..40).prop_map(|(a, b, l)| Op::Scan(a % 512, b % 512, l)),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ]
}

fn key(i: u16) -> Vec<u8> {
    format!("k{i:05}").into_bytes()
}

fn value(v: u8) -> Vec<u8> {
    vec![v; 3 + (v as usize % 5)]
}

fn run_against_model(cfg: LsmConfig, ops: &[Op]) {
    let db = Db::open_in_memory(cfg).unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    // halfway through, pin a snapshot and remember the model state; the
    // snapshot must still serve that exact state after all remaining ops
    type Pinned = (lsm_core::Snapshot, BTreeMap<Vec<u8>, Vec<u8>>);
    let mut pinned: Option<Pinned> = None;
    let half = ops.len() / 2;
    for (i, op) in ops.iter().enumerate() {
        if i == half {
            pinned = Some((db.snapshot().unwrap(), model.clone()));
        }
        match op {
            Op::Put(k, v) => {
                db.put(key(*k), value(*v)).unwrap();
                model.insert(key(*k), value(*v));
            }
            Op::Delete(k) => {
                db.delete(key(*k)).unwrap();
                model.remove(&key(*k));
            }
            Op::Get(k) => {
                assert_eq!(
                    db.get(&key(*k)).unwrap(),
                    model.get(&key(*k)).cloned(),
                    "get({k}) diverged"
                );
            }
            Op::Scan(a, b, limit) => {
                let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
                let got = db.scan(key(lo)..key(hi), *limit).unwrap();
                let expect: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(key(lo)..key(hi))
                    .take(*limit)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, expect, "scan({lo}..{hi}, {limit}) diverged");
            }
            Op::Flush => db.flush().unwrap(),
            Op::Compact => db.compact().unwrap(),
        }
    }
    if let Some((snap, snap_model)) = pinned {
        for k in (0..512u16).step_by(3) {
            assert_eq!(
                snap.get(&key(k)).unwrap(),
                snap_model.get(&key(k)).cloned(),
                "snapshot get({k}) diverged"
            );
        }
        let got = snap.scan(key(0)..key(u16::MAX), usize::MAX).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            snap_model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(got, expect, "snapshot scan diverged");
    }
    // final full audit
    for k in 0..512u16 {
        assert_eq!(db.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
    }
    let got = db.scan(key(0)..key(u16::MAX), usize::MAX).unwrap();
    let expect: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(got, expect, "final full scan diverged");
}

fn tiny(layout: MergeLayout, granularity: CompactionGranularity) -> LsmConfig {
    LsmConfig {
        layout,
        granularity,
        buffer_bytes: 1 << 10, // tiny buffer: lots of flushes/compactions
        block_size: 256,
        target_table_bytes: 1 << 10,
        size_ratio: 3,
        l0_run_cap: 2,
        cache_bytes: 16 << 10,
        ..LsmConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn leveled_matches_model(ops in vec(arb_op(), 1..250)) {
        run_against_model(
            tiny(MergeLayout::Leveled, CompactionGranularity::Full),
            &ops,
        );
    }

    #[test]
    fn tiered_matches_model(ops in vec(arb_op(), 1..250)) {
        run_against_model(
            tiny(MergeLayout::Tiered, CompactionGranularity::Full),
            &ops,
        );
    }

    #[test]
    fn lazy_leveled_matches_model(ops in vec(arb_op(), 1..250)) {
        run_against_model(
            tiny(MergeLayout::LazyLeveled, CompactionGranularity::Full),
            &ops,
        );
    }

    #[test]
    fn partial_compaction_matches_model(ops in vec(arb_op(), 1..250)) {
        run_against_model(
            tiny(
                MergeLayout::Leveled,
                CompactionGranularity::Partial(FilePicker::MinOverlap),
            ),
            &ops,
        );
    }

    #[test]
    fn learned_index_matches_model(ops in vec(arb_op(), 1..200)) {
        let mut cfg = tiny(MergeLayout::Leveled, CompactionGranularity::Full);
        cfg.index = IndexKind::Pla { epsilon: 2 };
        run_against_model(cfg, &ops);
    }

    #[test]
    fn cuckoo_filter_matches_model(ops in vec(arb_op(), 1..200)) {
        let mut cfg = tiny(MergeLayout::Tiered, CompactionGranularity::Full);
        cfg.filter = FilterKind::Cuckoo;
        run_against_model(cfg, &ops);
    }

    #[test]
    fn partitioned_filters_match_model(ops in vec(arb_op(), 1..200)) {
        let mut cfg = tiny(MergeLayout::Leveled, CompactionGranularity::Full);
        cfg.partitioned_filters = true;
        run_against_model(cfg, &ops);
    }

    #[test]
    fn two_level_buffer_matches_model(ops in vec(arb_op(), 1..250)) {
        let mut cfg = tiny(MergeLayout::Leveled, CompactionGranularity::Full);
        cfg.buffer_front_bytes = 256; // tiny front: frequent spills
        run_against_model(cfg, &ops);
    }
}
