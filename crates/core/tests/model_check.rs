//! Property-based model checking: arbitrary operation sequences against a
//! `BTreeMap` reference model, across several engine configurations. The
//! engine must agree with the model on every get and scan, for every
//! layout and granularity.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;

use lsm_core::{
    CompactionGranularity, Db, FilePicker, FilterKind, IndexKind, LsmConfig, MergeLayout,
};

#[derive(Clone, Debug)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u16, usize),
    Flush,
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 512, v)),
        1 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
        3 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
        1 => (any::<u16>(), any::<u16>(), 1usize..40).prop_map(|(a, b, l)| Op::Scan(a % 512, b % 512, l)),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ]
}

fn key(i: u16) -> Vec<u8> {
    format!("k{i:05}").into_bytes()
}

fn value(v: u8) -> Vec<u8> {
    vec![v; 3 + (v as usize % 5)]
}

fn run_against_model(cfg: LsmConfig, ops: &[Op]) {
    let db = Db::open_in_memory(cfg).unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    // halfway through, pin a snapshot and remember the model state; the
    // snapshot must still serve that exact state after all remaining ops
    type Pinned = (lsm_core::Snapshot, BTreeMap<Vec<u8>, Vec<u8>>);
    let mut pinned: Option<Pinned> = None;
    let half = ops.len() / 2;
    for (i, op) in ops.iter().enumerate() {
        if i == half {
            pinned = Some((db.snapshot().unwrap(), model.clone()));
        }
        match op {
            Op::Put(k, v) => {
                db.put(key(*k), value(*v)).unwrap();
                model.insert(key(*k), value(*v));
            }
            Op::Delete(k) => {
                db.delete(key(*k)).unwrap();
                model.remove(&key(*k));
            }
            Op::Get(k) => {
                assert_eq!(
                    db.get(&key(*k)).unwrap(),
                    model.get(&key(*k)).cloned(),
                    "get({k}) diverged"
                );
            }
            Op::Scan(a, b, limit) => {
                let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
                let got = db.scan(key(lo)..key(hi), *limit).unwrap();
                let expect: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(key(lo)..key(hi))
                    .take(*limit)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, expect, "scan({lo}..{hi}, {limit}) diverged");
            }
            Op::Flush => db.flush().unwrap(),
            Op::Compact => db.compact().unwrap(),
        }
    }
    if let Some((snap, snap_model)) = pinned {
        for k in (0..512u16).step_by(3) {
            assert_eq!(
                snap.get(&key(k)).unwrap(),
                snap_model.get(&key(k)).cloned(),
                "snapshot get({k}) diverged"
            );
        }
        let got = snap.scan(key(0)..key(u16::MAX), usize::MAX).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            snap_model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(got, expect, "snapshot scan diverged");
    }
    // final full audit
    for k in 0..512u16 {
        assert_eq!(db.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
    }
    let got = db.scan(key(0)..key(u16::MAX), usize::MAX).unwrap();
    let expect: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(got, expect, "final full scan diverged");
}

fn tiny(layout: MergeLayout, granularity: CompactionGranularity) -> LsmConfig {
    LsmConfig {
        layout,
        granularity,
        buffer_bytes: 1 << 10, // tiny buffer: lots of flushes/compactions
        block_size: 256,
        target_table_bytes: 1 << 10,
        size_ratio: 3,
        l0_run_cap: 2,
        cache_bytes: 16 << 10,
        ..LsmConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn leveled_matches_model(ops in vec(arb_op(), 1..250)) {
        run_against_model(
            tiny(MergeLayout::Leveled, CompactionGranularity::Full),
            &ops,
        );
    }

    #[test]
    fn tiered_matches_model(ops in vec(arb_op(), 1..250)) {
        run_against_model(
            tiny(MergeLayout::Tiered, CompactionGranularity::Full),
            &ops,
        );
    }

    #[test]
    fn lazy_leveled_matches_model(ops in vec(arb_op(), 1..250)) {
        run_against_model(
            tiny(MergeLayout::LazyLeveled, CompactionGranularity::Full),
            &ops,
        );
    }

    #[test]
    fn partial_compaction_matches_model(ops in vec(arb_op(), 1..250)) {
        run_against_model(
            tiny(
                MergeLayout::Leveled,
                CompactionGranularity::Partial(FilePicker::MinOverlap),
            ),
            &ops,
        );
    }

    #[test]
    fn learned_index_matches_model(ops in vec(arb_op(), 1..200)) {
        let mut cfg = tiny(MergeLayout::Leveled, CompactionGranularity::Full);
        cfg.index = IndexKind::Pla { epsilon: 2 };
        run_against_model(cfg, &ops);
    }

    #[test]
    fn cuckoo_filter_matches_model(ops in vec(arb_op(), 1..200)) {
        let mut cfg = tiny(MergeLayout::Tiered, CompactionGranularity::Full);
        cfg.filter = FilterKind::Cuckoo;
        run_against_model(cfg, &ops);
    }

    #[test]
    fn partitioned_filters_match_model(ops in vec(arb_op(), 1..200)) {
        let mut cfg = tiny(MergeLayout::Leveled, CompactionGranularity::Full);
        cfg.partitioned_filters = true;
        run_against_model(cfg, &ops);
    }

    #[test]
    fn two_level_buffer_matches_model(ops in vec(arb_op(), 1..250)) {
        let mut cfg = tiny(MergeLayout::Leveled, CompactionGranularity::Full);
        cfg.buffer_front_bytes = 256; // tiny front: frequent spills
        run_against_model(cfg, &ops);
    }
}

// ---------------------------------------------------------------------------
// Concurrent differential test (`Threaded` mode): writer threads over
// disjoint key stripes and reader threads race against background flush
// and compaction. In flight, each writer asserts read-your-writes on its
// own stripe and readers assert snapshot-consistency invariants (values
// match their keys, per-key generations never run backwards, scans stay
// sorted). After the threads join, the engine must agree exactly with a
// mutex-protected `BTreeMap` oracle.
// ---------------------------------------------------------------------------

mod concurrent {
    use std::collections::{BTreeMap, HashMap};
    use std::sync::{Arc, Mutex};

    use lsm_core::{BackgroundMode, Db, LsmConfig};

    const WRITERS: usize = 4;
    const WRITER_OPS: usize = 10_000;
    const READERS: usize = 2;
    const READER_OPS: usize = 6_000; // total ops ≥ 50k across all threads
    const KEYS_PER_WRITER: u64 = 2_000;

    fn stripe_key(t: usize, r: u64) -> Vec<u8> {
        format!("w{t}-k{r:05}").into_bytes()
    }

    /// Value = key + generation, so any observed value is self-describing:
    /// a reader can check it belongs to the key it came from and extract
    /// the write generation without consulting shared state.
    fn gen_value(t: usize, r: u64, generation: u64) -> Vec<u8> {
        format!("w{t}-k{r:05}#g{generation:08}").into_bytes()
    }

    fn parse_gen(v: &[u8]) -> u64 {
        let s = std::str::from_utf8(v).expect("value must be utf8");
        let (_, g) = s.split_once("#g").expect("value must carry a generation");
        g.parse().expect("generation must be digits")
    }

    fn lcg(x: u64) -> u64 {
        x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
    }

    /// Per-reader monotonicity: a later observation of a key must carry a
    /// generation ≥ any earlier one (the key's single writer only counts
    /// up, and versions are installed in order).
    fn check_monotone(seen: &mut HashMap<Vec<u8>, u64>, key: Vec<u8>, generation: u64) {
        let prev = seen.entry(key.clone()).or_insert(generation);
        assert!(
            *prev <= generation,
            "key {:?} went backwards: gen {generation} after {prev}",
            String::from_utf8_lossy(&key)
        );
        *prev = generation;
    }

    #[test]
    fn concurrent_writers_and_readers_match_model() {
        let cfg = LsmConfig {
            background: BackgroundMode::Threaded,
            background_workers: 2,
            buffer_bytes: 8 << 10, // small buffer: constant flush pressure
            block_size: 512,
            target_table_bytes: 16 << 10,
            size_ratio: 4,
            l0_run_cap: 2,
            cache_bytes: 64 << 10,
            ..LsmConfig::default()
        };
        let db = Db::open_in_memory(cfg).unwrap();
        let oracle: Arc<Mutex<BTreeMap<Vec<u8>, Vec<u8>>>> =
            Arc::new(Mutex::new(BTreeMap::new()));

        let mut handles = Vec::new();
        for t in 0..WRITERS {
            let db = db.clone();
            let oracle = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                let mut rng = lcg(0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1));
                let mut last: HashMap<u64, Option<u64>> = HashMap::new();
                for op in 0..WRITER_OPS {
                    rng = lcg(rng);
                    let r = (rng >> 33) % KEYS_PER_WRITER;
                    let generation = op as u64;
                    if op % 7 == 3 {
                        db.delete(stripe_key(t, r)).unwrap();
                        oracle.lock().unwrap().remove(&stripe_key(t, r));
                        last.insert(r, None);
                    } else {
                        db.put(stripe_key(t, r), gen_value(t, r, generation)).unwrap();
                        oracle
                            .lock()
                            .unwrap()
                            .insert(stripe_key(t, r), gen_value(t, r, generation));
                        last.insert(r, Some(generation));
                    }
                    if op % 16 == 0 {
                        // read-your-writes: nobody else touches this stripe
                        let expect =
                            last[&r].map(|generation| gen_value(t, r, generation));
                        assert_eq!(
                            db.get(&stripe_key(t, r)).unwrap(),
                            expect,
                            "writer {t} lost its own write to k{r:05} at op {op}"
                        );
                    }
                }
            }));
        }
        for rt in 0..READERS {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = lcg(0xdeadbeefcafef00du64.wrapping_add(rt as u64));
                let mut seen: HashMap<Vec<u8>, u64> = HashMap::new();
                for op in 0..READER_OPS {
                    rng = lcg(rng);
                    let t = (rng >> 60) as usize % WRITERS;
                    let r = (rng >> 20) % KEYS_PER_WRITER;
                    if op % 32 == 31 {
                        let lo = stripe_key(t, r);
                        let hi = stripe_key(t, (r + 40).min(KEYS_PER_WRITER));
                        let got = db.scan(lo..hi, 64).unwrap();
                        for w in got.windows(2) {
                            assert!(w[0].0 < w[1].0, "scan keys out of order");
                        }
                        for (k, v) in got {
                            assert!(
                                v.starts_with(&k),
                                "scan returned a value from another key"
                            );
                            check_monotone(&mut seen, k, parse_gen(&v));
                        }
                    } else if let Some(v) = db.get(&stripe_key(t, r)).unwrap() {
                        let k = stripe_key(t, r);
                        assert!(v.starts_with(&k), "get returned a torn value");
                        check_monotone(&mut seen, k, parse_gen(&v));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        // quiesce, then the engine must agree with the oracle exactly
        db.wait_background_idle();
        let model = oracle.lock().unwrap();
        let got = db.scan(b"w".to_vec()..b"x".to_vec(), usize::MAX).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(got.len(), expect.len(), "full scan entry count diverged");
        assert_eq!(got, expect, "full scan diverged from oracle");
        for t in 0..WRITERS {
            for r in 0..KEYS_PER_WRITER {
                let k = stripe_key(t, r);
                assert_eq!(
                    db.get(&k).unwrap(),
                    model.get(&k).cloned(),
                    "key w{t}-k{r:05} diverged from oracle"
                );
            }
        }
    }
}
