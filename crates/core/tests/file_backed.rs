//! The engine on a real filesystem: the `FileDevice` substrate must carry
//! the same semantics as the in-memory device, including recovery from
//! actual on-disk files across process-equivalent reopens.

use std::sync::Arc;

use lsm_core::{Db, LsmConfig};
use lsm_storage::{DeviceProfile, FileDevice, StorageDevice};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lsm-file-backed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> LsmConfig {
    LsmConfig {
        buffer_bytes: 8 << 10,
        block_size: 512,
        target_table_bytes: 16 << 10,
        size_ratio: 4,
        ..LsmConfig::default()
    }
}

#[test]
fn file_backed_engine_end_to_end() {
    let dir = tmpdir("e2e");
    {
        let device: Arc<dyn StorageDevice> =
            Arc::new(FileDevice::open(&dir, 512, DeviceProfile::free()).unwrap());
        let db = Db::open(device, cfg()).unwrap();
        for i in 0..3000u32 {
            db.put(
                format!("user{i:08}").into_bytes(),
                format!("value-{i}").into_bytes(),
            )
            .unwrap();
        }
        for i in (0..3000u32).step_by(5) {
            db.delete(format!("user{i:08}").into_bytes()).unwrap();
        }
        assert_eq!(
            db.get(b"user00000007").unwrap(),
            Some(b"value-7".to_vec())
        );
        assert_eq!(db.get(b"user00000005").unwrap(), None);
    }
    // "process restart": a fresh device over the same directory
    let device: Arc<dyn StorageDevice> =
        Arc::new(FileDevice::open(&dir, 512, DeviceProfile::free()).unwrap());
    let db = Db::open(device, cfg()).unwrap();
    for i in (1..3000u32).step_by(17) {
        let expect = if i % 5 == 0 {
            None
        } else {
            Some(format!("value-{i}").into_bytes())
        };
        assert_eq!(db.get(format!("user{i:08}").as_bytes()).unwrap(), expect, "key {i}");
    }
    // scans survive too
    let got = db
        .scan(b"user00000100".to_vec()..b"user00000120".to_vec(), 100)
        .unwrap();
    assert_eq!(got.len(), 16, "20 keys minus 4 deleted multiples of 5");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn file_backed_obsolete_files_are_deleted_from_disk() {
    let dir = tmpdir("gc");
    let device: Arc<dyn StorageDevice> =
        Arc::new(FileDevice::open(&dir, 512, DeviceProfile::free()).unwrap());
    let db = Db::open(Arc::clone(&device), cfg()).unwrap();
    for round in 0..4u32 {
        for i in 0..1500u32 {
            db.put(
                format!("user{i:08}").into_bytes(),
                format!("r{round}-{i}").into_bytes(),
            )
            .unwrap();
        }
    }
    db.major_compact().unwrap();
    // quiesce before auditing the directory: in `Threaded` mode a worker
    // may still be unlinking obsolete files
    db.wait_background_idle();
    // compaction must physically delete superseded files: the directory's
    // live footprint stays within a small multiple of the logical data
    let live_bytes: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    let logical: u64 = 1500 * 24;
    assert!(
        live_bytes < logical * 20,
        "directory holds {live_bytes} bytes for {logical} logical"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
