//! Differential testing of scans against a `BTreeMap` oracle, across a
//! crash-recovery boundary, in both background modes.
//!
//! A deterministic workload of puts and deletes is applied to the engine
//! and to an in-memory oracle in lockstep. During the run, full scans,
//! bounded scans, limited scans, and point gets are checked against the
//! oracle (a single writer means the oracle is exact in both modes, even
//! with maintenance on worker threads). Then the device crashes on the
//! first I/O after a `sync`, so nothing past the oracle state can be
//! acknowledged; after heal + reopen, the recovered database must match
//! the oracle exactly — no lost acknowledged write, no resurrected
//! delete, and scans agreeing with gets.

use std::collections::BTreeMap;
use std::sync::Arc;

use lsm_core::{BackgroundMode, Db, LsmConfig};
use lsm_storage::{DeviceProfile, FaultDevice, FaultKind, MemDevice, StorageDevice};

type Oracle = BTreeMap<Vec<u8>, Vec<u8>>;

fn cfg(mode: BackgroundMode) -> LsmConfig {
    LsmConfig {
        background: mode,
        background_workers: 2,
        buffer_bytes: 2 << 10,
        ..LsmConfig::small_for_tests()
    }
}

fn fault_device() -> Arc<FaultDevice> {
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    Arc::new(FaultDevice::new(mem, 0x5CA7))
}

fn erased(dev: &Arc<FaultDevice>) -> Arc<dyn StorageDevice> {
    Arc::clone(dev) as Arc<dyn StorageDevice>
}

fn key(i: u64) -> Vec<u8> {
    format!("sk{i:05}").into_bytes()
}

/// Deterministic xorshift so the op sequence is identical across modes
/// and runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Full and windowed scans, limited scans, and spot gets must all agree
/// with the oracle.
fn check_against_oracle(db: &Db, oracle: &Oracle, context: &str) {
    let expected: Vec<(Vec<u8>, Vec<u8>)> =
        oracle.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    let scanned = db.scan(b"sk".to_vec()..b"sl".to_vec(), usize::MAX).unwrap();
    assert_eq!(scanned, expected, "{context}: full scan diverged from oracle");

    for (lo, hi) in [(100u64, 180u64), (0, 40), (250, 300), (199, 201)] {
        let want: Vec<(Vec<u8>, Vec<u8>)> = oracle
            .range(key(lo)..key(hi))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let got = db.scan(key(lo)..key(hi), usize::MAX).unwrap();
        assert_eq!(got, want, "{context}: bounded scan [{lo},{hi}) diverged");
    }

    // limit cuts the same prefix the oracle would
    let limited = db.scan(b"sk".to_vec()..b"sl".to_vec(), 7).unwrap();
    assert_eq!(
        limited,
        expected.iter().take(7).cloned().collect::<Vec<_>>(),
        "{context}: limited scan diverged"
    );

    for i in (0..300u64).step_by(23) {
        assert_eq!(
            db.get(&key(i)).unwrap(),
            oracle.get(&key(i)).cloned(),
            "{context}: get {i} diverged"
        );
    }
    assert_eq!(db.get(b"sk-none").unwrap(), None, "{context}: phantom key");
}

/// Applies `ops` random puts/deletes over 300 hot keys to both the engine
/// and the oracle, checking differentially every 120 ops.
fn run_workload(db: &Db, oracle: &mut Oracle, rng: &mut Rng, ops: usize, context: &str) {
    for n in 0..ops {
        let i = rng.next() % 300;
        if rng.next() % 5 == 0 {
            db.delete(key(i)).unwrap();
            oracle.remove(&key(i));
        } else {
            let v = format!("val{:08}-{}", rng.next() % 100_000, "p".repeat(24)).into_bytes();
            db.put(key(i), v.clone()).unwrap();
            oracle.insert(key(i), v);
        }
        if n % 120 == 119 {
            check_against_oracle(db, oracle, &format!("{context} (op {n})"));
        }
    }
}

fn scan_oracle_crash_case(mode: BackgroundMode) {
    let fault = fault_device();
    let mut oracle = Oracle::new();
    let mut rng = Rng(0xD1FF_0001);
    {
        let db = Db::open(erased(&fault), cfg(mode)).unwrap();
        run_workload(&db, &mut oracle, &mut rng, 1500, mode.label());
        check_against_oracle(&db, &oracle, &format!("{} pre-sync", mode.label()));
        db.sync().unwrap();
        // Crash on the very next device op: nothing after this sync can be
        // acknowledged, so the oracle *is* the recoverable state.
        fault.schedule(fault.ops_performed(), FaultKind::Crash);
        // A tail of unacknowledged writes against the dead device — these
        // must all fail and must not perturb recovery.
        let mut failures = 0;
        for i in 0..40u64 {
            if db.put(key(900 + i), b"never-acked".to_vec()).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "device crash never surfaced to the writer");
        if mode == BackgroundMode::Threaded {
            db.wait_background_idle();
        }
        // handle dropped while the device is dead (process death)
    }
    fault.heal();
    let db = Db::open(erased(&fault), cfg(BackgroundMode::Inline))
        .unwrap_or_else(|e| panic!("{}: reopen after crash failed: {e}", mode.label()));
    check_against_oracle(&db, &oracle, &format!("{} post-recovery", mode.label()));

    // and the engine keeps working after recovery: more ops, still exact
    run_workload(&db, &mut oracle, &mut rng, 400, "post-recovery");
    check_against_oracle(&db, &oracle, "post-recovery tail");
}

#[test]
fn scans_match_oracle_across_crash_inline() {
    scan_oracle_crash_case(BackgroundMode::Inline);
}

#[test]
fn scans_match_oracle_across_crash_threaded() {
    scan_oracle_crash_case(BackgroundMode::Threaded);
}
