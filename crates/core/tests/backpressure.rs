//! L0 write backpressure (`Threaded` mode): when flushes outpace
//! compaction, writers are first slowed (a bounded sleep per write), then
//! stalled (blocked until compaction makes progress) — while readers keep
//! completing against the current version, untouched by either. Both
//! delays are surfaced in `IoStats` so experiments can attribute them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsm_core::{BackgroundMode, Db, LsmConfig};

fn key(i: u32) -> Vec<u8> {
    format!("bp{i:06}").into_bytes()
}

fn value(i: u32) -> Vec<u8> {
    // ~600 bytes: a handful of puts fills the 2 KiB buffer
    format!("v{i:06}-{}", "y".repeat(592)).into_bytes()
}

#[test]
fn stalled_writers_do_not_block_readers() {
    let cfg = LsmConfig {
        background: BackgroundMode::Threaded,
        background_workers: 2,
        buffer_bytes: 2 << 10,
        block_size: 512,
        target_table_bytes: 8 << 10,
        // cap < slowdown < stall: compaction triggers at 3 runs, writes
        // slow at 3 and stop at 5 — progress is always possible
        l0_run_cap: 2,
        l0_slowdown_runs: 3,
        l0_stall_runs: 5,
        ..LsmConfig::default()
    };
    let db = Db::open_in_memory(cfg).unwrap();

    // Seed data for the readers, fully flushed and compacted, so reads
    // during the stall exercise the sorted runs — not just the memtable.
    for i in 0..200u32 {
        db.put(key(i), value(i)).unwrap();
    }
    db.wait_background_idle();

    // Hold compaction: every flush now parks another run in L0, so the
    // writer below must cross the slowdown band (3–4 runs) and then hit
    // the stall wall (5 runs).
    db.pause_compaction();
    let stalls_before = db.io_stats().write_stalls;
    let slowdowns_before = db.io_stats().write_slowdowns;

    let writer_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = db.clone();
        let done = Arc::clone(&writer_done);
        std::thread::spawn(move || {
            // ~24 KiB of fresh keys: a dozen flushes' worth, far past the
            // stall threshold. The thread blocks mid-loop until
            // compaction resumes.
            for i in 1000..1040u32 {
                db.put(key(i), value(i)).unwrap();
            }
            done.store(true, Ordering::Release);
        })
    };

    // Wait for L0 to pin at the stall wall. While compaction is paused
    // the run count only grows, so reaching it proves the writer climbed
    // through the slowdown band and is now blocked inside a stall — a
    // stall-counter poll alone could trip early on a memtable-rotation
    // stall while L0 is still shallow.
    let deadline = Instant::now() + Duration::from_secs(20);
    while db.level_summary().first().map_or(0, |l| l.0) < 5 {
        assert!(
            Instant::now() < deadline,
            "L0 never reached the stall threshold (writer not backpressured)"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(!writer_done.load(Ordering::Acquire), "writer finished through a stall");

    // While the writer is stalled, readers complete: point lookups serve
    // the seeded data promptly and misses return cleanly.
    let read_start = Instant::now();
    for i in 0..200u32 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i)), "read blocked or lost key {i}");
    }
    assert_eq!(db.get(b"bp-never-written").unwrap(), None);
    assert!(
        read_start.elapsed() < Duration::from_secs(10),
        "reads took {:?} during a write stall",
        read_start.elapsed()
    );

    // Release compaction: L0 drains, the stalled writer resumes, finishes.
    db.resume_compaction();
    writer.join().expect("stalled writer never resumed");

    let stats = db.io_stats();
    assert!(stats.write_stalls > stalls_before, "stall not counted in IoStats");
    assert!(
        stats.write_slowdowns > slowdowns_before,
        "writer crossed the slowdown band without being counted"
    );

    // Nothing was lost across the slowdown/stall/resume cycle.
    db.wait_background_idle();
    for i in 1000..1040u32 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i)), "stalled write {i} lost");
    }
}
