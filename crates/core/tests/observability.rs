//! Engine observability: `Db::metrics()` and `Db::drain_events()`.
//!
//! The contract under test:
//!
//! * **Determinism.** Under `BackgroundMode::Inline` the metrics snapshot
//!   (including the latency histograms, which are driven by the simulated
//!   device clock) and the event trace are byte-identical across repeated
//!   runs of the same workload.
//! * **Pairing.** Every `FlushStart` has a matching `FlushEnd`, every
//!   `CompactionStart` a matching `CompactionEnd`, with consistent ids
//!   and byte/entry accounting (`entries_written + tombstones_dropped +
//!   versions_dropped == input_entries`).
//! * **Backpressure order.** In `Threaded` mode a writer that climbs into
//!   a stall produces `SlowdownEnter → StallEnter → StallExit`, in that
//!   order, in the trace.
//! * **Monotonicity.** Counters never go backwards across a background
//!   flush (the registry dedupe regression).

use std::collections::HashMap;
use std::sync::Arc;

use lsm_core::{BackgroundMode, Db, Event, EventKind, LsmConfig, StallReason};
use lsm_storage::{DeviceProfile, MemDevice, StorageDevice};

fn small() -> LsmConfig {
    LsmConfig::small_for_tests()
}

fn key(i: u32) -> Vec<u8> {
    format!("obs{i:06}").into_bytes()
}

fn value(i: u32, len: usize) -> Vec<u8> {
    format!("v{i:06}-{}", "x".repeat(len)).into_bytes()
}

/// A workload that exercises every instrumented path: puts, deletes,
/// overwrites, gets (hits and misses), scans, an explicit flush, and
/// enough volume for flushes and multi-level compactions.
fn mixed_workload(db: &Db) {
    for i in 0..2500u32 {
        db.put(key(i), value(i, 20)).unwrap();
        if i % 11 == 5 {
            db.delete(key(i / 2)).unwrap();
        }
    }
    for i in (0..2500u32).step_by(97) {
        db.get(&key(i)).unwrap();
        db.get(b"obs-missing").unwrap();
    }
    for i in (0..2000u32).step_by(500) {
        db.scan(key(i)..key(i + 200), usize::MAX).unwrap();
    }
    db.flush().unwrap();
}

#[test]
fn inline_metrics_and_trace_are_byte_identical_across_runs() {
    // Pin Inline regardless of `LSM_BACKGROUND`: the determinism claim is
    // specifically about the inline schedule + simulated clock.
    let run = || {
        let cfg = LsmConfig { background: BackgroundMode::Inline, ..small() };
        let db = Db::open_simulated(cfg, DeviceProfile::nvme_ssd()).unwrap();
        mixed_workload(&db);
        let metrics = db.metrics().to_json_line();
        let events: Vec<String> = db.drain_events().iter().map(Event::to_json_line).collect();
        (metrics, events)
    };
    let (m1, e1) = run();
    let (m2, e2) = run();
    assert_eq!(m1, m2, "metrics snapshot differs between identical Inline runs");
    assert_eq!(e1, e2, "event trace differs between identical Inline runs");
}

#[test]
fn metrics_cover_all_five_operation_histograms() {
    let db = Db::open_simulated(small(), DeviceProfile::nvme_ssd()).unwrap();
    mixed_workload(&db);
    let snap = db.metrics();
    for name in [
        "latency.get_ns",
        "latency.put_ns",
        "latency.scan_ns",
        "latency.flush_ns",
        "latency.compaction_ns",
    ] {
        let h = snap
            .histograms
            .get(name)
            .unwrap_or_else(|| panic!("{name} missing from snapshot"));
        assert!(h.count > 0, "{name} recorded nothing");
        assert!(h.p50() <= h.p90(), "{name}: p50 > p90");
        assert!(h.p90() <= h.p99(), "{name}: p90 > p99");
        // quantiles are log-bucket upper bounds: at most one bucket
        // (2x) above the exact max
        assert!(h.p99() <= h.max.saturating_mul(2).max(1), "{name}: p99 implausible");
    }
    // engine counters and gauges made it across
    assert!(snap.counters["db.puts"] >= 2500);
    assert!(snap.counters["db.flushes"] > 0);
    assert!(snap.counters["db.compactions"] > 0);
    assert!(snap.counters.keys().any(|k| k.starts_with("io.")));
    assert!(snap.counters.keys().any(|k| k.starts_with("cache.shard")));
    assert!(snap.gauges.contains_key("engine.l0_runs"));
}

/// Every start event must have exactly one matching end with the same id
/// and, for compactions, self-consistent accounting.
fn check_pairing(events: &[Event]) {
    let mut flush_starts: HashMap<u64, u64> = HashMap::new();
    let mut compaction_starts: HashMap<u64, (u32, u32, u64, u64, u64)> = HashMap::new();
    for e in events {
        match &e.kind {
            EventKind::FlushStart { id, entries } => {
                assert!(
                    flush_starts.insert(*id, *entries).is_none(),
                    "flush id {id} started twice"
                );
            }
            EventKind::FlushEnd { id, entries, .. } => {
                let started = flush_starts
                    .remove(id)
                    .unwrap_or_else(|| panic!("flush end {id} without start"));
                assert_eq!(started, *entries, "flush {id}: entry count changed");
            }
            EventKind::CompactionStart {
                id,
                level,
                target,
                input_tables,
                input_entries,
                input_bytes,
            } => {
                assert!(
                    compaction_starts
                        .insert(*id, (*level, *target, *input_tables, *input_entries, *input_bytes))
                        .is_none(),
                    "compaction id {id} started twice"
                );
            }
            EventKind::CompactionEnd {
                id,
                level,
                target,
                input_tables,
                input_entries,
                input_bytes,
                entries_written,
                tombstones_dropped,
                versions_dropped,
                ..
            } => {
                let started = compaction_starts
                    .remove(id)
                    .unwrap_or_else(|| panic!("compaction end {id} without start"));
                assert_eq!(
                    started,
                    (*level, *target, *input_tables, *input_entries, *input_bytes),
                    "compaction {id}: start/end disagree on inputs"
                );
                assert_eq!(
                    entries_written + tombstones_dropped + versions_dropped,
                    *input_entries,
                    "compaction {id}: entries are not conserved"
                );
            }
            _ => {}
        }
    }
    assert!(flush_starts.is_empty(), "unmatched flush starts: {flush_starts:?}");
    assert!(
        compaction_starts.is_empty(),
        "unmatched compaction starts: {compaction_starts:?}"
    );
}

#[test]
fn flush_and_compaction_events_pair_with_conserved_accounting() {
    let db = Db::open_in_memory(LsmConfig {
        // large ring: the accounting check needs the complete trace
        event_ring_capacity: 1 << 16,
        ..small()
    })
    .unwrap();
    mixed_workload(&db);
    db.major_compact().unwrap();
    let events = db.drain_events();
    assert_eq!(db.events_dropped(), 0, "ring overflowed; accounting would be partial");
    assert!(
        events.iter().any(|e| matches!(e.kind, EventKind::CompactionEnd { .. })),
        "workload produced no compactions"
    );
    check_pairing(&events);
    // seqs are strictly increasing and gap-free when nothing was dropped
    for w in events.windows(2) {
        assert_eq!(w[0].seq + 1, w[1].seq, "seq gap without drops");
    }
}

#[test]
fn threaded_pairing_holds_after_background_quiescence() {
    let db = Db::open_in_memory(LsmConfig {
        background: BackgroundMode::Threaded,
        background_workers: 2,
        event_ring_capacity: 1 << 16,
        ..small()
    })
    .unwrap();
    mixed_workload(&db);
    db.wait_background_idle();
    drop(db.clone()); // exercise handle cloning alongside the trace
    let events = db.drain_events();
    check_pairing(&events);
}

#[test]
fn backpressure_events_are_ordered_slowdown_then_stall_then_exit() {
    let db = Db::open_in_memory(LsmConfig {
        background: BackgroundMode::Threaded,
        background_workers: 2,
        buffer_bytes: 2 << 10,
        block_size: 512,
        target_table_bytes: 8 << 10,
        l0_run_cap: 2,
        l0_slowdown_runs: 3,
        l0_stall_runs: 5,
        event_ring_capacity: 1 << 16,
        ..LsmConfig::default()
    })
    .unwrap();
    // Seed then hold compaction so flushes pile runs into L0 and the
    // writer must climb slowdown (3 runs) into a stall (5 runs).
    for i in 0..200u32 {
        db.put(key(i), value(i, 592)).unwrap();
    }
    db.wait_background_idle();
    db.pause_compaction();
    let writer = {
        let db = db.clone();
        std::thread::spawn(move || {
            for i in 1000..1040u32 {
                db.put(key(i), value(i, 592)).unwrap();
            }
        })
    };
    // wait until L0 is pinned at the stall wall
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while db.level_summary().first().map_or(0, |l| l.0) < 5 {
        assert!(std::time::Instant::now() < deadline, "writer never stalled");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    db.resume_compaction();
    writer.join().unwrap();
    db.wait_background_idle();

    let events = db.drain_events();
    let l0_marks: Vec<&Event> = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::SlowdownEnter { .. }
                    | EventKind::SlowdownExit { .. }
                    | EventKind::StallEnter { reason: StallReason::L0, .. }
                    | EventKind::StallExit { reason: StallReason::L0, .. }
            )
        })
        .collect();
    let slowdown = l0_marks
        .iter()
        .position(|e| matches!(e.kind, EventKind::SlowdownEnter { .. }))
        .expect("no SlowdownEnter in trace");
    let stall_in = l0_marks
        .iter()
        .position(|e| matches!(e.kind, EventKind::StallEnter { .. }))
        .expect("no StallEnter in trace");
    let stall_out = l0_marks
        .iter()
        .position(|e| matches!(e.kind, EventKind::StallExit { .. }))
        .expect("no StallExit in trace");
    assert!(
        slowdown < stall_in && stall_in < stall_out,
        "backpressure events out of order: slowdown@{slowdown} stall_in@{stall_in} stall_out@{stall_out}"
    );
    // enters and exits balance: the band walker keeps them well-nested
    let mut depth: i64 = 0;
    for e in &l0_marks {
        match e.kind {
            EventKind::SlowdownEnter { .. } | EventKind::StallEnter { .. } => depth += 1,
            EventKind::SlowdownExit { .. } | EventKind::StallExit { .. } => depth -= 1,
            _ => unreachable!(),
        }
        assert!((0..=2).contains(&depth), "band depth {depth} out of range");
    }
    assert_eq!(depth, 0, "unbalanced backpressure enters/exits");
}

#[test]
fn counters_never_go_backwards_across_background_flushes() {
    let db = Db::open_in_memory(LsmConfig {
        background: BackgroundMode::Threaded,
        background_workers: 2,
        ..small()
    })
    .unwrap();
    let mut prev = db.metrics();
    for round in 0..6u32 {
        for i in 0..600u32 {
            db.put(key(round * 1000 + i), value(i, 30)).unwrap();
        }
        let cur = db.metrics();
        for (name, &was) in &prev.counters {
            let now = cur.counters.get(name).copied().unwrap_or_else(|| {
                panic!("round {round}: counter {name} vanished")
            });
            assert!(now >= was, "round {round}: counter {name} went backwards ({was} -> {now})");
        }
        for (name, hist) in &prev.histograms {
            let now = &cur.histograms[name];
            assert!(now.count >= hist.count, "round {round}: histogram {name} shrank");
        }
        // the shared delta implementation: reverse deltas are all-zero
        let backwards = prev.delta_since(&cur);
        assert!(
            backwards.counters.values().all(|&v| v == 0),
            "round {round}: reverse delta has nonzero counters"
        );
        // and forward deltas recompose: prev + delta == cur (counters)
        let delta = cur.delta_since(&prev);
        for (name, &d) in &delta.counters {
            assert_eq!(
                prev.counters.get(name).copied().unwrap_or(0) + d,
                cur.counters[name],
                "counter {name} delta does not recompose"
            );
        }
        prev = cur;
    }
    db.wait_background_idle();
}

#[test]
fn wal_rotation_and_recovery_steps_appear_in_the_trace() {
    let device: Arc<dyn StorageDevice> =
        Arc::new(MemDevice::new(512, DeviceProfile::free()));
    {
        let db = Db::open(Arc::clone(&device), small()).unwrap();
        for i in 0..2000u32 {
            db.put(key(i), value(i, 20)).unwrap();
        }
        let events = db.drain_events();
        assert!(
            events.iter().any(|e| matches!(e.kind, EventKind::WalRotation { .. })),
            "flushes rotated no WAL"
        );
        for e in &events {
            if let EventKind::WalRotation { old_wal, new_wal, old_records } = e.kind {
                assert_ne!(old_wal, new_wal, "rotation kept the same WAL file");
                assert!(old_records > 0, "sealed WAL was empty");
            }
        }
        db.sync().unwrap();
    }
    // reopen: recovery emits structured steps for the manifest and WALs
    let db = Db::open(device, small()).unwrap();
    let events = db.drain_events();
    let steps: Vec<&'static str> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::RecoveryStep { step, .. } => Some(*step),
            _ => None,
        })
        .collect();
    assert!(steps.contains(&"manifest_loaded"), "no manifest_loaded step in {steps:?}");
    assert!(steps.contains(&"wal_replayed"), "no wal_replayed step in {steps:?}");
    // recovered data intact
    for i in (0..2000u32).step_by(211) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i, 20)));
    }
}

#[test]
fn event_ring_bounds_memory_and_counts_drops() {
    let db = Db::open_in_memory(LsmConfig {
        event_ring_capacity: 8,
        ..small()
    })
    .unwrap();
    mixed_workload(&db);
    let events = db.drain_events();
    assert!(events.len() <= 8, "ring exceeded its capacity");
    assert!(db.events_dropped() > 0, "workload should have overflowed an 8-slot ring");
    // seqs still strictly increase; the gap equals the drop count
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
}
