//! The parallel-compaction differential battery.
//!
//! Headline guarantee of the sub-compaction work: for any workload and
//! any shard fan-out, the parallel compaction path produces **byte
//! identical** SSTs and version state to the serial path. This battery
//! enforces it at three granularities:
//!
//! 1. **Engine differential** — two Inline engines run the same seeded
//!    workload with `max_subcompactions` 1 vs 4; manifests, every table's
//!    raw bytes, stats, and the event-trace accounting must match.
//! 2. **Merge differential** — `merge_tables` vs `merge_tables_sharded`
//!    over the same inputs for every fan-out 1..=8, plus a proptest over
//!    random keyspaces/deletes/overwrites *and* arbitrary shard-boundary
//!    choices (not just the balanced ones the engine picks).
//! 3. **Policy properties** — the compaction scheduler (no overlapping
//!    admissions, L0-pressure first, error latch + drain) and the file
//!    picker (in-range, round-robin coverage) are model-checked under
//!    random drives.
//!
//! Reproducibility: every randomized test derives its seed from
//! `LSM_SEED` when set (`LSM_SEED=... cargo test ...`) and prints the
//! seed it used, so a failure replays exactly.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lsm_core::compaction::exec::merge_tables;
use lsm_core::compaction::picker::pick_file;
use lsm_core::compaction::scheduler::{
    CompactionScheduler, JobIoReport, JobPriority, JobSpec, TokenBucket,
};
use lsm_core::compaction::subcompact::{merge_tables_sharded, shard_boundaries};
use lsm_core::manifest::find_manifest;
use lsm_core::sstable::{Table, TableBuilder};
use lsm_core::{
    BackgroundMode, Db, EventKind, FilePicker, IndexKind, LsmConfig, SortedRun, ValueKind,
};
use lsm_storage::{DeviceProfile, FileId, IoCategory, MemDevice, StorageDevice};

/// Seed for the non-proptest randomized tests: `LSM_SEED` env override,
/// otherwise a fixed default. Printed by every user so failures replay.
fn seed() -> u64 {
    match std::env::var("LSM_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("LSM_SEED must be a u64, got {s:?}")),
        Err(_) => 0xC0FF_EE00_5EED,
    }
}

fn device(block: usize) -> Arc<dyn StorageDevice> {
    Arc::new(MemDevice::new(block, DeviceProfile::free()))
}

fn cfg(max_subcompactions: usize, background: BackgroundMode) -> LsmConfig {
    LsmConfig {
        buffer_bytes: 2 << 10,
        block_size: 256,
        target_table_bytes: 2 << 10,
        size_ratio: 3,
        l0_run_cap: 2,
        wal: false,
        cache_bytes: 0,
        max_subcompactions,
        background,
        background_workers: 2,
        ..LsmConfig::default()
    }
}

/// One scripted op; generation is shared by every engine under test so
/// identical seeds produce identical workloads.
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
}

fn workload(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let k: u32 = rng.gen_range(0u32..240);
        let key = format!("key{k:05}").into_bytes();
        if rng.gen_bool(0.18) {
            ops.push(Op::Delete(key));
        } else {
            let len = rng.gen_range(20usize..90);
            let byte: u8 = rng.gen_range(0u8..255);
            ops.push(Op::Put(key, vec![byte; len]));
        }
    }
    ops
}

fn apply(db: &Db, oracle: &mut BTreeMap<Vec<u8>, Vec<u8>>, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put(k, v) => {
                db.put(k.clone(), v.clone()).unwrap();
                oracle.insert(k.clone(), v.clone());
            }
            Op::Delete(k) => {
                db.delete(k.clone()).unwrap();
                oracle.remove(k);
            }
        }
    }
}

fn file_bytes(dev: &Arc<dyn StorageDevice>, id: u64) -> Vec<u8> {
    let f = FileId(id);
    let n = dev.len_blocks(f).unwrap();
    dev.read(f, 0, n, IoCategory::Misc).unwrap()
}

/// Checks per-shard conservation in `events` and that shard sums match
/// their enclosing compaction's `CompactionEnd` accounting. Returns the
/// number of subcompaction-end events seen.
fn check_event_conservation(events: &[lsm_core::Event]) -> usize {
    #[derive(Default)]
    struct Sums {
        entries_in: u64,
        written: u64,
        tombstones: u64,
        versions: u64,
    }
    let mut per_compaction: BTreeMap<u64, Sums> = BTreeMap::new();
    let mut shard_ends = 0;
    for e in events {
        if let EventKind::SubcompactionEnd {
            compaction,
            input_entries,
            entries_written,
            tombstones_dropped,
            versions_dropped,
            ..
        } = &e.kind
        {
            assert_eq!(
                *input_entries,
                entries_written + tombstones_dropped + versions_dropped,
                "shard accounting must conserve (event seq {})",
                e.seq
            );
            let s = per_compaction.entry(*compaction).or_default();
            s.entries_in += input_entries;
            s.written += entries_written;
            s.tombstones += tombstones_dropped;
            s.versions += versions_dropped;
            shard_ends += 1;
        }
    }
    for e in events {
        if let EventKind::CompactionEnd {
            id,
            input_entries,
            entries_written,
            tombstones_dropped,
            versions_dropped,
            ..
        } = &e.kind
        {
            if let Some(s) = per_compaction.get(id) {
                assert_eq!(s.entries_in, *input_entries, "compaction {id}: Σ shard inputs");
                assert_eq!(s.written, *entries_written, "compaction {id}: Σ shard writes");
                assert_eq!(s.tombstones, *tombstones_dropped, "compaction {id}: Σ shard GC");
                assert_eq!(s.versions, *versions_dropped, "compaction {id}: Σ shard drops");
            }
        }
    }
    shard_ends
}

/// The tentpole check: two Inline engines, identical seeded workload,
/// `max_subcompactions` 1 vs 4 → byte-identical tables, equal manifests,
/// equal stats, matching oracle reads, conserved shard accounting.
#[test]
fn inline_engine_differential_serial_vs_sharded() {
    let seed = seed();
    eprintln!("inline_engine_differential_serial_vs_sharded: LSM_SEED={seed}");
    let ops = workload(seed, 1600);

    let dev_serial = device(256);
    let dev_parallel = device(256);
    let db_serial = Db::open(Arc::clone(&dev_serial), cfg(1, BackgroundMode::Inline)).unwrap();
    let db_parallel = Db::open(Arc::clone(&dev_parallel), cfg(4, BackgroundMode::Inline)).unwrap();

    let mut oracle = BTreeMap::new();
    let mut shadow = BTreeMap::new();
    let mut parallel_events = Vec::new();
    for chunk in ops.chunks(200) {
        apply(&db_serial, &mut oracle, chunk);
        apply(&db_parallel, &mut shadow, chunk);
        parallel_events.extend(db_parallel.drain_events());
    }
    db_serial.flush().unwrap();
    db_parallel.flush().unwrap();
    db_serial.compact().unwrap();
    db_parallel.compact().unwrap();
    parallel_events.extend(db_parallel.drain_events());
    assert_eq!(db_parallel.events_dropped(), 0, "ring must not drop mid-test");

    // version state: identical manifests (same levels, same table ids)
    let (_, m_serial) = find_manifest(&dev_serial).unwrap().unwrap();
    let (_, m_parallel) = find_manifest(&dev_parallel).unwrap().unwrap();
    assert_eq!(m_serial, m_parallel, "manifest state must be identical");

    // every referenced table byte-identical across the two devices
    let mut tables_checked = 0;
    for level in &m_serial.levels {
        for run in level {
            for &id in run {
                assert_eq!(
                    file_bytes(&dev_serial, id),
                    file_bytes(&dev_parallel, id),
                    "table {id} must be byte-identical"
                );
                tables_checked += 1;
            }
        }
    }
    assert!(tables_checked > 0, "workload must actually build tables");

    // merge accounting identical
    let s = db_serial.stats().snapshot();
    let p = db_parallel.stats().snapshot();
    assert_eq!(s.compactions, p.compactions);
    assert_eq!(s.compaction_entries, p.compaction_entries);
    assert_eq!(s.tombstones_dropped, p.tombstones_dropped);
    assert_eq!(s.versions_dropped, p.versions_dropped);

    // the parallel engine really sharded, and its shard accounting
    // conserves and sums to the per-compaction accounting
    let shard_ends = check_event_conservation(&parallel_events);
    assert!(shard_ends > 0, "expected at least one sharded compaction");

    // reads agree with the oracle on both engines
    assert_eq!(oracle, shadow);
    for (k, v) in &oracle {
        assert_eq!(db_serial.get(k).unwrap().as_deref(), Some(v.as_slice()));
        assert_eq!(db_parallel.get(k).unwrap().as_deref(), Some(v.as_slice()));
    }
    let scan_s = db_serial.scan(b"key".to_vec()..b"kez".to_vec(), usize::MAX).unwrap();
    let scan_p = db_parallel.scan(b"key".to_vec()..b"kez".to_vec(), usize::MAX).unwrap();
    assert_eq!(scan_s, scan_p);
    assert_eq!(scan_s.len(), oracle.len());
}

/// Threaded engine with sharded compactions: reads match the oracle and
/// shard accounting conserves. (Timing makes the manifest legitimately
/// different from Inline, so the byte-level claims stay with the Inline
/// differential above.)
#[test]
fn threaded_engine_sharded_matches_oracle() {
    let seed = seed().wrapping_add(1);
    eprintln!("threaded_engine_sharded_matches_oracle: LSM_SEED={seed}");
    let ops = workload(seed, 1600);
    let dev = device(256);
    let db = Db::open(Arc::clone(&dev), cfg(4, BackgroundMode::Threaded)).unwrap();
    let mut oracle = BTreeMap::new();
    let mut events = Vec::new();
    for chunk in ops.chunks(200) {
        apply(&db, &mut oracle, chunk);
        events.extend(db.drain_events());
    }
    db.flush().unwrap();
    db.compact().unwrap();
    db.wait_background_idle();
    events.extend(db.drain_events());
    check_event_conservation(&events);
    for (k, v) in &oracle {
        assert_eq!(db.get(k).unwrap().as_deref(), Some(v.as_slice()), "key {k:?}");
    }
    let scan = db.scan(b"key".to_vec()..b"kez".to_vec(), usize::MAX).unwrap();
    assert_eq!(scan.len(), oracle.len());
    for ((k, v), (ok, ov)) in scan.iter().zip(oracle.iter()) {
        assert_eq!((k, v), (ok, ov));
    }
}

// ---------------------------------------------------------------------
// Merge-level differential
// ---------------------------------------------------------------------

fn merge_cfg() -> LsmConfig {
    LsmConfig {
        block_size: 256,
        target_table_bytes: 2 << 10,
        ..LsmConfig::small_for_tests()
    }
}

/// Builds one table per run from `(key, seqno, kind, value)` entries.
/// Entries are deduped by key (newest wins) and sorted, matching what a
/// flush would produce.
fn build_run(
    dev: &Arc<dyn StorageDevice>,
    entries: &[(Vec<u8>, u64, ValueKind, Vec<u8>)],
) -> Option<Arc<Table>> {
    let mut newest: BTreeMap<Vec<u8>, (u64, ValueKind, Vec<u8>)> = BTreeMap::new();
    for (k, s, kind, v) in entries {
        match newest.get(k) {
            Some((old_s, _, _)) if *old_s >= *s => {}
            _ => {
                newest.insert(k.clone(), (*s, *kind, v.clone()));
            }
        }
    }
    if newest.is_empty() {
        return None;
    }
    let mut b = TableBuilder::new(Arc::clone(dev), &merge_cfg(), 10.0).unwrap();
    for (k, (s, kind, v)) in &newest {
        b.add(k, *s, *kind, v).unwrap();
    }
    let (f, _) = b.finish().unwrap();
    Some(Table::open(f, IndexKind::Fence).unwrap())
}

/// Splits a sequential op stream into `runs` tables, oldest ops first, so
/// younger runs always carry the higher seqnos per key (the LSM
/// invariant). Returns tables **young-first** as merges expect them.
fn build_inputs(
    dev: &Arc<dyn StorageDevice>,
    ops: &[(Vec<u8>, ValueKind, Vec<u8>)],
    runs: usize,
) -> Vec<Arc<Table>> {
    let per = ops.len().div_ceil(runs.max(1));
    let mut tables = Vec::new();
    for (r, chunk) in ops.chunks(per.max(1)).enumerate() {
        let entries: Vec<(Vec<u8>, u64, ValueKind, Vec<u8>)> = chunk
            .iter()
            .enumerate()
            .map(|(i, (k, kind, v))| (k.clone(), (r * per + i + 1) as u64, *kind, v.clone()))
            .collect();
        if let Some(t) = build_run(dev, &entries) {
            tables.push(t);
        }
    }
    tables.reverse(); // young first
    tables
}

fn assert_merges_identical(
    dev: &Arc<dyn StorageDevice>,
    inputs: &[Arc<Table>],
    drop_tombstones: bool,
    boundaries: &[Vec<u8>],
) {
    let serial = merge_tables(dev, &merge_cfg(), IndexKind::Fence, 10.0, inputs, drop_tombstones)
        .unwrap();
    let sharded = merge_tables_sharded(
        dev,
        &merge_cfg(),
        IndexKind::Fence,
        10.0,
        inputs,
        drop_tombstones,
        boundaries,
    )
    .unwrap();
    assert_eq!(serial.entries_written, sharded.merge.entries_written);
    assert_eq!(serial.tombstones_dropped, sharded.merge.tombstones_dropped);
    assert_eq!(serial.versions_dropped, sharded.merge.versions_dropped);
    assert_eq!(serial.output_bytes, sharded.merge.output_bytes);
    assert_eq!(serial.tables.len(), sharded.merge.tables.len());
    for (a, b) in serial.tables.iter().zip(&sharded.merge.tables) {
        assert_eq!(
            file_bytes(dev, a.id()),
            file_bytes(dev, b.id()),
            "sharded output must be byte-identical to serial"
        );
    }
    // conservation: per shard, in aggregate, and against the real input
    // entry count (the boundary partition loses and duplicates nothing)
    let input_total: u64 = inputs.iter().map(|t| t.meta().num_entries).sum();
    let mut in_sum = 0;
    for s in &sharded.shards {
        assert_eq!(
            s.entries_in,
            s.entries_written + s.tombstones_dropped + s.versions_dropped
        );
        in_sum += s.entries_in;
    }
    assert_eq!(in_sum, input_total, "shards must partition the inputs exactly");
    assert_eq!(
        in_sum,
        sharded.merge.entries_written
            + sharded.merge.tombstones_dropped
            + sharded.merge.versions_dropped
    );
}

/// Engine-chosen boundaries at every fan-out 1..=8 over a seeded random
/// keyspace with deletes and overwrites.
#[test]
fn merge_fanout_sweep_byte_identical() {
    let seed = seed().wrapping_add(2);
    eprintln!("merge_fanout_sweep_byte_identical: LSM_SEED={seed}");
    let mut rng = StdRng::seed_from_u64(seed);
    let dev = device(256);
    let mut ops: Vec<(Vec<u8>, ValueKind, Vec<u8>)> = Vec::new();
    for _ in 0..900 {
        let k: u32 = rng.gen_range(0u32..300);
        let key = format!("key{k:05}").into_bytes();
        if rng.gen_bool(0.2) {
            ops.push((key, ValueKind::Delete, Vec::new()));
        } else {
            let len = rng.gen_range(10usize..60);
            ops.push((key, ValueKind::Put, vec![(k % 251) as u8; len]));
        }
    }
    let inputs = build_inputs(&dev, &ops, 3);
    assert!(inputs.len() > 1);
    for fanout in 1..=8usize {
        let boundaries = shard_boundaries(&inputs, fanout);
        assert!(boundaries.len() < fanout.max(1));
        for drop_tombstones in [false, true] {
            assert_merges_identical(&dev, &inputs, drop_tombstones, &boundaries);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 1: random keyspaces + deletes + overwrites ⇒ sharded
    /// merge output is byte-identical to serial for *arbitrary* boundary
    /// choices (not just engine-balanced ones), with conservation per
    /// shard and in aggregate.
    #[test]
    fn sharded_merge_equals_serial_for_any_boundaries(
        raw in vec((0u16..120, any::<bool>(), 0u8..250), 1..260),
        cut_keys in vec(0u16..140, 0..7),
        runs in 1usize..4,
        drop_tombstones in any::<bool>(),
    ) {
        let dev = device(256);
        let ops: Vec<(Vec<u8>, ValueKind, Vec<u8>)> = raw
            .iter()
            .map(|(k, del, v)| {
                let key = format!("key{k:05}").into_bytes();
                if *del {
                    (key, ValueKind::Delete, Vec::new())
                } else {
                    (key, ValueKind::Put, vec![*v; (*v as usize % 40) + 5])
                }
            })
            .collect();
        let inputs = build_inputs(&dev, &ops, runs);
        prop_assume!(!inputs.is_empty());
        // arbitrary boundaries: sorted, deduped, possibly out of range or
        // splitting mid-key-range — all must be harmless
        let mut boundaries: Vec<Vec<u8>> = cut_keys
            .iter()
            .map(|k| format!("key{k:05}").into_bytes())
            .collect();
        boundaries.sort();
        boundaries.dedup();
        assert_merges_identical(&dev, &inputs, drop_tombstones, &boundaries);
    }

    /// Scheduler model check: drive random submits/dequeues/completes and
    /// assert (a) running jobs never overlap in (level span, key range),
    /// (b) every dequeue returns the highest-priority admissible job with
    /// FIFO tiebreak (so L0 pressure always wins), (c) an error latches
    /// while the queue drains to empty — the scheduler never wedges.
    #[test]
    fn scheduler_admission_model_check(
        specs in vec((0usize..4, 0usize..3, 0u8..6, 0u8..6, 0u8..3), 1..24),
        fail_mask in any::<u32>(),
    ) {
        let sched = CompactionScheduler::new(3, TokenBucket::new(0, 0));
        // mirror model: id -> (spec, seq)
        let mut queued: Vec<(u64, JobSpec, u64)> = Vec::new();
        let mut running: Vec<(u64, JobSpec)> = Vec::new();
        let mut seq = 0u64;
        let mut failures = 0u64;
        for (level, span, lo, hi_off, pri) in &specs {
            let (lo_k, hi_k) = (*lo, lo + hi_off + 1);
            let spec = JobSpec {
                level: *level,
                target: level + span,
                lo: vec![lo_k],
                hi: vec![hi_k],
                priority: match pri {
                    0 => JobPriority::Manual,
                    1 => JobPriority::SizeTriggered,
                    _ => JobPriority::L0Pressure,
                },
            };
            let id = sched.submit(spec.clone());
            queued.push((id, spec, seq));
            seq += 1;
        }
        let mut step = 0u32;
        loop {
            match sched.try_dequeue() {
                Some((id, spec)) => {
                    // (a) no overlap with anything running
                    for (_, r) in &running {
                        prop_assert!(!r.conflicts(&spec),
                            "admitted job overlaps a running job");
                    }
                    // (b) it is the best admissible queued job
                    let admissible: Vec<&(u64, JobSpec, u64)> = queued
                        .iter()
                        .filter(|(_, s, _)| !running.iter().any(|(_, r)| r.conflicts(s)))
                        .collect();
                    let best = admissible
                        .iter()
                        .max_by_key(|(_, s, sq)| (s.priority, std::cmp::Reverse(*sq)))
                        .unwrap();
                    prop_assert_eq!(best.0, id, "dequeue must return the best admissible job");
                    queued.retain(|(qid, _, _)| *qid != id);
                    running.push((id, spec));
                }
                None => {
                    // blocked or done: complete one running job (randomly
                    // failing per the mask) and continue
                    let Some((id, _)) = running.pop() else { break };
                    if fail_mask & (1 << (step % 32)) != 0 {
                        failures += 1;
                        sched.complete(id, Err("injected".into()));
                    } else {
                        sched.complete(id, Ok(JobIoReport::default()));
                    }
                }
            }
            step += 1;
            prop_assert!(step < 10_000, "scheduler drive must terminate");
        }
        // (c) everything drained despite failures
        prop_assert_eq!(sched.queued_len(), 0);
        prop_assert_eq!(sched.running_len(), 0);
        prop_assert_eq!(sched.has_failed(), failures > 0);
        if failures > 0 {
            prop_assert!(sched.take_error().is_some());
        }
        let t = sched.totals();
        prop_assert_eq!(t.submitted, specs.len() as u64);
        prop_assert_eq!(t.completed + t.failed, specs.len() as u64);
        prop_assert_eq!(t.failed, failures);
    }

    /// Picker properties: every picker returns an in-range index, and
    /// round-robin visits every table across `len` consecutive picks.
    #[test]
    fn picker_in_range_and_round_robin_covers(
        sizes in vec(2usize..12, 1..5),
        cursor0 in 0usize..100,
    ) {
        let dev = device(256);
        // disjoint tables: table i covers keys [i*1000, i*1000+size)
        let tables: Vec<Arc<Table>> = sizes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let entries: Vec<(Vec<u8>, u64, ValueKind, Vec<u8>)> = (0..*n)
                    .map(|j| {
                        (
                            format!("key{:07}", i * 1000 + j).into_bytes(),
                            (i * 100 + j + 1) as u64,
                            if j % 3 == 0 { ValueKind::Delete } else { ValueKind::Put },
                            vec![1u8; 8],
                        )
                    })
                    .collect();
                build_run(&dev, &entries).unwrap()
            })
            .collect();
        let run = SortedRun::from_tables(tables.clone());
        let next = SortedRun::from_tables(vec![build_run(
            &dev,
            &[(b"key0000000".to_vec(), 1, ValueKind::Put, vec![2u8; 8])],
        )
        .unwrap()]);
        for picker in [
            FilePicker::RoundRobin,
            FilePicker::MinOverlap,
            FilePicker::Coldest,
            FilePicker::Oldest,
            FilePicker::MostTombstones,
        ] {
            let mut cursor = cursor0;
            let idx = pick_file(picker, &run, Some(&next), &mut cursor);
            prop_assert!(idx < run.tables.len(), "{picker:?} out of range");
        }
        // round-robin coverage
        let mut cursor = cursor0;
        let mut seen = vec![false; run.tables.len()];
        for _ in 0..run.tables.len() {
            seen[pick_file(FilePicker::RoundRobin, &run, None, &mut cursor)] = true;
        }
        prop_assert!(seen.iter().all(|s| *s), "round-robin must cover all tables");
    }
}
