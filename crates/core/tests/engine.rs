//! End-to-end engine tests across the design space: every layout, filter,
//! index, granularity, and extension must serve exactly the same data.

use std::sync::Arc;

use lsm_core::config::KvSeparation;
use lsm_core::{
    CachePolicy, CompactionGranularity, Db, FilePicker, FilterAllocation, FilterKind, IndexKind,
    LsmConfig, MergeLayout, RangeFilterKind,
};
use lsm_storage::{DeviceProfile, IoCategory, MemDevice, StorageDevice};

fn key(i: u32) -> Vec<u8> {
    format!("user{i:010}").into_bytes()
}

fn value(i: u32) -> Vec<u8> {
    format!("payload-{i:06}-{}", "x".repeat(40)).into_bytes()
}

/// Loads n keys (scattered insertion order), returns the db quiesced:
/// these tests assert steady-state shapes and I/O counts, so in-flight
/// background maintenance must land first (no-op in `Inline` mode).
fn load(cfg: LsmConfig, n: u32) -> Db {
    let db = Db::open_in_memory(cfg).unwrap();
    for i in 0..n {
        let id = (i as u64 * 2654435761 % n as u64) as u32;
        db.put(key(id), value(id)).unwrap();
    }
    db.wait_background_idle();
    db
}

/// `small_for_tests` pinned to `Inline` maintenance. Comparative
/// design-space tests assert relative I/O between two configurations;
/// that comparison is only meaningful when tree shapes are deterministic,
/// so those tests opt out of the `LSM_BACKGROUND` override.
fn inline_small_for_tests() -> LsmConfig {
    LsmConfig {
        background: lsm_core::BackgroundMode::Inline,
        ..LsmConfig::small_for_tests()
    }
}

fn check_all_present(db: &Db, n: u32, step: usize) {
    for i in (0..n).step_by(step) {
        assert_eq!(db.get(&key(i)).unwrap(), Some(value(i)), "key {i}");
    }
}

#[test]
fn every_layout_serves_identical_data() {
    let n = 4000;
    for layout in [
        MergeLayout::Leveled,
        MergeLayout::Tiered,
        MergeLayout::LazyLeveled,
        MergeLayout::Hybrid(vec![3, 2, 1]),
    ] {
        let cfg = LsmConfig {
            layout: layout.clone(),
            ..LsmConfig::small_for_tests()
        };
        let db = load(cfg, n);
        check_all_present(&db, n, 7);
        assert_eq!(db.get(b"user_nonexistent").unwrap(), None);
        // layout shape sanity
        let summary = db.level_summary();
        match layout {
            MergeLayout::Leveled => {
                for (i, (runs, _, _)) in summary.iter().enumerate().skip(1) {
                    assert!(*runs <= 1, "leveled L{i} has {runs} runs");
                }
            }
            MergeLayout::Tiered => {
                assert!(
                    summary.iter().map(|(r, _, _)| r).sum::<usize>() >= 2,
                    "tiered tree should hold multiple runs: {summary:?}"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn tiering_writes_less_reads_more_than_leveling() {
    let n = 6000;
    let run = |layout: MergeLayout| {
        let cfg = LsmConfig {
            layout,
            cache_bytes: 0, // measure raw I/O
            wal: false,
            ..inline_small_for_tests()
        };
        let db = load(cfg, n);
        let written = db.io_stats().total_written_blocks();
        // zero-result lookups (keys outside the inserted id space)
        let io_before = db.io_stats().total_read_blocks();
        for i in 0..500u32 {
            let probe = format!("user99{:08}", i);
            let _ = db.get(probe.as_bytes()).unwrap();
        }
        let read = db.io_stats().total_read_blocks() - io_before;
        let runs = db.total_runs();
        (written, read, runs)
    };
    let (w_lev, _r_lev, runs_lev) = run(MergeLayout::Leveled);
    let (w_tier, _r_tier, runs_tier) = run(MergeLayout::Tiered);
    assert!(
        w_tier < w_lev,
        "tiering must write less: {w_tier} vs {w_lev} blocks"
    );
    assert!(
        runs_tier > runs_lev,
        "tiering must keep more runs: {runs_tier} vs {runs_lev}"
    );
}

#[test]
fn bloom_filters_cut_zero_result_io() {
    let n = 5000;
    let run = |bits: f64| {
        let cfg = LsmConfig {
            bits_per_key: bits,
            filter: if bits == 0.0 { FilterKind::None } else { FilterKind::Bloom },
            cache_bytes: 0,
            wal: false,
            ..LsmConfig::small_for_tests()
        };
        let db = load(cfg, n);
        let before = db.io_stats().category(IoCategory::Data).read_blocks;
        for i in 0..1000u32 {
            let probe = format!("zzz{i:08}x");
            let _ = db.get(probe.as_bytes()).unwrap();
        }
        // probes beyond the key range are pruned by fences; use in-range
        // absent keys instead
        for i in 0..1000u32 {
            let probe = format!("user{:010}x", i % n);
            let _ = db.get(probe.as_bytes()).unwrap();
        }
        db.io_stats().category(IoCategory::Data).read_blocks - before
    };
    let io_none = run(0.0);
    let io_bloom = run(10.0);
    assert!(
        io_bloom * 4 < io_none,
        "filters should cut ≥4x: {io_bloom} vs {io_none}"
    );
}

#[test]
fn all_filter_kinds_work_end_to_end() {
    let n = 2000;
    for filter in [
        FilterKind::Bloom,
        FilterKind::BlockedBloom,
        FilterKind::Cuckoo,
        FilterKind::Xor,
        FilterKind::Ribbon,
        FilterKind::None,
    ] {
        let cfg = LsmConfig {
            filter,
            ..LsmConfig::small_for_tests()
        };
        let db = load(cfg, n);
        check_all_present(&db, n, 13);
    }
}

#[test]
fn partitioned_filters_serve_identical_data_with_no_resident_memory() {
    let n = 4000;
    let mono = load(LsmConfig::small_for_tests(), n);
    let part = load(
        LsmConfig {
            partitioned_filters: true,
            ..LsmConfig::small_for_tests()
        },
        n,
    );
    check_all_present(&part, n, 11);
    assert_eq!(part.get(b"user_nonexistent").unwrap(), None);
    // resident filter memory: monolithic pins per-table filters, the
    // partitioned engine pins none
    assert!(mono.total_filter_bits() > 0);
    assert_eq!(part.total_filter_bits(), 0);
    // partitions still prune zero-result lookups
    for i in 0..400u32 {
        let probe = format!("user{:010}x", i * 7 % n);
        part.get(probe.as_bytes()).unwrap();
    }
    assert!(
        part.stats().snapshot().filter_prunes > 300,
        "partitions never pruned: {}",
        part.stats().snapshot().filter_prunes
    );
}

#[test]
fn partitioned_filters_with_learned_index() {
    let n = 3000;
    let cfg = LsmConfig {
        partitioned_filters: true,
        index: IndexKind::Pla { epsilon: 4 },
        ..LsmConfig::small_for_tests()
    };
    let db = load(cfg, n);
    check_all_present(&db, n, 13);
}

#[test]
fn all_index_kinds_work_end_to_end() {
    let n = 2000;
    for index in [
        IndexKind::Fence,
        IndexKind::Sparse { rate: 4 },
        IndexKind::Pla { epsilon: 8 },
        IndexKind::RadixSpline {
            radix_bits: 10,
            epsilon: 8,
        },
    ] {
        let cfg = LsmConfig {
            index,
            ..LsmConfig::small_for_tests()
        };
        let db = load(cfg, n);
        check_all_present(&db, n, 13);
    }
}

#[test]
fn learned_index_uses_less_memory() {
    let n = 8000;
    let fence_db = load(
        LsmConfig {
            index: IndexKind::Fence,
            ..LsmConfig::small_for_tests()
        },
        n,
    );
    let pla_db = load(
        LsmConfig {
            index: IndexKind::Pla { epsilon: 8 },
            ..LsmConfig::small_for_tests()
        },
        n,
    );
    assert!(
        pla_db.total_index_bits() * 2 < fence_db.total_index_bits(),
        "pla {} vs fence {}",
        pla_db.total_index_bits(),
        fence_db.total_index_bits()
    );
}

#[test]
fn monkey_allocation_beats_uniform_on_zero_result_lookups() {
    let n = 12_000;
    let run = |alloc: FilterAllocation| {
        let cfg = LsmConfig {
            filter_allocation: alloc,
            bits_per_key: 5.0, // tight budget makes the difference visible
            cache_bytes: 0,
            wal: false,
            ..inline_small_for_tests()
        };
        let db = load(cfg, n);
        db.compact().unwrap();
        let before = db.io_stats().category(IoCategory::Data).read_blocks;
        for i in 0..4000u32 {
            let probe = format!("user{:010}x", i % n);
            let _ = db.get(probe.as_bytes()).unwrap();
        }
        db.io_stats().category(IoCategory::Data).read_blocks - before
    };
    let uniform = run(FilterAllocation::Uniform);
    let monkey = run(FilterAllocation::Monkey);
    assert!(
        monkey <= uniform,
        "monkey {monkey} blocks vs uniform {uniform}"
    );
}

#[test]
fn partial_compaction_all_pickers() {
    let n = 5000;
    for picker in FilePicker::ALL {
        let cfg = LsmConfig {
            granularity: CompactionGranularity::Partial(picker),
            target_table_bytes: 4 << 10,
            ..LsmConfig::small_for_tests()
        };
        let db = load(cfg, n);
        check_all_present(&db, n, 17);
        // deletions still work through partial merges
        for i in (0..n).step_by(50) {
            db.delete(key(i)).unwrap();
        }
        db.flush().unwrap();
        for i in (0..n).step_by(50) {
            assert_eq!(db.get(&key(i)).unwrap(), None, "{:?} key {i}", picker);
        }
    }
}

#[test]
fn scans_match_reference_model() {
    use std::collections::BTreeMap;
    let cfg = LsmConfig::small_for_tests();
    let db = Db::open_in_memory(cfg).unwrap();
    let mut model = BTreeMap::new();
    // interleaved puts, overwrites, deletes
    for i in 0..3000u32 {
        let id = (i * 7919) % 1000;
        if i % 11 == 3 {
            db.delete(key(id)).unwrap();
            model.remove(&key(id));
        } else {
            let v = format!("v{i}").into_bytes();
            db.put(key(id), v.clone()).unwrap();
            model.insert(key(id), v);
        }
    }
    for (lo, hi) in [(0u32, 100u32), (250, 260), (900, 1100), (500, 500)] {
        let got = db.scan(key(lo)..key(hi), 10_000).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> = model
            .range(key(lo)..key(hi))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        assert_eq!(got, expect, "range {lo}..{hi}");
    }
}

#[test]
fn range_filters_prune_scan_io() {
    let n = 4000;
    let run = |rf: RangeFilterKind| {
        let cfg = LsmConfig {
            range_filter: rf,
            layout: MergeLayout::Tiered, // many runs → many prune chances
            cache_bytes: 0,
            wal: false,
            ..LsmConfig::small_for_tests()
        };
        let db = load(cfg, n);
        // short scans in empty gaps: keys are dense, so scan between keys
        let before = db.io_stats().category(IoCategory::Data).read_blocks;
        for i in 0..300u32 {
            let lo = format!("user{:010}a", i * 7 % n); // just past a real key
            let hi = format!("user{:010}zz", i * 7 % n); // before the next
            let got = db.scan(lo.into_bytes()..hi.into_bytes(), 10).unwrap();
            assert!(got.is_empty());
        }
        let io = db.io_stats().category(IoCategory::Data).read_blocks - before;
        let prunes = db.stats().snapshot().range_filter_prunes;
        (io, prunes)
    };
    let (io_none, _) = run(RangeFilterKind::None);
    let (io_surf, prunes_surf) = run(RangeFilterKind::Surf { suffix_bits: 8 });
    assert!(prunes_surf > 0, "surf never pruned");
    assert!(io_surf <= io_none, "surf io {io_surf} vs none {io_none}");
}

#[test]
fn cache_reduces_repeat_read_io() {
    let n = 3000;
    let cfg = LsmConfig {
        cache_bytes: 4 << 20,
        cache_policy: CachePolicy::Lru,
        wal: false,
        ..LsmConfig::small_for_tests()
    };
    let db = load(cfg, n);
    db.compact().unwrap();
    // quiesce: a background compaction landing between the two passes
    // would invalidate the blocks the first pass warmed
    db.wait_background_idle();
    // first pass faults blocks in, second pass should hit
    for i in (0..n).step_by(3) {
        db.get(&key(i)).unwrap();
    }
    let before = db.io_stats().category(IoCategory::Data).read_blocks;
    for i in (0..n).step_by(3) {
        db.get(&key(i)).unwrap();
    }
    let second_pass = db.io_stats().category(IoCategory::Data).read_blocks - before;
    assert_eq!(second_pass, 0, "warm reads must not touch the device");
    let (hits, _misses) = db.cache_stats().unwrap();
    assert!(hits > 0);
}

#[test]
fn recovery_restores_visible_state() {
    let device: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    let cfg = LsmConfig::small_for_tests();
    {
        let db = Db::open(Arc::clone(&device), cfg.clone()).unwrap();
        for i in 0..2000u32 {
            db.put(key(i), value(i)).unwrap();
        }
        for i in (0..2000u32).step_by(10) {
            db.delete(key(i)).unwrap();
        }
        // a few unflushed writes stay in the memtable (and WAL)
        db.put(b"tail1".to_vec(), b"t1".to_vec()).unwrap();
        db.put(b"tail2".to_vec(), b"t2".to_vec()).unwrap();
        // drop without explicit flush — WAL must carry the tail
    }
    let db = Db::open(device, cfg).unwrap();
    for i in (1..2000u32).step_by(7) {
        let expect = if i % 10 == 0 { None } else { Some(value(i)) };
        assert_eq!(db.get(&key(i)).unwrap(), expect, "key {i}");
    }
    // WAL-tail records survive at block granularity; the engine syncs the
    // WAL at open, so everything written before the reopen is durable
    assert_eq!(db.get(b"tail1").unwrap(), Some(b"t1".to_vec()));
}

#[test]
fn recovery_is_idempotent_across_many_reopens() {
    let device: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    let cfg = LsmConfig::small_for_tests();
    for round in 0..5u32 {
        let db = Db::open(Arc::clone(&device), cfg.clone()).unwrap();
        // everything from earlier rounds is visible
        for r in 0..round {
            for i in (0..200u32).step_by(19) {
                assert_eq!(
                    db.get(&format!("r{r}-k{i:05}").into_bytes()).unwrap(),
                    Some(format!("r{r}-v{i}").into_bytes()),
                    "round {round}, lost r{r}-k{i}"
                );
            }
        }
        for i in 0..200u32 {
            db.put(
                format!("r{round}-k{i:05}").into_bytes(),
                format!("r{round}-v{i}").into_bytes(),
            )
            .unwrap();
        }
    }
}

#[test]
fn kv_separation_reduces_write_amp_for_large_values() {
    let n = 800u32;
    let big_value = vec![0xEE; 1024];
    let run = |sep: Option<KvSeparation>| {
        let cfg = LsmConfig {
            kv_separation: sep,
            wal: false,
            cache_bytes: 0,
            ..LsmConfig::small_for_tests()
        };
        let db = Db::open_in_memory(cfg).unwrap();
        for i in 0..n {
            db.put(key(i % 200), big_value.clone()).unwrap(); // heavy updates
        }
        db.compact().unwrap();
        // correctness
        for i in 0..200u32 {
            assert_eq!(db.get(&key(i)).unwrap(), Some(big_value.clone()));
        }
        db.io_stats().total_written_blocks()
    };
    let plain = run(None);
    let separated = run(Some(KvSeparation {
        min_value_bytes: 256,
    }));
    assert!(
        separated < plain,
        "kv-sep should write less under update churn: {separated} vs {plain}"
    );
}

#[test]
fn value_log_gc_reclaims_dead_space() {
    let cfg = LsmConfig {
        kv_separation: Some(KvSeparation {
            min_value_bytes: 100,
        }),
        ..LsmConfig::small_for_tests()
    };
    let db = Db::open_in_memory(cfg).unwrap();
    let val = |i: u32, gen: u32| format!("gen{gen}-{}", "v".repeat(150 + i as usize % 7)).into_bytes();
    for i in 0..100u32 {
        db.put(key(i), val(i, 0)).unwrap();
    }
    // overwrite: generation 0 values become garbage
    for i in 0..100u32 {
        db.put(key(i), val(i, 1)).unwrap();
    }
    let (live, dead) = db.gc_value_log().unwrap();
    assert!(dead >= 90, "expected most gen-0 values dead: {dead}");
    assert!(live >= 90, "gen-1 values must be rewritten live: {live}");
    for i in 0..100u32 {
        assert_eq!(db.get(&key(i)).unwrap(), Some(val(i, 1)), "key {i} after GC");
    }
}

#[test]
fn tombstones_are_purged_at_the_bottom() {
    let cfg = LsmConfig::small_for_tests();
    let db = Db::open_in_memory(cfg).unwrap();
    for i in 0..2000u32 {
        db.put(key(i), value(i)).unwrap();
    }
    for i in 0..2000u32 {
        db.delete(key(i)).unwrap();
    }
    db.major_compact().unwrap();
    let s = db.stats().snapshot();
    assert!(s.tombstones_dropped > 0, "no tombstone GC happened");
    for i in (0..2000u32).step_by(97) {
        assert_eq!(db.get(&key(i)).unwrap(), None);
    }
}

#[test]
fn space_amplification_shrinks_after_full_compaction() {
    let cfg = LsmConfig {
        wal: false,
        ..LsmConfig::small_for_tests()
    };
    let db = Db::open_in_memory(cfg).unwrap();
    // write the same 500 keys 6 times: ~6x space before compaction
    for _gen in 0..6 {
        for i in 0..500u32 {
            db.put(key(i), value(i)).unwrap();
        }
    }
    db.flush().unwrap();
    let before = db.device().live_blocks();
    db.compact().unwrap();
    // force a final major merge by compacting until quiescent (compact()
    // already loops); obsolete versions must be gone
    let s = db.stats().snapshot();
    assert!(s.versions_dropped > 0, "no obsolete versions dropped");
    let after = db.device().live_blocks();
    assert!(after <= before, "space grew: {after} vs {before}");
    check_all_present(&db, 500, 23);
}

#[test]
fn hybrid_layout_respects_run_caps() {
    let caps = vec![4usize, 2, 1];
    let cfg = LsmConfig {
        layout: MergeLayout::Hybrid(caps.clone()),
        ..LsmConfig::small_for_tests()
    };
    let db = load(cfg, 6000);
    let summary = db.level_summary();
    for (i, (runs, _, _)) in summary.iter().enumerate() {
        let cap = if i == 0 {
            LsmConfig::small_for_tests().l0_run_cap.max(caps[0])
        } else {
            caps.get(i).copied().unwrap_or(1)
        };
        assert!(*runs <= cap, "L{i}: {runs} runs > cap {cap} ({summary:?})");
    }
    check_all_present(&db, 6000, 31);
}

#[test]
fn prefetch_after_compaction_readmits_hot_blocks() {
    let n = 3000;
    let cfg = LsmConfig {
        prefetch_after_compaction: true,
        cache_bytes: 8 << 20,
        ..LsmConfig::small_for_tests()
    };
    let db = Db::open_in_memory(cfg).unwrap();
    for i in 0..n {
        db.put(key(i), value(i)).unwrap();
    }
    // heat up a narrow range so the heat map has a signal
    for _ in 0..50 {
        for i in 100..120u32 {
            db.get(&key(i)).unwrap();
        }
    }
    // force compactions that rewrite the hot range
    for i in 0..n {
        db.put(key(i), value(i)).unwrap();
    }
    let s = db.stats().snapshot();
    assert!(
        s.prefetched_blocks > 0,
        "prefetch never fired (compactions: {})",
        s.compactions
    );
}

#[test]
fn io_attribution_covers_all_categories() {
    let cfg = LsmConfig {
        range_filter: RangeFilterKind::Rosetta,
        ..LsmConfig::small_for_tests()
    };
    let db = load(cfg, 3000);
    db.scan(key(0)..key(100), 1000).unwrap();
    let io = db.io_stats();
    assert!(io.category(IoCategory::Data).written_blocks > 0);
    assert!(io.category(IoCategory::Filter).written_blocks > 0);
    assert!(io.category(IoCategory::Index).written_blocks > 0);
    assert!(io.category(IoCategory::Wal).written_blocks > 0);
    assert!(io.category(IoCategory::Misc).written_blocks > 0);
}

#[test]
fn simulated_time_advances_with_latency_profile() {
    let cfg = LsmConfig {
        wal: false,
        ..LsmConfig::small_for_tests()
    };
    let db = Db::open_simulated(cfg, DeviceProfile::nvme_ssd()).unwrap();
    for i in 0..2000u32 {
        db.put(key(i), value(i)).unwrap();
    }
    let t = db.device().latency().clock().now_ns();
    assert!(t > 0, "simulated clock did not advance");
}

#[test]
fn empty_db_operations() {
    let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
    assert_eq!(db.get(b"anything").unwrap(), None);
    assert!(db.scan(b"a".to_vec()..b"z".to_vec(), 10).unwrap().is_empty());
    db.flush().unwrap();
    db.compact().unwrap();
    assert_eq!(db.total_runs(), 0);
    db.delete(b"ghost".to_vec()).unwrap();
    assert_eq!(db.get(b"ghost").unwrap(), None);
}
