//! Snapshot isolation: a snapshot's view never changes, no matter how
//! many writes, flushes, and compactions happen after it — including
//! compactions that physically supersede every file the snapshot reads.

use lsm_core::config::KvSeparation;
use lsm_core::{Db, LsmConfig, MergeLayout};

fn key(i: u32) -> Vec<u8> {
    format!("user{i:08}").into_bytes()
}

#[test]
fn snapshot_is_isolated_from_later_writes() {
    let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
    for i in 0..500u32 {
        db.put(key(i), format!("v1-{i}").into_bytes()).unwrap();
    }
    let snap = db.snapshot().unwrap();
    // overwrite, delete, and add new keys afterwards
    for i in 0..500u32 {
        db.put(key(i), format!("v2-{i}").into_bytes()).unwrap();
    }
    for i in (0..500u32).step_by(3) {
        db.delete(key(i)).unwrap();
    }
    for i in 500..800u32 {
        db.put(key(i), b"new".to_vec()).unwrap();
    }
    // the snapshot still sees exactly the v1 state
    for i in (0..500u32).step_by(7) {
        assert_eq!(
            snap.get(&key(i)).unwrap(),
            Some(format!("v1-{i}").into_bytes()),
            "key {i}"
        );
    }
    assert_eq!(snap.get(&key(600)).unwrap(), None, "later insert visible");
    let scanned = snap.scan(key(0)..key(1000), usize::MAX).unwrap();
    assert_eq!(scanned.len(), 500);
    assert_eq!(scanned[0].1, b"v1-0".to_vec());
    // while the live view moved on
    assert_eq!(db.get(&key(1)).unwrap(), Some(b"v2-1".to_vec()));
    assert_eq!(db.get(&key(0)).unwrap(), None);
}

#[test]
fn snapshot_survives_full_compaction_of_its_files() {
    let db = Db::open_in_memory(LsmConfig {
        layout: MergeLayout::Leveled,
        ..LsmConfig::small_for_tests()
    })
    .unwrap();
    for i in 0..2000u32 {
        db.put(key(i), format!("old-{i}").into_bytes()).unwrap();
    }
    db.flush().unwrap();
    let snap = db.snapshot().unwrap();
    let files_before = db.device().live_files().len();
    // rewrite everything and major-compact: every file the snapshot uses
    // is superseded
    for i in 0..2000u32 {
        db.put(key(i), format!("new-{i}").into_bytes()).unwrap();
    }
    db.major_compact().unwrap();
    // snapshot reads still work, off the superseded (still-alive) files
    for i in (0..2000u32).step_by(97) {
        assert_eq!(
            snap.get(&key(i)).unwrap(),
            Some(format!("old-{i}").into_bytes()),
            "key {i} after compaction"
        );
    }
    let scanned = snap.scan(key(100)..key(120), 100).unwrap();
    assert_eq!(scanned.len(), 20);
    assert!(scanned.iter().all(|(_, v)| v.starts_with(b"old-")));
    // dropping the snapshot releases the superseded files
    drop(snap);
    let files_after = db.device().live_files().len();
    assert!(
        files_after < files_before,
        "superseded files not reclaimed: {files_after} vs {files_before}"
    );
    // live view unaffected
    assert_eq!(db.get(&key(5)).unwrap(), Some(b"new-5".to_vec()));
}

#[test]
fn snapshot_resolves_separated_values_without_the_engine() {
    let db = Db::open_in_memory(LsmConfig {
        kv_separation: Some(KvSeparation {
            min_value_bytes: 64,
        }),
        ..LsmConfig::small_for_tests()
    })
    .unwrap();
    let big = vec![0x5A; 300];
    for i in 0..100u32 {
        db.put(key(i), big.clone()).unwrap();
    }
    let snap = db.snapshot().unwrap();
    // churn the live engine
    for i in 0..100u32 {
        db.put(key(i), vec![0xB6; 300]).unwrap();
    }
    // value-log GC must refuse while the snapshot is alive…
    assert!(db.gc_value_log().is_err(), "GC must refuse with live snapshots");
    for i in (0..100u32).step_by(9) {
        assert_eq!(snap.get(&key(i)).unwrap(), Some(big.clone()), "key {i}");
    }
    // …and proceed once it drops
    drop(snap);
    let (live, dead) = db.gc_value_log().unwrap();
    assert!(live + dead > 0);
    assert_eq!(db.get(&key(3)).unwrap(), Some(vec![0xB6; 300]));
}

#[test]
fn many_concurrent_snapshots() {
    let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
    let mut snaps = Vec::new();
    for gen in 0..5u32 {
        for i in 0..300u32 {
            db.put(key(i), format!("g{gen}-{i}").into_bytes()).unwrap();
        }
        snaps.push((gen, db.snapshot().unwrap()));
    }
    db.major_compact().unwrap();
    for (gen, snap) in &snaps {
        for i in (0..300u32).step_by(41) {
            assert_eq!(
                snap.get(&key(i)).unwrap(),
                Some(format!("g{gen}-{i}").into_bytes()),
                "generation {gen}, key {i}"
            );
        }
    }
}
