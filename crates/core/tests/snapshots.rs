//! Snapshot isolation: a snapshot's view never changes, no matter how
//! many writes, flushes, and compactions happen after it — including
//! compactions that physically supersede every file the snapshot reads.

use lsm_core::config::KvSeparation;
use lsm_core::{Db, LsmConfig, MergeLayout};

fn key(i: u32) -> Vec<u8> {
    format!("user{i:08}").into_bytes()
}

#[test]
fn snapshot_is_isolated_from_later_writes() {
    let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
    for i in 0..500u32 {
        db.put(key(i), format!("v1-{i}").into_bytes()).unwrap();
    }
    let snap = db.snapshot().unwrap();
    // overwrite, delete, and add new keys afterwards
    for i in 0..500u32 {
        db.put(key(i), format!("v2-{i}").into_bytes()).unwrap();
    }
    for i in (0..500u32).step_by(3) {
        db.delete(key(i)).unwrap();
    }
    for i in 500..800u32 {
        db.put(key(i), b"new".to_vec()).unwrap();
    }
    // the snapshot still sees exactly the v1 state
    for i in (0..500u32).step_by(7) {
        assert_eq!(
            snap.get(&key(i)).unwrap(),
            Some(format!("v1-{i}").into_bytes()),
            "key {i}"
        );
    }
    assert_eq!(snap.get(&key(600)).unwrap(), None, "later insert visible");
    let scanned = snap.scan(key(0)..key(1000), usize::MAX).unwrap();
    assert_eq!(scanned.len(), 500);
    assert_eq!(scanned[0].1, b"v1-0".to_vec());
    // while the live view moved on
    assert_eq!(db.get(&key(1)).unwrap(), Some(b"v2-1".to_vec()));
    assert_eq!(db.get(&key(0)).unwrap(), None);
}

#[test]
fn snapshot_survives_full_compaction_of_its_files() {
    let db = Db::open_in_memory(LsmConfig {
        layout: MergeLayout::Leveled,
        ..LsmConfig::small_for_tests()
    })
    .unwrap();
    for i in 0..2000u32 {
        db.put(key(i), format!("old-{i}").into_bytes()).unwrap();
    }
    db.flush().unwrap();
    let snap = db.snapshot().unwrap();
    let files_before = db.device().live_files().len();
    // rewrite everything and major-compact: every file the snapshot uses
    // is superseded
    for i in 0..2000u32 {
        db.put(key(i), format!("new-{i}").into_bytes()).unwrap();
    }
    db.major_compact().unwrap();
    // snapshot reads still work, off the superseded (still-alive) files
    for i in (0..2000u32).step_by(97) {
        assert_eq!(
            snap.get(&key(i)).unwrap(),
            Some(format!("old-{i}").into_bytes()),
            "key {i} after compaction"
        );
    }
    let scanned = snap.scan(key(100)..key(120), 100).unwrap();
    assert_eq!(scanned.len(), 20);
    assert!(scanned.iter().all(|(_, v)| v.starts_with(b"old-")));
    // dropping the snapshot releases the superseded files
    drop(snap);
    let files_after = db.device().live_files().len();
    assert!(
        files_after < files_before,
        "superseded files not reclaimed: {files_after} vs {files_before}"
    );
    // live view unaffected
    assert_eq!(db.get(&key(5)).unwrap(), Some(b"new-5".to_vec()));
}

#[test]
fn snapshot_resolves_separated_values_without_the_engine() {
    let db = Db::open_in_memory(LsmConfig {
        kv_separation: Some(KvSeparation {
            min_value_bytes: 64,
        }),
        ..LsmConfig::small_for_tests()
    })
    .unwrap();
    let big = vec![0x5A; 300];
    for i in 0..100u32 {
        db.put(key(i), big.clone()).unwrap();
    }
    let snap = db.snapshot().unwrap();
    // churn the live engine
    for i in 0..100u32 {
        db.put(key(i), vec![0xB6; 300]).unwrap();
    }
    // value-log GC must refuse while the snapshot is alive…
    assert!(db.gc_value_log().is_err(), "GC must refuse with live snapshots");
    for i in (0..100u32).step_by(9) {
        assert_eq!(snap.get(&key(i)).unwrap(), Some(big.clone()), "key {i}");
    }
    // …and proceed once it drops
    drop(snap);
    let (live, dead) = db.gc_value_log().unwrap();
    assert!(live + dead > 0);
    assert_eq!(db.get(&key(3)).unwrap(), Some(vec![0xB6; 300]));
}

#[test]
fn txn_reads_consistently_across_rotation_and_compaction() {
    // small buffer: the churn below rotates the memtable many times
    let db = Db::open_in_memory(LsmConfig {
        buffer_bytes: 2 << 10,
        layout: MergeLayout::Leveled,
        ..LsmConfig::small_for_tests()
    })
    .unwrap();
    for i in 0..400u32 {
        db.put(key(i), format!("v1-{i}").into_bytes()).unwrap();
    }
    let mut txn = db.begin_txn().unwrap();
    for i in (0..400u32).step_by(11) {
        assert_eq!(
            txn.get(&key(i)).unwrap(),
            Some(format!("v1-{i}").into_bytes())
        );
    }
    // churn the live engine hard enough to flush and fully compact away
    // every file the transaction's snapshot reads
    for gen in 2..5u32 {
        for i in 0..400u32 {
            db.put(key(i), format!("v{gen}-{i}").into_bytes()).unwrap();
        }
    }
    db.flush().unwrap();
    db.major_compact().unwrap();
    // the transaction still reads its snapshot, not the churned state
    for i in (0..400u32).step_by(11) {
        assert_eq!(
            txn.get(&key(i)).unwrap(),
            Some(format!("v1-{i}").into_bytes()),
            "key {i} moved under the transaction"
        );
    }
    // …but first-committer-wins knows those reads are stale
    match txn.commit() {
        Err(lsm_core::TxnError::Conflict(_)) => {}
        other => panic!("stale txn must conflict, got {other:?}"),
    }
    assert_eq!(db.get(&key(0)).unwrap(), Some(b"v4-0".to_vec()));
}

#[test]
fn dropping_the_last_txn_releases_its_snapshot_pin() {
    let db = Db::open_in_memory(LsmConfig {
        kv_separation: Some(KvSeparation {
            min_value_bytes: 64,
        }),
        ..LsmConfig::small_for_tests()
    })
    .unwrap();
    let big = vec![0x5A; 300];
    for i in 0..100u32 {
        db.put(key(i), big.clone()).unwrap();
    }
    let mut a = db.begin_txn().unwrap();
    let mut b = db.begin_txn().unwrap();
    assert_eq!(a.get(&key(7)).unwrap(), Some(big.clone()));
    assert_eq!(b.get(&key(7)).unwrap(), Some(big.clone()));
    // rewrite everything: the old value-log slots are now garbage — but
    // pinned garbage while either transaction lives
    for i in 0..100u32 {
        db.put(key(i), vec![0xB6; 300]).unwrap();
    }
    assert!(db.gc_value_log().is_err(), "GC must refuse with live txns");
    drop(a);
    assert!(
        db.gc_value_log().is_err(),
        "one dropped txn is not enough — b still pins the snapshot"
    );
    b.abort();
    let (live, dead) = db.gc_value_log().unwrap();
    assert!(live + dead > 0, "GC must run once the last txn drops");
    assert_eq!(db.get(&key(3)).unwrap(), Some(vec![0xB6; 300]));
}

#[test]
fn committing_a_txn_releases_its_snapshot_pin() {
    let db = Db::open_in_memory(LsmConfig {
        kv_separation: Some(KvSeparation {
            min_value_bytes: 64,
        }),
        ..LsmConfig::small_for_tests()
    })
    .unwrap();
    for i in 0..50u32 {
        db.put(key(i), vec![0x11; 200]).unwrap();
    }
    let mut txn = db.begin_txn().unwrap();
    assert_eq!(txn.get(&key(9)).unwrap(), Some(vec![0x11; 200]));
    txn.put(key(9), vec![0x22; 200]);
    assert!(db.gc_value_log().is_err(), "GC must refuse mid-txn");
    txn.commit().expect("uncontended commit");
    for i in 0..50u32 {
        db.put(key(i), vec![0x33; 200]).unwrap();
    }
    db.gc_value_log()
        .expect("commit must release the snapshot pin");
    assert_eq!(db.get(&key(9)).unwrap(), Some(vec![0x33; 200]));
}

#[test]
fn many_concurrent_snapshots() {
    let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
    let mut snaps = Vec::new();
    for gen in 0..5u32 {
        for i in 0..300u32 {
            db.put(key(i), format!("g{gen}-{i}").into_bytes()).unwrap();
        }
        snaps.push((gen, db.snapshot().unwrap()));
    }
    db.major_compact().unwrap();
    for (gen, snap) in &snaps {
        for i in (0..300u32).step_by(41) {
            assert_eq!(
                snap.get(&key(i)).unwrap(),
                Some(format!("g{gen}-{i}").into_bytes()),
                "generation {gen}, key {i}"
            );
        }
    }
}
