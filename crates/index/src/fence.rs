//! Fence pointers: the classic LSM block index (tutorial Module II.1).
//!
//! Stores the *last* key of every data block. A lookup binary-searches the
//! fences and reads exactly one block — turning the per-run storage search
//! from O(log blocks) I/Os into one I/O, which is the reason every LSM
//! engine ships them (they are a special form of Moerkotte's Zonemaps /
//! small materialized aggregates).
//!
//! Layout: instead of a `Vec<Vec<u8>>` (one heap object and one pointer
//! chase per probed fence), the keys live concatenated in a single byte
//! buffer addressed by a `u32` offset array, with an 8-byte big-endian
//! prefix of each key pre-extracted into a contiguous `u64` array. The
//! binary search compares register-width prefixes with no indirection and
//! touches actual key bytes only on a prefix tie — the cache-friendly
//! fence layout production engines use.

use std::cmp::Ordering;

use crate::traits::BlockLocator;

/// Big-endian 8-byte prefix, zero-padded: preserves byte-wise key order,
/// so `prefix(a) < prefix(b)` implies `a < b` and only equal prefixes
/// need a full compare.
fn prefix8(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(buf)
}

/// Fence pointers over one sorted run.
#[derive(Clone, Debug)]
pub struct FencePointers {
    /// First key of the run (min key), for range pruning.
    first_key: Vec<u8>,
    /// Concatenated last-key bytes of every block, in block order.
    bytes: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` bounds key `i`; length is `blocks + 1`.
    offsets: Vec<u32>,
    /// 8-byte big-endian prefix of each key — the binary search's hot array.
    prefixes: Vec<u64>,
}

impl FencePointers {
    /// Builds from the last key of each block plus the run's first key.
    pub fn new(first_key: Vec<u8>, last_keys: Vec<Vec<u8>>) -> Self {
        debug_assert!(last_keys.windows(2).all(|w| w[0] <= w[1]), "fences must be sorted");
        let total: usize = last_keys.iter().map(|k| k.len()).sum();
        let mut bytes = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(last_keys.len() + 1);
        let mut prefixes = Vec::with_capacity(last_keys.len());
        offsets.push(0u32);
        for k in &last_keys {
            bytes.extend_from_slice(k);
            offsets.push(bytes.len() as u32);
            prefixes.push(prefix8(k));
        }
        FencePointers {
            first_key,
            bytes,
            offsets,
            prefixes,
        }
    }

    /// Builds by sampling block boundaries from an iterator of
    /// `(block_index, last_key)` pairs produced by an SSTable builder.
    pub fn from_boundaries(first_key: Vec<u8>, boundaries: impl IntoIterator<Item = Vec<u8>>) -> Self {
        Self::new(first_key, boundaries.into_iter().collect())
    }

    fn key_at(&self, i: usize) -> &[u8] {
        &self.bytes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// First fence index whose key is ≥ `key` (i.e. the block that would
    /// hold `key`); `num_blocks()` when every fence is smaller.
    fn lower_bound(&self, key: &[u8]) -> usize {
        let kp = prefix8(key);
        let mut lo = 0usize;
        let mut len = self.prefixes.len();
        while len > 0 {
            let half = len / 2;
            let mid = lo + half;
            // register-width compare on the contiguous prefix array;
            // key bytes are touched only when the prefixes tie
            let fence_is_less = match self.prefixes[mid].cmp(&kp) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => self.key_at(mid) < key,
            };
            if fence_is_less {
                lo = mid + 1;
                len -= half + 1;
            } else {
                len = half;
            }
        }
        lo
    }

    /// The run's smallest key.
    pub fn first_key(&self) -> &[u8] {
        &self.first_key
    }

    /// The run's largest key.
    pub fn last_key(&self) -> Option<&[u8]> {
        let n = self.prefixes.len();
        (n > 0).then(|| self.key_at(n - 1))
    }

    /// Whether `key` falls outside `[first_key, last_key]`.
    pub fn out_of_range(&self, key: &[u8]) -> bool {
        match self.last_key() {
            None => true,
            Some(last) => key < self.first_key.as_slice() || key > last,
        }
    }

    /// Serializes to bytes (stored in the SSTable index block).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.first_key.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.first_key);
        out.extend_from_slice(&(self.prefixes.len() as u32).to_le_bytes());
        for i in 0..self.prefixes.len() {
            let k = self.key_at(i);
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
        }
        out
    }

    /// Deserializes from [`FencePointers::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut off = 0usize;
        let read_u32 = |bytes: &[u8], off: &mut usize| -> Option<u32> {
            let v = u32::from_le_bytes(bytes.get(*off..*off + 4)?.try_into().ok()?);
            *off += 4;
            Some(v)
        };
        let fk_len = read_u32(bytes, &mut off)? as usize;
        let first_key = bytes.get(off..off + fk_len)?.to_vec();
        off += fk_len;
        let n = read_u32(bytes, &mut off)? as usize;
        let mut key_bytes = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut prefixes = Vec::with_capacity(n);
        offsets.push(0u32);
        for _ in 0..n {
            let len = read_u32(bytes, &mut off)? as usize;
            let k = bytes.get(off..off + len)?;
            off += len;
            key_bytes.extend_from_slice(k);
            offsets.push(key_bytes.len() as u32);
            prefixes.push(prefix8(k));
        }
        Some(FencePointers {
            first_key,
            bytes: key_bytes,
            offsets,
            prefixes,
        })
    }
}

impl BlockLocator for FencePointers {
    fn locate(&self, key: &[u8]) -> Option<usize> {
        if self.out_of_range(key) {
            return None;
        }
        // first block whose last key ≥ key holds the key if present
        let idx = self.lower_bound(key);
        (idx < self.prefixes.len()).then_some(idx)
    }

    fn locate_lower_bound(&self, key: &[u8]) -> Option<usize> {
        let idx = self.lower_bound(key);
        (idx < self.prefixes.len()).then_some(idx)
    }

    fn num_blocks(&self) -> usize {
        self.prefixes.len()
    }

    fn size_bits(&self) -> usize {
        // same accounting as the serialized form: per-key bytes + u32
        // length, plus the first key and its length fields
        let bytes = self.bytes.len() + 4 * self.prefixes.len();
        (bytes + self.first_key.len() + 8) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten blocks; block i covers keys [i*100, i*100+99].
    fn sample() -> FencePointers {
        let last_keys = (0..10)
            .map(|i| format!("{:06}", i * 100 + 99).into_bytes())
            .collect();
        FencePointers::new(b"000000".to_vec(), last_keys)
    }

    #[test]
    fn locates_containing_block() {
        let f = sample();
        assert_eq!(f.locate(b"000000"), Some(0));
        assert_eq!(f.locate(b"000099"), Some(0));
        assert_eq!(f.locate(b"000100"), Some(1));
        assert_eq!(f.locate(b"000523"), Some(5));
        assert_eq!(f.locate(b"000999"), Some(9));
    }

    #[test]
    fn out_of_range_is_pruned() {
        let f = sample();
        assert_eq!(f.locate(b"001000"), None);
        assert!(f.out_of_range(b"001000"));
        assert!(!f.out_of_range(b"000500"));
        // below the first key: technically out of range
        let g = FencePointers::new(b"000100".to_vec(), vec![b"000199".to_vec()]);
        assert_eq!(g.locate(b"000050"), None);
    }

    #[test]
    fn lower_bound_for_scans() {
        let f = sample();
        assert_eq!(f.locate_lower_bound(b"000000"), Some(0));
        assert_eq!(f.locate_lower_bound(b"000150"), Some(1));
        assert_eq!(f.locate_lower_bound(b"000999"), Some(9));
        assert_eq!(f.locate_lower_bound(b"001000"), None);
        // a key below the run's range starts at block 0
        assert_eq!(f.locate_lower_bound(b""), Some(0));
    }

    #[test]
    fn boundary_exactness() {
        // key equal to a block's last key must land in that block, not the next
        let f = sample();
        assert_eq!(f.locate(b"000299"), Some(2));
        assert_eq!(f.locate(b"000300"), Some(3));
    }

    #[test]
    fn empty_run() {
        let f = FencePointers::new(vec![], vec![]);
        assert_eq!(f.locate(b"x"), None);
        assert_eq!(f.locate_lower_bound(b"x"), None);
        assert_eq!(f.num_blocks(), 0);
        assert!(f.out_of_range(b"anything"));
    }

    #[test]
    fn serialization_roundtrip() {
        let f = sample();
        let g = FencePointers::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(g.num_blocks(), f.num_blocks());
        assert_eq!(g.first_key(), f.first_key());
        for probe in ["000000", "000450", "000999", "001000"] {
            assert_eq!(f.locate(probe.as_bytes()), g.locate(probe.as_bytes()));
        }
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let f = sample();
        let bytes = f.to_bytes();
        assert!(FencePointers::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(FencePointers::from_bytes(&[]).is_none());
    }

    #[test]
    fn size_scales_with_blocks() {
        let f = sample();
        let one = FencePointers::new(b"000000".to_vec(), vec![b"000099".to_vec()]);
        assert!(f.size_bits() > one.size_bits() * 4);
    }

    #[test]
    fn keys_sharing_an_8_byte_prefix_still_order_correctly() {
        // all fences share the first 8 bytes: every probe is a prefix tie,
        // forcing the memcmp fallback
        let last_keys: Vec<Vec<u8>> = (0..16u32)
            .map(|i| format!("sameprefix{i:04}").into_bytes())
            .collect();
        let f = FencePointers::new(b"sameprefix0000".to_vec(), last_keys.clone());
        for (i, k) in last_keys.iter().enumerate() {
            assert_eq!(f.locate(k), Some(i), "exact fence key {i}");
        }
        assert_eq!(f.locate(b"sameprefix0007x"), Some(8));
        assert_eq!(f.locate(b"sameprefix9999"), None);
    }

    #[test]
    fn short_keys_and_prefix_padding() {
        // keys shorter than 8 bytes exercise the zero-padded prefix path;
        // "ab" must sort before "ab\0...\0nonzero" style neighbors
        let f = FencePointers::new(
            b"a".to_vec(),
            vec![b"ab".to_vec(), b"abc".to_vec(), b"b".to_vec()],
        );
        assert_eq!(f.locate(b"ab"), Some(0));
        assert_eq!(f.locate(b"abb"), Some(1));
        assert_eq!(f.locate(b"abc"), Some(1));
        assert_eq!(f.locate(b"abd"), Some(2));
        assert_eq!(f.locate(b"b"), Some(2));
    }
}
