//! Fence pointers: the classic LSM block index (tutorial Module II.1).
//!
//! Stores the *last* key of every data block. A lookup binary-searches the
//! fences and reads exactly one block — turning the per-run storage search
//! from O(log blocks) I/Os into one I/O, which is the reason every LSM
//! engine ships them (they are a special form of Moerkotte's Zonemaps /
//! small materialized aggregates).

use crate::traits::BlockLocator;

/// Fence pointers over one sorted run.
#[derive(Clone, Debug)]
pub struct FencePointers {
    /// Last key of each block, in block order.
    last_keys: Vec<Vec<u8>>,
    /// First key of the run (min key), for range pruning.
    first_key: Vec<u8>,
}

impl FencePointers {
    /// Builds from the last key of each block plus the run's first key.
    pub fn new(first_key: Vec<u8>, last_keys: Vec<Vec<u8>>) -> Self {
        debug_assert!(last_keys.windows(2).all(|w| w[0] <= w[1]), "fences must be sorted");
        FencePointers {
            last_keys,
            first_key,
        }
    }

    /// Builds by sampling block boundaries from an iterator of
    /// `(block_index, last_key)` pairs produced by an SSTable builder.
    pub fn from_boundaries(first_key: Vec<u8>, boundaries: impl IntoIterator<Item = Vec<u8>>) -> Self {
        Self::new(first_key, boundaries.into_iter().collect())
    }

    /// The run's smallest key.
    pub fn first_key(&self) -> &[u8] {
        &self.first_key
    }

    /// The run's largest key.
    pub fn last_key(&self) -> Option<&[u8]> {
        self.last_keys.last().map(|k| k.as_slice())
    }

    /// Whether `key` falls outside `[first_key, last_key]`.
    pub fn out_of_range(&self, key: &[u8]) -> bool {
        match self.last_key() {
            None => true,
            Some(last) => key < self.first_key.as_slice() || key > last,
        }
    }

    /// Serializes to bytes (stored in the SSTable index block).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.first_key.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.first_key);
        out.extend_from_slice(&(self.last_keys.len() as u32).to_le_bytes());
        for k in &self.last_keys {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
        }
        out
    }

    /// Deserializes from [`FencePointers::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut off = 0usize;
        let read_u32 = |bytes: &[u8], off: &mut usize| -> Option<u32> {
            let v = u32::from_le_bytes(bytes.get(*off..*off + 4)?.try_into().ok()?);
            *off += 4;
            Some(v)
        };
        let fk_len = read_u32(bytes, &mut off)? as usize;
        let first_key = bytes.get(off..off + fk_len)?.to_vec();
        off += fk_len;
        let n = read_u32(bytes, &mut off)? as usize;
        let mut last_keys = Vec::with_capacity(n);
        for _ in 0..n {
            let len = read_u32(bytes, &mut off)? as usize;
            last_keys.push(bytes.get(off..off + len)?.to_vec());
            off += len;
        }
        Some(FencePointers {
            last_keys,
            first_key,
        })
    }
}

impl BlockLocator for FencePointers {
    fn locate(&self, key: &[u8]) -> Option<usize> {
        if self.out_of_range(key) {
            return None;
        }
        // first block whose last key ≥ key holds the key if present
        let idx = self
            .last_keys
            .partition_point(|last| last.as_slice() < key);
        (idx < self.last_keys.len()).then_some(idx)
    }

    fn locate_lower_bound(&self, key: &[u8]) -> Option<usize> {
        let idx = self
            .last_keys
            .partition_point(|last| last.as_slice() < key);
        (idx < self.last_keys.len()).then_some(idx)
    }

    fn num_blocks(&self) -> usize {
        self.last_keys.len()
    }

    fn size_bits(&self) -> usize {
        let bytes: usize = self.last_keys.iter().map(|k| k.len() + 4).sum();
        (bytes + self.first_key.len() + 8) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten blocks; block i covers keys [i*100, i*100+99].
    fn sample() -> FencePointers {
        let last_keys = (0..10)
            .map(|i| format!("{:06}", i * 100 + 99).into_bytes())
            .collect();
        FencePointers::new(b"000000".to_vec(), last_keys)
    }

    #[test]
    fn locates_containing_block() {
        let f = sample();
        assert_eq!(f.locate(b"000000"), Some(0));
        assert_eq!(f.locate(b"000099"), Some(0));
        assert_eq!(f.locate(b"000100"), Some(1));
        assert_eq!(f.locate(b"000523"), Some(5));
        assert_eq!(f.locate(b"000999"), Some(9));
    }

    #[test]
    fn out_of_range_is_pruned() {
        let f = sample();
        assert_eq!(f.locate(b"001000"), None);
        assert!(f.out_of_range(b"001000"));
        assert!(!f.out_of_range(b"000500"));
        // below the first key: technically out of range
        let g = FencePointers::new(b"000100".to_vec(), vec![b"000199".to_vec()]);
        assert_eq!(g.locate(b"000050"), None);
    }

    #[test]
    fn lower_bound_for_scans() {
        let f = sample();
        assert_eq!(f.locate_lower_bound(b"000000"), Some(0));
        assert_eq!(f.locate_lower_bound(b"000150"), Some(1));
        assert_eq!(f.locate_lower_bound(b"000999"), Some(9));
        assert_eq!(f.locate_lower_bound(b"001000"), None);
        // a key below the run's range starts at block 0
        assert_eq!(f.locate_lower_bound(b""), Some(0));
    }

    #[test]
    fn boundary_exactness() {
        // key equal to a block's last key must land in that block, not the next
        let f = sample();
        assert_eq!(f.locate(b"000299"), Some(2));
        assert_eq!(f.locate(b"000300"), Some(3));
    }

    #[test]
    fn empty_run() {
        let f = FencePointers::new(vec![], vec![]);
        assert_eq!(f.locate(b"x"), None);
        assert_eq!(f.locate_lower_bound(b"x"), None);
        assert_eq!(f.num_blocks(), 0);
        assert!(f.out_of_range(b"anything"));
    }

    #[test]
    fn serialization_roundtrip() {
        let f = sample();
        let g = FencePointers::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(g.num_blocks(), f.num_blocks());
        assert_eq!(g.first_key(), f.first_key());
        for probe in ["000000", "000450", "000999", "001000"] {
            assert_eq!(f.locate(probe.as_bytes()), g.locate(probe.as_bytes()));
        }
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let f = sample();
        let bytes = f.to_bytes();
        assert!(FencePointers::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(FencePointers::from_bytes(&[]).is_none());
    }

    #[test]
    fn size_scales_with_blocks() {
        let f = sample();
        let one = FencePointers::new(b"000000".to_vec(), vec![b"000099".to_vec()]);
        assert!(f.size_bits() > one.size_bits() * 4);
    }
}
