//! RadixSpline-style learned index (Kipf et al., aiDM '20; tutorial
//! Module II.4).
//!
//! Single-pass greedy spline over `(key, block)` points with a bounded
//! error corridor, topped by a radix table that maps the high bits of a
//! key straight to the covering spline-knot range — replacing the binary
//! search over knots with one table access. Built in one pass with no
//! insert support, which the tutorial notes is a perfect match for
//! immutable LSM runs (low training time, read-only use).

use crate::learned::{common_prefix_len, key_to_u64_skipping};
use crate::traits::BlockLocator;

/// A spline knot: `(key, block)` control point.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Knot {
    key: u64,
    block: f64,
}

/// A RadixSpline-style learned block index.
#[derive(Clone, Debug)]
pub struct RadixSplineIndex {
    knots: Vec<Knot>,
    /// `radix[p]` = index of the first knot whose shifted key ≥ `p`.
    radix: Vec<u32>,
    radix_bits: u32,
    shift: u32,
    min_key: u64,
    max_key: u64,
    epsilon: usize,
    num_blocks: usize,
    /// Common-prefix bytes stripped before the u64 map (0 for raw builds).
    prefix_skip: usize,
    /// Raw key bounds for out-of-range pruning (empty for raw builds).
    min_key_raw: Vec<u8>,
    max_key_raw: Vec<u8>,
}

impl RadixSplineIndex {
    /// Builds from sorted block-boundary byte keys.
    pub fn build(last_keys: &[Vec<u8>], radix_bits: u32, epsilon: usize) -> Self {
        let skip = common_prefix_len(last_keys);
        let points: Vec<u64> = last_keys
            .iter()
            .map(|k| key_to_u64_skipping(k, skip))
            .collect();
        let mut idx = Self::build_from_u64(&points, radix_bits, epsilon);
        idx.prefix_skip = skip;
        idx.min_key_raw = last_keys.first().cloned().unwrap_or_default();
        idx.max_key_raw = last_keys.last().cloned().unwrap_or_default();
        idx
    }

    /// Builds from sorted u64 block-boundary keys.
    ///
    /// `radix_bits` is a cap: the table is sized to at most ~2 entries per
    /// block so a small run never carries a disproportionate radix table.
    pub fn build_from_u64(points: &[u64], radix_bits: u32, epsilon: usize) -> Self {
        let adaptive = (points.len().max(1) as u64 * 2).next_power_of_two().ilog2();
        let radix_bits = radix_bits.min(adaptive).clamp(1, 24);
        let epsilon = epsilon.max(1);
        let n = points.len();
        if n == 0 {
            return RadixSplineIndex {
                knots: vec![],
                radix: vec![0, 0],
                radix_bits,
                shift: 64 - radix_bits,
                min_key: 0,
                max_key: 0,
                epsilon,
                num_blocks: 0,
                prefix_skip: 0,
                min_key_raw: Vec::new(),
                max_key_raw: Vec::new(),
            };
        }
        let knots = Self::greedy_spline(points, epsilon as f64);
        let min_key = points[0];
        let max_key = points[n - 1];
        // radix table over the key's high bits (relative to nothing — the
        // original uses the raw key prefix; we do the same)
        let shift = 64 - radix_bits;
        let table_len = (1usize << radix_bits) + 1;
        let mut radix = vec![u32::MAX; table_len];
        for (i, k) in knots.iter().enumerate() {
            let p = (k.key >> shift) as usize;
            if radix[p] == u32::MAX {
                radix[p] = i as u32;
            }
        }
        // back-fill: entry p = first knot with prefix ≥ p
        let mut next = knots.len() as u32;
        for slot in radix.iter_mut().rev() {
            if *slot == u32::MAX {
                *slot = next;
            } else {
                next = *slot;
            }
        }
        let mut idx = RadixSplineIndex {
            knots,
            radix,
            radix_bits,
            shift,
            min_key,
            max_key,
            epsilon,
            num_blocks: n,
            prefix_skip: 0,
            min_key_raw: Vec::new(),
            max_key_raw: Vec::new(),
        };
        // soundness: widen ε to the measured maximum training error
        idx.epsilon = idx.epsilon.max(idx.max_error(points));
        idx
    }

    /// Greedy spline fitting (the GreedySplineCorridor of RadixSpline).
    ///
    /// A point `j` is accepted into the current segment iff its exact chord
    /// slope from the base knot lies inside the corridor — the intersection
    /// of every earlier point's `±eps` slope interval. That invariant is
    /// what guarantees the committed chord deviates ≤ eps at every
    /// intermediate point.
    fn greedy_spline(points: &[u64], eps: f64) -> Vec<Knot> {
        let n = points.len();
        let mut knots = vec![Knot {
            key: points[0],
            block: 0.0,
        }];
        if n == 1 {
            return knots;
        }
        let mut base = 0usize; // index of the last committed knot
        let mut lo_slope = f64::NEG_INFINITY;
        let mut hi_slope = f64::INFINITY;
        let mut prev = 0usize; // last accepted point
        let mut j = 1usize;
        while j < n {
            let dx = (points[j] - points[base]) as f64;
            let dy = (j - base) as f64;
            let accept = if dx == 0.0 {
                dy <= eps // duplicate model key: representable while close
            } else {
                let s = dy / dx;
                s >= lo_slope && s <= hi_slope
            };
            if accept {
                if dx > 0.0 {
                    lo_slope = lo_slope.max((dy - eps) / dx);
                    hi_slope = hi_slope.min((dy + eps) / dx);
                }
                prev = j;
                j += 1;
            } else {
                // commit a knot at the last accepted point and retry j
                knots.push(Knot {
                    key: points[prev],
                    block: prev as f64,
                });
                base = prev;
                lo_slope = f64::NEG_INFINITY;
                hi_slope = f64::INFINITY;
                if prev == j - 1 && points[j] == points[prev] {
                    // degenerate duplicate run longer than eps: accept the
                    // duplicate unconditionally to guarantee progress (the
                    // prediction error at a duplicate key is bounded by the
                    // run length, which the reader handles by widening)
                    prev = j;
                    j += 1;
                }
            }
        }
        // final knot at the last point
        let last = n - 1;
        if knots.last().map(|k| k.key) != Some(points[last]) {
            knots.push(Knot {
                key: points[last],
                block: last as f64,
            });
        }
        knots
    }

    /// Number of spline knots.
    pub fn num_knots(&self) -> usize {
        self.knots.len()
    }

    /// The (possibly adapted) radix-table prefix bits in use.
    pub fn radix_bits(&self) -> u32 {
        self.radix_bits
    }

    /// The error bound.
    pub fn epsilon(&self) -> usize {
        self.epsilon
    }

    /// Predicted block for a model-domain key, clamped to valid range.
    pub fn predict(&self, key: u64) -> usize {
        if self.num_blocks == 0 {
            return 0;
        }
        if self.knots.len() == 1 {
            return 0;
        }
        let k = key.clamp(self.min_key, self.max_key);
        // radix narrows the knot search range
        let p = (k >> self.shift) as usize;
        let start = self.radix[p] as usize;
        let end = self.radix[p + 1] as usize;
        let (lo_idx, hi_idx) = (start.saturating_sub(1), end.min(self.knots.len() - 1));
        // binary search within the narrowed range for the covering segment
        let slice = &self.knots[lo_idx..=hi_idx];
        let pos = slice.partition_point(|kn| kn.key <= k) + lo_idx;
        let right = pos.clamp(1, self.knots.len() - 1).min(self.knots.len() - 1);
        let left = right - 1;
        let (a, b) = (self.knots[left], self.knots[right]);
        let raw = if b.key == a.key {
            a.block
        } else {
            a.block + (b.block - a.block) * (k - a.key) as f64 / (b.key - a.key) as f64
        };
        (raw.round().max(0.0) as usize).min(self.num_blocks - 1)
    }

    /// The candidate block window `[predict-ε-1, predict+ε+1]`. The extra
    /// ±1 covers query keys between training points.
    pub fn candidate_window(&self, key: u64) -> std::ops::RangeInclusive<usize> {
        let p = self.predict(key);
        let lo = p.saturating_sub(self.epsilon + 1);
        let hi = (p + self.epsilon + 1).min(self.num_blocks.saturating_sub(1));
        lo..=hi
    }

    /// Maximum prediction error over the training points.
    pub fn max_error(&self, points: &[u64]) -> usize {
        points
            .iter()
            .enumerate()
            .map(|(i, &k)| (self.predict(k) as i64 - i as i64).unsigned_abs() as usize)
            .max()
            .unwrap_or(0)
    }
}

impl RadixSplineIndex {
    /// Maps a raw key into the model domain using the stored prefix skip.
    pub fn map_key(&self, key: &[u8]) -> u64 {
        key_to_u64_skipping(key, self.prefix_skip)
    }

    fn out_of_range(&self, key: &[u8]) -> bool {
        if !self.max_key_raw.is_empty() {
            key > self.max_key_raw.as_slice()
        } else {
            self.map_key(key) > self.max_key
        }
    }

    /// Sound candidate window for a raw byte key, or `None` when the key
    /// is provably past the run's end.
    ///
    /// Keys at or below the first fence need special care: they belong to
    /// block 0 by definition, but they may not share the fences' common
    /// prefix, so mapping them through the model could land anywhere.
    pub fn window_for(&self, key: &[u8]) -> Option<std::ops::RangeInclusive<usize>> {
        if self.num_blocks == 0 || self.out_of_range(key) {
            return None;
        }
        if !self.min_key_raw.is_empty() && key <= self.min_key_raw.as_slice() {
            return Some(0..=0);
        }
        Some(self.candidate_window(self.map_key(key)))
    }
}

impl BlockLocator for RadixSplineIndex {
    fn locate(&self, key: &[u8]) -> Option<usize> {
        self.window_for(key).map(|w| *w.start())
    }

    fn locate_lower_bound(&self, key: &[u8]) -> Option<usize> {
        self.window_for(key).map(|w| *w.start())
    }

    fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    fn size_bits(&self) -> usize {
        (self.knots.len() * 16 + self.radix.len() * 4 + 48) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_points(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i << 32) + 99).collect()
    }

    #[test]
    fn error_bound_holds_uniform() {
        let pts = uniform_points(3000);
        for eps in [2usize, 8, 32] {
            let idx = RadixSplineIndex::build_from_u64(&pts, 12, eps);
            let err = idx.max_error(&pts);
            assert!(err <= eps + 1, "eps {eps}: error {err}");
        }
    }

    #[test]
    fn error_bound_holds_skewed() {
        let mut pts: Vec<u64> = (0..2000u64).map(|i| i * 3).collect();
        pts.extend((0..2000u64).map(|i| (1 << 44) + i * i));
        pts.sort_unstable();
        pts.dedup();
        let idx = RadixSplineIndex::build_from_u64(&pts, 14, 8);
        let err = idx.max_error(&pts);
        assert!(err <= 9, "error {err}");
    }

    #[test]
    fn window_contains_true_block() {
        let pts = uniform_points(1000);
        let idx = RadixSplineIndex::build_from_u64(&pts, 10, 4);
        for (i, &k) in pts.iter().enumerate() {
            let w = idx.candidate_window(k);
            assert!(w.contains(&i), "block {i} missing from {w:?}");
        }
    }

    #[test]
    fn few_knots_on_linear_data() {
        let pts = uniform_points(10_000);
        let idx = RadixSplineIndex::build_from_u64(&pts, 12, 8);
        assert!(idx.num_knots() < 20, "{} knots", idx.num_knots());
    }

    #[test]
    fn radix_matches_plain_interpolation() {
        // the radix table is an accelerator; predictions must be identical
        // for a few random probes vs a brute-force segment search
        let mut pts: Vec<u64> = (0..3000u64).map(|i| i * 977 + (i % 13) * 31).collect();
        pts.sort_unstable();
        pts.dedup();
        let idx = RadixSplineIndex::build_from_u64(&pts, 10, 6);
        for (i, &k) in pts.iter().enumerate() {
            let err = (idx.predict(k) as i64 - i as i64).unsigned_abs() as usize;
            assert!(err <= 7, "key {k} err {err}");
        }
    }

    #[test]
    fn empty_single_dup() {
        let idx = RadixSplineIndex::build_from_u64(&[], 8, 4);
        assert_eq!(idx.locate(b"x"), None);
        let one = RadixSplineIndex::build_from_u64(&[42], 8, 4);
        assert_eq!(one.predict(42), 0);
        let dup = RadixSplineIndex::build_from_u64(&[7, 7, 7, 9], 8, 4);
        assert!(dup.candidate_window(7).contains(&0) || dup.candidate_window(7).contains(&2));
        assert!(dup.candidate_window(9).contains(&3));
    }

    #[test]
    fn out_of_range_pruned() {
        let pts = uniform_points(100);
        let idx = RadixSplineIndex::build_from_u64(&pts, 8, 4);
        assert_eq!(idx.locate(&[0xFFu8; 8]), None);
        assert_eq!(idx.locate_lower_bound(&[0u8; 8]).unwrap(), 0);
    }

    #[test]
    fn more_radix_bits_same_answers() {
        let pts: Vec<u64> = (0..2000u64).map(|i| i * 12345).collect();
        let small = RadixSplineIndex::build_from_u64(&pts, 4, 8);
        let large = RadixSplineIndex::build_from_u64(&pts, 16, 8);
        for &k in pts.iter().step_by(37) {
            assert_eq!(small.predict(k), large.predict(k));
        }
    }

    #[test]
    fn compact_vs_fences() {
        use crate::fence::FencePointers;
        let last_keys: Vec<Vec<u8>> = (0..5000u64)
            .map(|i| format!("{:012}", i * 1000 + 999).into_bytes())
            .collect();
        let fences = FencePointers::new(b"000000000000".to_vec(), last_keys.clone());
        let rs = RadixSplineIndex::build(&last_keys, 10, 8);
        assert!(
            rs.size_bits() < fences.size_bits() / 4,
            "spline {} vs fences {}",
            rs.size_bits(),
            fences.size_bits()
        );
    }
}
