//! Learned indexes over sorted runs (tutorial Module II.4).
//!
//! Both models treat keys as `u64`s (via a monotone 8-byte-prefix map for
//! byte keys) and predict the *block index* of a key with a bounded error
//! `ε`; the reader then searches at most `2ε + 1` blocks — usually a much
//! smaller in-memory structure than fence pointers, which the tutorial
//! (citing Google's production study) highlights as the learned-index win
//! for immutable LSM runs.

pub mod pla;
pub mod spline;

/// Monotone map from byte keys to the u64 model domain (first 8 bytes,
/// big-endian, zero padded). Shared by both learned models.
pub fn key_to_u64(key: &[u8]) -> u64 {
    key_to_u64_skipping(key, 0)
}

/// Like [`key_to_u64`] but over `key[skip..]`. Both learned indexes strip
/// the common prefix of a run's fences before mapping, so long shared
/// prefixes (e.g. `user00000…`) don't collapse every key onto one model
/// point. The map stays monotone for all keys sharing the stripped
/// prefix, which every key inside the run's `[min, max]` range does.
pub fn key_to_u64_skipping(key: &[u8], skip: usize) -> u64 {
    let tail = key.get(skip..).unwrap_or(&[]);
    let mut buf = [0u8; 8];
    let n = tail.len().min(8);
    buf[..n].copy_from_slice(&tail[..n]);
    u64::from_be_bytes(buf)
}

/// Longest common prefix length of a sorted key list (= lcp of first and
/// last element).
pub fn common_prefix_len(keys: &[Vec<u8>]) -> usize {
    match (keys.first(), keys.last()) {
        (Some(a), Some(b)) => a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_monotone() {
        let mut keys: Vec<Vec<u8>> = (0..500u32)
            .map(|i| format!("{:010}", i * 977).into_bytes())
            .collect();
        keys.sort();
        for w in keys.windows(2) {
            assert!(key_to_u64(&w[0]) <= key_to_u64(&w[1]));
        }
    }

    #[test]
    fn short_keys_pad_with_zeros() {
        assert!(key_to_u64(b"a") < key_to_u64(b"aa"));
        assert_eq!(key_to_u64(b""), 0);
    }
}
