//! Bounded-error piecewise-linear index (PGM-style greedy construction,
//! Ferragina & Vinciguerra; used read-only over immutable runs as the
//! tutorial recommends).
//!
//! One streaming pass over `(key, block)` pairs grows a segment while a
//! line can stay within `±ε` blocks of every point (maintained via a
//! shrinking slope cone); when the cone empties, the segment is frozen and
//! a new one starts. Queries binary-search the segment table (tiny) and
//! evaluate one line.

use crate::learned::{common_prefix_len, key_to_u64_skipping};
use crate::traits::BlockLocator;

/// One linear segment `predict(key) = intercept + slope * (key - start)`.
#[derive(Clone, Copy, Debug)]
pub struct PlaSegment {
    /// First model-domain key covered by this segment.
    pub start: u64,
    /// Slope in blocks per key unit.
    pub slope: f64,
    /// Predicted block at `start`.
    pub intercept: f64,
}

/// A PGM-style learned block index with error bound ε.
///
/// The configured ε is a *target*; after fitting, the stored bound is
/// widened to the measured maximum training error (duplicate model keys —
/// byte keys colliding after the 8-byte truncation — can exceed the
/// target), so the candidate window is always sound.
#[derive(Clone, Debug)]
pub struct PlaIndex {
    segments: Vec<PlaSegment>,
    epsilon: usize,
    num_blocks: usize,
    min_key: u64,
    max_key: u64,
    /// Common-prefix bytes stripped before the u64 map (0 for raw builds).
    prefix_skip: usize,
    /// Raw key bounds for out-of-range pruning (empty for raw builds).
    min_key_raw: Vec<u8>,
    max_key_raw: Vec<u8>,
}

impl PlaIndex {
    /// Builds from the sorted `(last_key_of_block)` boundaries of a run.
    /// `epsilon` is the maximum block error the model may make.
    pub fn build(last_keys: &[Vec<u8>], epsilon: usize) -> Self {
        let skip = common_prefix_len(last_keys);
        let points: Vec<u64> = last_keys
            .iter()
            .map(|k| key_to_u64_skipping(k, skip))
            .collect();
        let mut idx = Self::build_from_u64(&points, epsilon);
        idx.prefix_skip = skip;
        idx.min_key_raw = last_keys.first().cloned().unwrap_or_default();
        idx.max_key_raw = last_keys.last().cloned().unwrap_or_default();
        idx
    }

    /// Builds from sorted u64 block-boundary keys: point `i` is
    /// `(keys[i], i)`.
    pub fn build_from_u64(points: &[u64], epsilon: usize) -> Self {
        let eps = epsilon.max(1) as f64;
        let mut segments: Vec<PlaSegment> = Vec::new();
        let n = points.len();
        if n == 0 {
            return PlaIndex {
                segments,
                epsilon: epsilon.max(1),
                num_blocks: 0,
                min_key: 0,
                max_key: 0,
                prefix_skip: 0,
                min_key_raw: Vec::new(),
                max_key_raw: Vec::new(),
            };
        }
        let mut i = 0usize;
        while i < n {
            let start_key = points[i];
            let start_block = i as f64;
            // slope cone: valid slopes keeping all points within ±eps
            let mut lo_slope = f64::NEG_INFINITY;
            let mut hi_slope = f64::INFINITY;
            let mut j = i + 1;
            while j < n {
                let dx = (points[j] - start_key) as f64;
                let dy = j as f64 - start_block;
                if dx == 0.0 {
                    // duplicate model key: representable iff block delta
                    // within eps of prediction at dx=0 (which is
                    // start_block); since dy grows, stop once it exceeds eps
                    if dy > eps {
                        break;
                    }
                    j += 1;
                    continue;
                }
                let new_lo = (dy - eps) / dx;
                let new_hi = (dy + eps) / dx;
                let cand_lo = lo_slope.max(new_lo);
                let cand_hi = hi_slope.min(new_hi);
                if cand_lo > cand_hi {
                    break;
                }
                lo_slope = cand_lo;
                hi_slope = cand_hi;
                j += 1;
            }
            let slope = if lo_slope.is_finite() && hi_slope.is_finite() {
                (lo_slope + hi_slope) / 2.0
            } else if hi_slope.is_finite() {
                hi_slope
            } else if lo_slope.is_finite() {
                lo_slope
            } else {
                0.0
            };
            segments.push(PlaSegment {
                start: start_key,
                slope: slope.max(0.0),
                intercept: start_block,
            });
            i = j;
        }
        let mut idx = PlaIndex {
            segments,
            epsilon: epsilon.max(1),
            num_blocks: n,
            min_key: points[0],
            max_key: points[n - 1],
            prefix_skip: 0,
            min_key_raw: Vec::new(),
            max_key_raw: Vec::new(),
        };
        // soundness: widen ε to the measured maximum training error, so
        // degenerate inputs (heavy u64 duplicates) degrade to wide windows
        // rather than false negatives
        idx.epsilon = idx.epsilon.max(idx.max_error(points));
        idx
    }

    /// The error bound.
    pub fn epsilon(&self) -> usize {
        self.epsilon
    }

    /// Number of linear segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Smallest and largest model-domain keys covered.
    pub fn key_bounds(&self) -> (u64, u64) {
        (self.min_key, self.max_key)
    }

    /// Predicted block for a model-domain key, clamped to valid blocks.
    ///
    /// The raw line is additionally clamped to the segment's block span
    /// `[intercept, next_intercept]`: between a segment's last training
    /// point and the next segment's first, the line would otherwise
    /// extrapolate without bound, breaking the error guarantee for query
    /// keys that fall *between* training points.
    pub fn predict(&self, key_u64: u64) -> usize {
        if self.num_blocks == 0 {
            return 0;
        }
        let idx = self
            .segments
            .partition_point(|s| s.start <= key_u64)
            .saturating_sub(1);
        let s = &self.segments[idx];
        let span_end = self
            .segments
            .get(idx + 1)
            .map(|n| n.intercept as usize)
            .unwrap_or(self.num_blocks - 1);
        let dx = key_u64.saturating_sub(s.start) as f64;
        let raw = s.intercept + s.slope * dx;
        (raw.round().max(0.0) as usize).clamp(s.intercept as usize, span_end.max(s.intercept as usize))
    }

    /// The candidate block window `[predict-ε-1, predict+ε+1]` for a key.
    /// The extra ±1 covers query keys between training points, whose true
    /// block is the training error bound plus one.
    pub fn candidate_window(&self, key_u64: u64) -> std::ops::RangeInclusive<usize> {
        let p = self.predict(key_u64);
        let lo = p.saturating_sub(self.epsilon + 1);
        let hi = (p + self.epsilon + 1).min(self.num_blocks.saturating_sub(1));
        lo..=hi
    }

    /// Verifies the error bound against the training points; used by tests
    /// and debug assertions.
    pub fn max_error(&self, points: &[u64]) -> usize {
        points
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let p = self.predict(k) as i64;
                (p - i as i64).unsigned_abs() as usize
            })
            .max()
            .unwrap_or(0)
    }
}

impl PlaIndex {
    /// Maps a raw key into the model domain using the stored prefix skip.
    pub fn map_key(&self, key: &[u8]) -> u64 {
        key_to_u64_skipping(key, self.prefix_skip)
    }

    fn out_of_range(&self, key: &[u8]) -> bool {
        if !self.max_key_raw.is_empty() {
            key > self.max_key_raw.as_slice()
        } else {
            self.map_key(key) > self.max_key
        }
    }

    /// Sound candidate window for a raw byte key, or `None` when the key
    /// is provably past the run's end.
    ///
    /// Keys at or below the first fence need special care: they belong to
    /// block 0 by definition, but they may not share the fences' common
    /// prefix, so mapping them through the model could land anywhere.
    pub fn window_for(&self, key: &[u8]) -> Option<std::ops::RangeInclusive<usize>> {
        if self.num_blocks == 0 || self.out_of_range(key) {
            return None;
        }
        if !self.min_key_raw.is_empty() && key <= self.min_key_raw.as_slice() {
            return Some(0..=0);
        }
        Some(self.candidate_window(self.map_key(key)))
    }
}

impl BlockLocator for PlaIndex {
    fn locate(&self, key: &[u8]) -> Option<usize> {
        self.window_for(key).map(|w| *w.start())
    }

    fn locate_lower_bound(&self, key: &[u8]) -> Option<usize> {
        self.window_for(key).map(|w| *w.start())
    }

    fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    fn size_bits(&self) -> usize {
        // start (8) + slope (8) + intercept (8) per segment, plus header
        (self.segments.len() * 24 + 32) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_points(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 1000 + 7).collect()
    }

    #[test]
    fn error_bound_holds_uniform() {
        let pts = uniform_points(5000);
        for eps in [1usize, 4, 16] {
            let idx = PlaIndex::build_from_u64(&pts, eps);
            assert!(
                idx.max_error(&pts) <= eps + 1, // rounding can add one
                "eps {eps}: error {}",
                idx.max_error(&pts)
            );
        }
    }

    #[test]
    fn error_bound_holds_skewed() {
        // clustered + exponential gaps stress the cone
        let mut pts: Vec<u64> = (0..1000u64).collect();
        pts.extend((0..1000u64).map(|i| 1 << 20 | (i * i)));
        pts.extend((0..100u64).map(|i| (1 << 40) + (1u64 << (i % 20))));
        pts.sort_unstable();
        pts.dedup();
        let idx = PlaIndex::build_from_u64(&pts, 8);
        assert!(idx.max_error(&pts) <= 9, "error {}", idx.max_error(&pts));
    }

    #[test]
    fn uniform_data_needs_few_segments() {
        let pts = uniform_points(10_000);
        let idx = PlaIndex::build_from_u64(&pts, 8);
        assert!(idx.num_segments() <= 4, "{} segments", idx.num_segments());
    }

    #[test]
    fn window_contains_true_block() {
        let pts = uniform_points(2000);
        let idx = PlaIndex::build_from_u64(&pts, 4);
        for (i, &k) in pts.iter().enumerate() {
            let w = idx.candidate_window(k);
            assert!(w.contains(&i), "block {i} not in {w:?}");
        }
    }

    #[test]
    fn smaller_than_fences() {
        use crate::fence::FencePointers;
        let last_keys: Vec<Vec<u8>> = (0..5000u64)
            .map(|i| format!("{:012}", i * 1000 + 999).into_bytes())
            .collect();
        let fences = FencePointers::new(b"000000000000".to_vec(), last_keys.clone());
        let pla = PlaIndex::build(&last_keys, 8);
        assert!(
            pla.size_bits() < fences.size_bits() / 4,
            "pla {} vs fences {}",
            pla.size_bits(),
            fences.size_bits()
        );
    }

    #[test]
    fn duplicate_model_keys() {
        // long byte keys sharing an 8-byte prefix collapse to one u64
        let pts = vec![5, 5, 5, 9, 12];
        let idx = PlaIndex::build_from_u64(&pts, 2);
        // prediction for 5 must be within eps of all of blocks 0..=2
        let w = idx.candidate_window(5);
        assert!(w.contains(&0) || w.contains(&1) || w.contains(&2));
    }

    #[test]
    fn empty_and_single() {
        let idx = PlaIndex::build_from_u64(&[], 4);
        assert_eq!(idx.locate(b"x"), None);
        let one = PlaIndex::build_from_u64(&[100], 4);
        assert_eq!(one.predict(100), 0);
        assert_eq!(one.num_blocks(), 1);
    }

    #[test]
    fn out_of_range_pruning() {
        let pts = uniform_points(100);
        let idx = PlaIndex::build_from_u64(&pts, 4);
        let beyond = format!("{}", u64::MAX);
        let _ = beyond;
        let mut big_key = [0xFFu8; 8];
        big_key[0] = 0xFF;
        assert_eq!(idx.locate(&big_key), None);
    }

    #[test]
    fn epsilon_tradeoff_fewer_segments() {
        let mut pts: Vec<u64> = (0..5000u64).map(|i| i * i % 1_000_000_007).collect();
        pts.sort_unstable();
        pts.dedup();
        let tight = PlaIndex::build_from_u64(&pts, 1);
        let loose = PlaIndex::build_from_u64(&pts, 32);
        assert!(
            loose.num_segments() < tight.num_segments(),
            "loose {} vs tight {}",
            loose.num_segments(),
            tight.num_segments()
        );
    }
}
