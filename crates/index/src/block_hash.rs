//! Data-block hash index (Wu, RocksDB blog 2018; tutorial Module II.4).
//!
//! Inside a data block, finding a key normally costs a binary search over
//! restart points — a tight loop of key comparisons that misses cache.
//! This index maps each key's hash to its restart-point ordinal so a point
//! lookup inside the block is O(1) comparisons. A small false-collision
//! rate sends the lookup to the binary-search fallback, never to a wrong
//! answer.

use lsm_filters_hash::hash64;

/// Re-export of the shared hash so the index and the block builder agree.
mod lsm_filters_hash {
    // A local copy of the 64-bit mix used by `lsm-filters::hash::hash64`.
    // Kept dependency-free: the index crate must not depend on the filter
    // crate just for a hash function.
    const PRIME64_2: u64 = 0xC2B2AE3D27D4EB4F;
    const PRIME64_3: u64 = 0x165667B19E3779F9;

    /// FNV-style 64-bit hash with an avalanche finalizer.
    pub fn hash64(data: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(PRIME64_2);
        h ^= h >> 29;
        h = h.wrapping_mul(PRIME64_3);
        h ^= h >> 32;
        h
    }
}

/// Marker for an empty hash bucket.
const EMPTY: u8 = 0xFF;
/// Marker for a bucket with hash collisions across restart ordinals.
const COLLISION: u8 = 0xFE;

/// An in-block hash index: key hash → restart-point ordinal (max 253
/// restarts per block, which comfortably covers 4 KiB blocks).
#[derive(Clone, Debug)]
pub struct BlockHashIndex {
    buckets: Vec<u8>,
}

/// Result of probing the hash index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HashProbe {
    /// Key is definitely not in this block.
    Absent,
    /// Key, if present, lives at this restart ordinal.
    Restart(u8),
    /// Collision: fall back to binary search.
    Fallback,
}

impl BlockHashIndex {
    /// Builds from `(key, restart_ordinal)` pairs with a load-factor-derived
    /// bucket count (`util` in (0,1], RocksDB default 0.75).
    pub fn build<'a>(entries: impl Iterator<Item = (&'a [u8], u8)>, count_hint: usize, util: f64) -> Self {
        let util = if util <= 0.0 || util > 1.0 { 0.75 } else { util };
        let num_buckets = ((count_hint as f64 / util).ceil() as usize).max(1);
        let mut buckets = vec![EMPTY; num_buckets];
        for (key, ordinal) in entries {
            debug_assert!(ordinal < COLLISION, "restart ordinal too large");
            let b = (hash64(key) % num_buckets as u64) as usize;
            buckets[b] = match buckets[b] {
                EMPTY => ordinal,
                existing if existing == ordinal => ordinal,
                _ => COLLISION,
            };
        }
        BlockHashIndex { buckets }
    }

    /// Probes for `key`.
    pub fn probe(&self, key: &[u8]) -> HashProbe {
        let b = (hash64(key) % self.buckets.len() as u64) as usize;
        match self.buckets[b] {
            EMPTY => HashProbe::Absent,
            COLLISION => HashProbe::Fallback,
            ordinal => HashProbe::Restart(ordinal),
        }
    }

    /// Serialized representation (appended to the data block).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.buckets.len());
        out.extend_from_slice(&(self.buckets.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.buckets);
        out
    }

    /// Deserializes [`BlockHashIndex::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        if bytes.len() < 4 + n {
            return None;
        }
        Some(BlockHashIndex {
            buckets: bytes[4..4 + n].to_vec(),
        })
    }

    /// Memory footprint in bits.
    pub fn size_bits(&self) -> usize {
        self.buckets.len() * 8
    }

    /// Zero-copy probe against the serialized form ([`Self::to_bytes`]
    /// output) — the hot path inside a data block, where constructing the
    /// index would mean an allocation per block read.
    pub fn probe_raw(bytes: &[u8], key: &[u8]) -> Option<HashProbe> {
        if bytes.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let buckets = bytes.get(4..4 + n)?;
        if buckets.is_empty() {
            return Some(HashProbe::Absent);
        }
        let b = (hash64(key) % buckets.len() as u64) as usize;
        Some(match buckets[b] {
            EMPTY => HashProbe::Absent,
            COLLISION => HashProbe::Fallback,
            ordinal => HashProbe::Restart(ordinal),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample(n: usize, util: f64) -> (Vec<Vec<u8>>, BlockHashIndex) {
        let keys: Vec<Vec<u8>> = (0..n).map(|i| format!("k{i:05}").into_bytes()).collect();
        let idx = BlockHashIndex::build(
            keys.iter().enumerate().map(|(i, k)| (k.as_slice(), (i % 200) as u8)),
            n,
            util,
        );
        (keys, idx)
    }

    #[test]
    fn present_keys_never_answer_absent() {
        let (keys, idx) = build_sample(150, 0.75);
        for (i, k) in keys.iter().enumerate() {
            match idx.probe(k) {
                HashProbe::Absent => panic!("present key {i} reported absent"),
                HashProbe::Restart(r) => assert_eq!(r, (i % 200) as u8),
                HashProbe::Fallback => {} // collision: allowed
            }
        }
    }

    #[test]
    fn most_absent_keys_are_pruned() {
        let (_, idx) = build_sample(100, 0.5);
        let mut absent_answers = 0;
        let trials = 1000;
        for i in 0..trials {
            let probe = format!("absent{i:05}");
            if idx.probe(probe.as_bytes()) == HashProbe::Absent {
                absent_answers += 1;
            }
        }
        // with util 0.5, ≥ ~40% of buckets are empty
        assert!(absent_answers > trials / 4, "{absent_answers}/{trials}");
    }

    #[test]
    fn duplicate_key_same_ordinal_is_not_collision() {
        let k: &[u8] = b"dup";
        let idx = BlockHashIndex::build([(k, 3u8), (k, 3u8)].into_iter(), 2, 0.75);
        assert_eq!(idx.probe(k), HashProbe::Restart(3));
    }

    #[test]
    fn colliding_ordinals_fall_back() {
        // force two keys into the same bucket by using one bucket
        let idx = BlockHashIndex::build(
            [(b"a".as_slice(), 1u8), (b"b".as_slice(), 2u8)].into_iter(),
            1,
            1.0,
        );
        assert_eq!(idx.probe(b"a"), HashProbe::Fallback);
        assert_eq!(idx.probe(b"b"), HashProbe::Fallback);
    }

    #[test]
    fn serialization_roundtrip() {
        let (keys, idx) = build_sample(80, 0.75);
        let back = BlockHashIndex::from_bytes(&idx.to_bytes()).unwrap();
        for k in &keys {
            assert_eq!(idx.probe(k), back.probe(k));
        }
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let (_, idx) = build_sample(10, 0.75);
        let bytes = idx.to_bytes();
        assert!(BlockHashIndex::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(BlockHashIndex::from_bytes(&[1]).is_none());
    }

    #[test]
    fn bad_util_defaults() {
        let idx = BlockHashIndex::build([(b"k".as_slice(), 0u8)].into_iter(), 1, -3.0);
        assert_ne!(idx.probe(b"k"), HashProbe::Absent);
    }

    #[test]
    fn empty_index() {
        let idx = BlockHashIndex::build(std::iter::empty(), 0, 0.75);
        assert_eq!(idx.probe(b"x"), HashProbe::Absent);
    }
}
