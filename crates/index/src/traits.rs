//! Unifying trait for block-location indexes.

/// Locates the data block of a sorted run that may contain a key.
///
/// Contract: if the run contains `key`, the returned block index MUST be
/// the block holding it. If the key is absent, the locator may return any
/// block (typically where the key *would* be) or `None` when it can prove
/// the key is out of the run's range.
pub trait BlockLocator: Send + Sync {
    /// Block that may contain `key`, or `None` if provably out of range.
    fn locate(&self, key: &[u8]) -> Option<usize>;

    /// First block whose key range may intersect `[key, ∞)`; used to seed
    /// range scans. `None` when every block ends before `key`.
    fn locate_lower_bound(&self, key: &[u8]) -> Option<usize>;

    /// Number of blocks indexed.
    fn num_blocks(&self) -> usize;

    /// Memory footprint in bits.
    fn size_bits(&self) -> usize;
}

/// Which block-index implementation the engine uses — one axis of the LSM
/// design space (tutorial Module II.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Full fence pointers: last key of every block.
    Fence,
    /// Sparse index sampling every `k`-th block boundary.
    Sparse {
        /// Sampling rate: one retained boundary per `rate` blocks.
        rate: usize,
    },
    /// Learned piecewise-linear index over u64-mapped keys with the given
    /// error bound.
    Pla {
        /// Maximum block-index error the model may make.
        epsilon: usize,
    },
    /// RadixSpline-style learned index.
    RadixSpline {
        /// Number of radix-table prefix bits.
        radix_bits: u32,
        /// Maximum block-index error the spline may make.
        epsilon: usize,
    },
}

impl IndexKind {
    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            IndexKind::Fence => "fence",
            IndexKind::Sparse { .. } => "sparse",
            IndexKind::Pla { .. } => "pla",
            IndexKind::RadixSpline { .. } => "radix-spline",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_distinct() {
        let kinds = [
            IndexKind::Fence,
            IndexKind::Sparse { rate: 4 },
            IndexKind::Pla { epsilon: 4 },
            IndexKind::RadixSpline {
                radix_bits: 12,
                epsilon: 4,
            },
        ];
        let mut labels: Vec<_> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }
}
