//! # lsm-index
//!
//! The per-run index structures the tutorial's Modules II.1 and II.4
//! survey, all answering the same question — *which block of a sorted run
//! may hold this key?* — with different memory/CPU tradeoffs:
//!
//! - [`fence`]: classic fence pointers (one min/max key per block, a
//!   special form of Zonemaps), the baseline every LSM engine ships;
//! - [`sparse`]: sparse key samples with a configurable sampling rate,
//!   trading memory for an extra intra-gap scan;
//! - [`block_hash`]: RocksDB-style in-block hash index that replaces the
//!   binary search *inside* a data block with an O(1) lookup;
//! - [`learned`]: learned replacements for fence pointers — a bounded-error
//!   piecewise-linear model (PGM-style) and a RadixSpline-style radix table
//!   over spline knots, both exploiting the immutability of LSM runs
//!   (single-pass build, no inserts needed).
//!
//! [`traits::BlockLocator`] unifies them so the engine treats the index
//! choice as one configuration axis.

pub mod block_hash;
pub mod fence;
pub mod learned;
pub mod sparse;
pub mod traits;

pub use block_hash::BlockHashIndex;
pub use fence::FencePointers;
pub use learned::pla::{PlaIndex, PlaSegment};
pub use learned::spline::RadixSplineIndex;
pub use sparse::SparseIndex;
pub use traits::{BlockLocator, IndexKind};
