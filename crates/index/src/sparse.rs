//! Sparse block index: keep every `rate`-th fence, pay with a wider
//! candidate window.
//!
//! This is the memory end of the index tradeoff axis the tutorial
//! describes: at rate `r` the index is `r×` smaller but a lookup may have
//! to read up to `r` candidate blocks (the engine reads them sequentially,
//! so the latency model charges one seek plus `r` block transfers).

use crate::traits::BlockLocator;

/// A sparse fence index retaining one boundary per `rate` blocks.
#[derive(Clone, Debug)]
pub struct SparseIndex {
    /// `(block_index_of_boundary, last_key_of_that_block)`, ascending.
    samples: Vec<(usize, Vec<u8>)>,
    num_blocks: usize,
    first_key: Vec<u8>,
    rate: usize,
}

impl SparseIndex {
    /// Builds from all block last-keys, keeping every `rate`-th (and always
    /// the final one, so the run's upper bound is exact).
    pub fn build(first_key: Vec<u8>, last_keys: &[Vec<u8>], rate: usize) -> Self {
        assert!(rate > 0, "rate must be positive");
        let n = last_keys.len();
        let mut samples = Vec::with_capacity(n / rate + 1);
        for (i, k) in last_keys.iter().enumerate() {
            if (i + 1) % rate == 0 || i + 1 == n {
                samples.push((i, k.clone()));
            }
        }
        SparseIndex {
            samples,
            num_blocks: n,
            first_key,
            rate,
        }
    }

    /// The sampling rate.
    pub fn rate(&self) -> usize {
        self.rate
    }

    /// Candidate block window for `key`: the blocks between the previous
    /// retained boundary (exclusive) and the matching one (inclusive).
    /// Lookups must scan all of them in the worst case.
    pub fn candidate_window(&self, key: &[u8]) -> Option<std::ops::RangeInclusive<usize>> {
        if self.num_blocks == 0 || key < self.first_key.as_slice() {
            return None;
        }
        let idx = self
            .samples
            .partition_point(|(_, last)| last.as_slice() < key);
        if idx >= self.samples.len() {
            return None; // beyond the run
        }
        let hi = self.samples[idx].0;
        let lo = if idx == 0 { 0 } else { self.samples[idx - 1].0 + 1 };
        Some(lo..=hi)
    }
}

impl BlockLocator for SparseIndex {
    fn locate(&self, key: &[u8]) -> Option<usize> {
        // return the first candidate; the reader scans the window
        self.candidate_window(key).map(|w| *w.start())
    }

    fn locate_lower_bound(&self, key: &[u8]) -> Option<usize> {
        if self.num_blocks == 0 {
            return None;
        }
        if key < self.first_key.as_slice() {
            return Some(0);
        }
        self.candidate_window(key).map(|w| *w.start())
    }

    fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    fn size_bits(&self) -> usize {
        let bytes: usize = self.samples.iter().map(|(_, k)| k.len() + 12).sum();
        (bytes + self.first_key.len() + 16) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn last_keys(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("{:06}", i * 100 + 99).into_bytes())
            .collect()
    }

    #[test]
    fn window_contains_true_block() {
        let keys = last_keys(20);
        for rate in [1, 2, 4, 7] {
            let idx = SparseIndex::build(b"000000".to_vec(), &keys, rate);
            for block in 0..20usize {
                let key = format!("{:06}", block * 100 + 50);
                let w = idx.candidate_window(key.as_bytes()).unwrap();
                assert!(
                    w.contains(&block),
                    "rate {rate}: block {block} not in window {w:?}"
                );
                assert!(w.end() - w.start() < rate, "window too wide at rate {rate}");
            }
        }
    }

    #[test]
    fn rate_one_equals_fences() {
        let keys = last_keys(10);
        let idx = SparseIndex::build(b"000000".to_vec(), &keys, 1);
        for block in 0..10usize {
            let key = format!("{:06}", block * 100 + 50);
            assert_eq!(idx.locate(key.as_bytes()), Some(block));
        }
    }

    #[test]
    fn memory_shrinks_with_rate() {
        let keys = last_keys(100);
        let dense = SparseIndex::build(b"000000".to_vec(), &keys, 1);
        let sparse = SparseIndex::build(b"000000".to_vec(), &keys, 10);
        assert!(sparse.size_bits() < dense.size_bits() / 5);
    }

    #[test]
    fn out_of_range_keys() {
        let keys = last_keys(10);
        let idx = SparseIndex::build(b"000000".to_vec(), &keys, 4);
        assert_eq!(idx.locate(b"999999"), None);
        assert_eq!(idx.candidate_window(b"999999"), None);
    }

    #[test]
    fn lower_bound_before_first_key() {
        let keys = last_keys(10);
        let idx = SparseIndex::build(b"000100".to_vec(), &keys, 4);
        assert_eq!(idx.locate_lower_bound(b"000000"), Some(0));
    }

    #[test]
    fn final_boundary_always_kept() {
        // 10 blocks at rate 4 keeps blocks 3, 7, and 9
        let keys = last_keys(10);
        let idx = SparseIndex::build(b"000000".to_vec(), &keys, 4);
        let last_key = format!("{:06}", 9 * 100 + 99);
        let w = idx.candidate_window(last_key.as_bytes()).unwrap();
        assert!(w.contains(&9));
    }

    #[test]
    fn empty_run() {
        let idx = SparseIndex::build(vec![], &[], 4);
        assert_eq!(idx.locate(b"x"), None);
        assert_eq!(idx.locate_lower_bound(b"x"), None);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = SparseIndex::build(vec![], &[], 0);
    }
}
