//! # lsm-design-space
//!
//! A Rust reproduction of *"The LSM Design Space and its Read Optimizations"*
//! (Sarkar, Dayan, Athanassoulis — ICDE 2023): a configurable LSM-tree
//! storage engine in which every design dimension the tutorial surveys is a
//! first-class configuration axis, together with the auxiliary read
//! structures (point filters, range filters, indexes, learned indexes,
//! block caches), analytical cost models, and a design-space navigator.
//!
//! This umbrella crate re-exports the public API of all member crates:
//!
//! - [`storage`] — block device substrate with exact I/O accounting,
//! - [`filters`] — Bloom/blocked-Bloom/cuckoo/xor/ribbon point filters and
//!   prefix/SuRF/Rosetta/SNARF range filters, plus Monkey allocation,
//! - [`index`] — fence pointers, block hash indexes, learned indexes,
//! - [`cache`] — block cache policies and compaction-aware prefetching,
//! - [`workload`] — deterministic workload generation (YCSB presets),
//! - [`model`] — closed-form cost models and the design-space navigator,
//! - [`core`] — the LSM engine itself ([`core::Db`]).
//!
//! ## Quickstart
//!
//! ```
//! use lsm_design_space::core::{Db, LsmConfig};
//!
//! let db = Db::open_in_memory(LsmConfig::default()).unwrap();
//! db.put(b"key".to_vec(), b"value".to_vec()).unwrap();
//! assert_eq!(db.get(b"key").unwrap(), Some(b"value".to_vec()));
//! db.delete(b"key".to_vec()).unwrap();
//! assert_eq!(db.get(b"key").unwrap(), None);
//! ```

pub use lsm_cache as cache;
pub use lsm_core as core;
pub use lsm_filters as filters;
pub use lsm_index as index;
pub use lsm_model as model;
pub use lsm_storage as storage;
pub use lsm_workload as workload;
