//! Secondary indexing on an LSM store (tutorial Module II.4: "several
//! approaches have focused on optimizing reads on secondary (non-key)
//! attributes through secondary indexing techniques").
//!
//! The standard LSM pattern: the index is *another LSM tree* whose keys
//! are `secondary_value ∥ primary_key` (a covering composite key), kept in
//! sync by the writer. Lookups by the secondary attribute become a prefix
//! scan of the index tree followed by primary gets — exactly the eager
//! ("Diff-Index sync-full") scheme the tutorial cites. A deferred/lazy
//! variant would batch index updates; here the write path shows why the
//! eager one doubles ingestion work.
//!
//! ```sh
//! cargo run --release --example secondary_index
//! ```

use lsm_design_space::core::{Db, LsmConfig};

/// A user record stored as the primary value: `city,age`.
fn record(city: &str, age: u32) -> Vec<u8> {
    format!("{city},{age}").into_bytes()
}

fn city_of(value: &[u8]) -> String {
    String::from_utf8_lossy(value).split(',').next().unwrap_or("").to_string()
}

/// Composite secondary key: `city \0 user_id`, so all users of one city
/// are a contiguous index range, ordered by id.
fn index_key(city: &str, user_id: u64) -> Vec<u8> {
    let mut k = city.as_bytes().to_vec();
    k.push(0);
    k.extend_from_slice(format!("{user_id:012}").as_bytes());
    k
}

fn primary_key(user_id: u64) -> Vec<u8> {
    format!("user{user_id:012}").into_bytes()
}

struct IndexedStore {
    primary: Db,
    by_city: Db,
}

impl IndexedStore {
    fn open() -> Result<Self, Box<dyn std::error::Error>> {
        Ok(IndexedStore {
            primary: Db::open_in_memory(LsmConfig::default())?,
            by_city: Db::open_in_memory(LsmConfig::default())?,
        })
    }

    /// Eager index maintenance: read-modify-write on the index alongside
    /// the primary put (the read removes the stale index entry on city
    /// changes).
    fn put(&self, user_id: u64, city: &str, age: u32) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(old) = self.primary.get(&primary_key(user_id))? {
            let old_city = city_of(&old);
            if old_city != city {
                self.by_city.delete(index_key(&old_city, user_id))?;
            }
        }
        self.primary.put(primary_key(user_id), record(city, age))?;
        self.by_city.put(index_key(city, user_id), Vec::new())?;
        Ok(())
    }

    /// Query by secondary attribute: prefix scan of the index, then
    /// primary lookups.
    fn users_in_city(&self, city: &str, limit: usize) -> Result<Vec<(u64, u32)>, Box<dyn std::error::Error>> {
        let mut lo = city.as_bytes().to_vec();
        lo.push(0);
        let mut hi = city.as_bytes().to_vec();
        hi.push(1);
        let mut out = Vec::new();
        for (ikey, _) in self.by_city.scan(lo..hi, limit)? {
            let id: u64 = String::from_utf8_lossy(&ikey[city.len() + 1..]).parse()?;
            if let Some(rec) = self.primary.get(&primary_key(id))? {
                let age: u32 = String::from_utf8_lossy(&rec)
                    .split(',')
                    .nth(1)
                    .unwrap_or("0")
                    .parse()?;
                out.push((id, age));
            }
        }
        Ok(out)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = IndexedStore::open()?;
    let cities = ["athens", "boston", "copenhagen", "delft", "eugene"];
    println!("loading 50k users across {} cities…", cities.len());
    for id in 0..50_000u64 {
        let city = cities[(id as usize * 7) % cities.len()];
        store.put(id, city, (20 + id % 60) as u32)?;
    }
    // some users move (index entries must follow)
    for id in (0..50_000u64).step_by(100) {
        store.put(id, "boston", 30)?;
    }

    let bostonians = store.users_in_city("boston", usize::MAX)?;
    println!("boston has {} users", bostonians.len());
    // 1/5 born there (ids with (id*7)%5==1) plus the movers not already there
    assert!(bostonians.len() > 10_000, "index lost entries");

    // the moved users are findable in boston and gone from their old city
    let athens = store.users_in_city("athens", usize::MAX)?;
    assert!(
        athens.iter().all(|(id, _)| !id.is_multiple_of(100) || !(*id as usize * 7).is_multiple_of(5)),
        "stale index entry for a moved user"
    );
    println!("athens has {} users (movers removed)", athens.len());

    // cost accounting: the eager index doubles ingestion work
    let p = store.primary.stats().snapshot();
    let i = store.by_city.stats().snapshot();
    println!(
        "\nwrite cost: primary {} puts; index {} puts + {} deletes (eager maintenance)",
        p.puts, i.puts, i.deletes
    );
    println!(
        "index tree is small: {} bytes vs primary {} bytes (keys only)",
        store.by_city.device().live_blocks() * 4096,
        store.primary.device().live_blocks() * 4096,
    );
    println!("\nthe tutorial's point: secondary reads become cheap prefix");
    println!("scans, paid for with a second LSM's ingestion and maintenance.");
    Ok(())
}
