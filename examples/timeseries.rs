//! A time-series ingest workload (the InfluxDB-style use of LSM trees the
//! tutorial cites): strictly increasing keys, recent-window scans, and
//! TTL-style deletion of old data — exercising sequential ingest (no
//! overlap between flushed runs), range scans, and tombstone GC.
//!
//! ```sh
//! cargo run --release --example timeseries
//! ```

use lsm_design_space::core::{Db, LsmConfig, MergeLayout, RangeFilterKind};

fn series_key(ts: u64, sensor: u16) -> Vec<u8> {
    format!("m{ts:012}s{sensor:04}").into_bytes()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = LsmConfig {
        layout: MergeLayout::Tiered, // ingest-optimized, like TSM trees
        range_filter: RangeFilterKind::Surf { suffix_bits: 8 },
        buffer_bytes: 256 << 10,
        ..LsmConfig::default()
    };
    let db = Db::open_in_memory(cfg)?;

    // ingest 24 "hours" of measurements from 32 sensors
    println!("ingesting 24h × 3600s × 32 sensors…");
    let sensors = 32u16;
    for hour in 0..24u64 {
        for sec in (0..3600u64).step_by(60) {
            let ts = hour * 3600 + sec;
            for sensor in 0..sensors {
                db.put(
                    series_key(ts, sensor),
                    format!("{{\"v\":{}.{}}}", ts % 100, sensor).into_bytes(),
                )?;
            }
        }
    }
    let s = db.stats().snapshot();
    println!(
        "ingested {} points ({} flushes, {} compactions)",
        s.puts, s.flushes, s.compactions
    );

    // dashboard query: last 10 minutes of one sensor's window
    let t_end = 24 * 3600;
    let window = db.scan(
        series_key(t_end - 600, 0)..series_key(t_end, 0),
        100_000,
    )?;
    println!("last-10-min window: {} points", window.len());

    // retention: drop the first 12 hours
    println!("applying retention (delete first 12h)…");
    let expired = db.scan(series_key(0, 0)..series_key(12 * 3600, 0), usize::MAX)?;
    let n_expired = expired.len();
    for (k, _) in expired {
        db.delete(k)?;
    }
    db.major_compact()?;
    let s2 = db.stats().snapshot();
    println!(
        "deleted {} points; tombstones GC'd: {}",
        n_expired, s2.tombstones_dropped
    );

    // old data is gone, recent data remains
    assert!(db
        .scan(series_key(0, 0)..series_key(12 * 3600, 0), 10)?
        .is_empty());
    assert!(!window.is_empty());
    let remaining = db.scan(series_key(0, 0)..series_key(u64::MAX / 2, 0), usize::MAX)?;
    println!("remaining points: {}", remaining.len());

    println!("\nlevel summary after retention:");
    for (i, (runs, bytes, entries)) in db.level_summary().iter().enumerate() {
        if *entries > 0 {
            println!("  L{i}: {runs} runs, {bytes} bytes, {entries} entries");
        }
    }
    Ok(())
}
