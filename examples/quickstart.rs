//! Quickstart: open an engine, write, read, scan, delete, inspect stats.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lsm_design_space::core::{Db, LsmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The default configuration is a RocksDB-like leveled LSM with Bloom
    // filters at 10 bits/key, fence pointers, and an LRU block cache.
    let db = Db::open_in_memory(LsmConfig::default())?;

    // Put / get / delete.
    db.put(b"hello".to_vec(), b"world".to_vec())?;
    assert_eq!(db.get(b"hello")?, Some(b"world".to_vec()));
    db.delete(b"hello".to_vec())?;
    assert_eq!(db.get(b"hello")?, None);

    // Bulk load enough to trigger flushes and compactions.
    println!("loading 100k keys…");
    for i in 0..100_000u64 {
        db.put(
            format!("user{i:012}").into_bytes(),
            format!("profile-data-for-user-{i}").into_bytes(),
        )?;
    }

    // Point lookups.
    assert_eq!(
        db.get(b"user000000042000")?.as_deref(),
        Some("profile-data-for-user-42000".to_string().as_bytes())
    );

    // Range scan.
    let page = db.scan(
        b"user000000010000".to_vec()..b"user000000010010".to_vec(),
        100,
    )?;
    println!("scan returned {} entries, first = {}", page.len(), String::from_utf8_lossy(&page[0].0));

    // The tree shape and cost counters the tutorial reasons about.
    println!("\nlevel summary (runs, bytes, entries):");
    for (i, (runs, bytes, entries)) in db.level_summary().iter().enumerate() {
        println!("  L{i}: {runs} runs, {bytes} bytes, {entries} entries");
    }
    let s = db.stats().snapshot();
    let io = db.io_stats();
    println!("\nflushes: {}, compactions: {}", s.flushes, s.compactions);
    println!(
        "write amplification: {:.1}x",
        io.total_written_blocks() as f64 * db.config().block_size as f64
            / s.bytes_ingested as f64
    );
    println!(
        "avg runs probed per get: {:.2}, filter prunes: {}",
        s.runs_per_get(),
        s.filter_prunes
    );
    Ok(())
}
