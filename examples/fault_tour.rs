//! Fault-injection tour: crash the device mid-workload, recover, and
//! watch the engine detect corruption instead of panicking.
//!
//! ```sh
//! cargo run --release --example fault_tour
//! ```

use std::sync::Arc;

use lsm_design_space::core::{Db, LsmConfig};
use lsm_design_space::storage::{
    DeviceProfile, FaultDevice, FaultKind, MemDevice, RetryDevice, RetryPolicy, StorageDevice,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // 1. Crash mid-workload, then recover.
    // ---------------------------------------------------------------
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(4096, DeviceProfile::free()));
    let fault = Arc::new(FaultDevice::new(mem, 42));
    // The 200th append-or-read the engine performs kills the device.
    fault.schedule(200, FaultKind::Crash);

    let cfg = LsmConfig {
        buffer_bytes: 16 << 10,
        cache_bytes: 0, // no block cache: reads hit the device, so the tour's bit flip lands
        ..LsmConfig::default()
    };
    let db = Db::open(Arc::clone(&fault) as Arc<dyn StorageDevice>, cfg.clone())?;

    let mut acked = 0u32;
    for i in 0..5_000u32 {
        let ok = db.put(format!("key{i:06}").into_bytes(), vec![b'v'; 100]).is_ok()
            && db.sync().is_ok();
        if ok {
            acked += 1;
        } else {
            break; // device is dead; a real process would crash here
        }
    }
    println!("device died after {acked} acknowledged writes");

    // Process death: drop the handle while the device is dead, then heal.
    drop(db);
    fault.heal();

    let db = Db::open(Arc::clone(&fault) as Arc<dyn StorageDevice>, cfg)?;
    let mut recovered = 0u32;
    for i in 0..acked {
        if db.get(format!("key{i:06}").as_bytes())?.is_some() {
            recovered += 1;
        }
    }
    println!("recovered {recovered}/{acked} acknowledged writes");
    assert_eq!(recovered, acked, "an acknowledged write was lost");

    // ---------------------------------------------------------------
    // 2. A bit flip on read is detected by the block checksum.
    // ---------------------------------------------------------------
    db.flush()?;
    fault.schedule(fault.ops_performed(), FaultKind::BitFlip);
    match db.get(b"key000007") {
        Err(e) => println!("flipped read surfaced a typed error: {e}"),
        Ok(v) => println!("flipped read went unnoticed (cache hit?): {v:?}"),
    }
    let stats = db.io_stats();
    println!(
        "io stats: {} corruption events detected, {} retries",
        stats.corruption_detected, stats.retries
    );

    // ---------------------------------------------------------------
    // 3. Transient errors are absorbed by the retry layer.
    // ---------------------------------------------------------------
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(4096, DeviceProfile::free()));
    let flaky = Arc::new(FaultDevice::new(mem, 7));
    for at in [3u64, 9, 17, 31] {
        flaky.schedule(at, FaultKind::Transient);
    }
    let retry: Arc<dyn StorageDevice> = Arc::new(RetryDevice::new(
        Arc::clone(&flaky) as Arc<dyn StorageDevice>,
        RetryPolicy::default(),
    ));
    let db = Db::open(retry, LsmConfig::default())?;
    for i in 0..100u32 {
        db.put(format!("k{i}").into_bytes(), b"v".to_vec())?;
        db.sync()?;
    }
    println!(
        "flaky device: 100 writes all succeeded, {} transparent retries",
        db.io_stats().retries
    );
    Ok(())
}
