//! A guided tour of the LSM design space: uses the analytical cost models
//! to *navigate* (tutorial Module III), picks a design for a described
//! workload, then builds the chosen engine and checks the prediction
//! against measurement.
//!
//! ```sh
//! cargo run --release --example design_space_tour
//! ```

use lsm_design_space::core::{
    Db, FilterAllocation, LsmConfig, MergeLayout,
};
use lsm_design_space::model::navigator::Environment;
use lsm_design_space::model::{navigate, DesignSpace, MergePolicy, WorkloadProfile};

fn to_engine_config(policy: MergePolicy, size_ratio: u64, monkey: bool) -> LsmConfig {
    LsmConfig {
        layout: match policy {
            MergePolicy::Leveling => MergeLayout::Leveled,
            MergePolicy::Tiering => MergeLayout::Tiered,
            MergePolicy::LazyLeveling => MergeLayout::LazyLeveled,
        },
        size_ratio: size_ratio as usize,
        filter_allocation: if monkey {
            FilterAllocation::Monkey
        } else {
            FilterAllocation::Uniform
        },
        buffer_bytes: 128 << 10,
        ..LsmConfig::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // describe the deployment and the expected workload
    let env = Environment {
        num_entries: 200_000,
        entry_bytes: 80,
        entries_per_block: 4096 / 80,
        total_memory_bytes: 2 << 20,
    };
    let workloads = [
        ("ingest-heavy (95% writes)", WorkloadProfile {
            writes: 0.95,
            point_reads: 0.04,
            empty_point_reads: 0.01,
            range_reads: 0.0,
            range_entries: 0.0,
        }),
        ("lookup-heavy (80% point reads)", WorkloadProfile {
            writes: 0.15,
            point_reads: 0.50,
            empty_point_reads: 0.30,
            range_reads: 0.05,
            range_entries: 100.0,
        }),
        ("mixed analytics (scan-heavy)", WorkloadProfile {
            writes: 0.30,
            point_reads: 0.10,
            empty_point_reads: 0.05,
            range_reads: 0.55,
            range_entries: 2000.0,
        }),
    ];

    for (name, w) in workloads {
        println!("── workload: {name} ──");
        let ranked = navigate(&DesignSpace::default(), &env, &w);
        println!("  top designs by modeled cost (I/Os per op):");
        for c in ranked.iter().take(3) {
            println!(
                "    {:13} T={:<2} buffer={:<8} bits/key={:<5.1} monkey={:<5} cost={:.4}",
                c.design.policy.label(),
                c.design.size_ratio,
                c.design.buffer_entries,
                c.design.bits_per_key,
                c.design.monkey,
                c.cost
            );
        }
        let worst = ranked.last().unwrap();
        println!(
            "    (worst design: {} T={} at {:.4} — {:.0}x the best)",
            worst.design.policy.label(),
            worst.design.size_ratio,
            worst.cost,
            worst.cost / ranked[0].cost.max(1e-12)
        );

        // build the winner and sanity-check it end to end
        let best = ranked[0];
        let cfg = to_engine_config(best.design.policy, best.design.size_ratio, best.design.monkey);
        let db = Db::open_in_memory(cfg)?;
        for i in 0..50_000u64 {
            db.put(format!("key{i:010}").into_bytes(), vec![7u8; 64])?;
        }
        let bs = db.config().block_size as f64;
        let measured_write_amp =
            db.io_stats().total_written_blocks() as f64 * bs / db.stats().snapshot().bytes_ingested as f64;
        println!(
            "  built the winner: measured ingest write-amp {:.1}x over 50k keys\n",
            measured_write_amp
        );
    }
    println!("the navigator picks write-friendly shapes for ingest and");
    println!("read-friendly shapes for lookups — tutorial Module III.1.");
    Ok(())
}
