//! A social-graph-style workload (the use case behind MyRocks at
//! Facebook, which the tutorial's introduction motivates): skewed point
//! reads of user profiles mixed with a steady write stream, served by two
//! differently-tuned engines — a write-optimized tiered tree and a
//! read-optimized leveled tree with Monkey filters — to show the tradeoff
//! on real traffic.
//!
//! ```sh
//! cargo run --release --example social_graph
//! ```

use lsm_design_space::core::{
    Db, FilterAllocation, LsmConfig, MergeLayout,
};
use lsm_design_space::workload::{KeyDistribution, OpMix, Operation, WorkloadGenerator, WorkloadSpec};

fn engine(layout: MergeLayout, alloc: FilterAllocation) -> LsmConfig {
    LsmConfig {
        layout,
        filter_allocation: alloc,
        buffer_bytes: 256 << 10,
        bits_per_key: 8.0,
        ..LsmConfig::default()
    }
}

fn run(name: &str, cfg: LsmConfig) -> Result<(), Box<dyn std::error::Error>> {
    let db = Db::open_in_memory(cfg)?;
    // load phase: 200k user profiles
    let load = WorkloadGenerator::new(WorkloadSpec {
        key_space: 200_000,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::write_only(),
        value_len: 128,
        seed: 7,
        ..WorkloadSpec::default()
    })
    .take(200_000);
    for op in load {
        if let Operation::Put { key, value } = op {
            db.put(key, value)?;
        }
    }
    db.io_stats();
    let ingest_io = db.io_stats();
    // serve phase: YCSB-B-like — 95% zipfian reads, 5% updates
    let serve = WorkloadGenerator::new(WorkloadSpec {
        key_space: 200_000,
        distribution: KeyDistribution::Zipfian { theta: 0.99 },
        mix: OpMix {
            insert: 0.0,
            update: 0.05,
            read: 0.95,
            scan: 0.0,
            delete: 0.0,
            rmw: 0.0,
        },
        value_len: 128,
        seed: 11,
        ..WorkloadSpec::default()
    })
    .take(100_000);
    let before = db.io_stats();
    let stats_before = db.stats().snapshot();
    for op in serve {
        match op {
            Operation::Put { key, value } => db.put(key, value)?,
            Operation::Get { key } => {
                db.get(&key)?;
            }
            _ => {}
        }
    }
    let after = db.io_stats();
    let stats_after = db.stats().snapshot();
    let delta = after.delta_since(&before);
    let sdelta = stats_after.delta_since(&stats_before);
    let bs = db.config().block_size as f64;
    println!("── {name} ──");
    println!(
        "  ingest write amp      : {:.1}x",
        ingest_io.total_written_blocks() as f64 * bs / (200_000.0 * (16.0 + 128.0))
    );
    println!(
        "  serve reads: {:.3} blocks/get ({} gets, {}% cache hits)",
        delta.total_read_blocks() as f64 / sdelta.gets.max(1) as f64,
        sdelta.gets,
        db.cache_stats()
            .map(|(h, m)| h * 100 / (h + m).max(1))
            .unwrap_or(0),
    );
    println!(
        "  runs/get: {:.2}, filter prunes: {}",
        sdelta.runs_probed as f64 / sdelta.gets.max(1) as f64,
        sdelta.filter_prunes
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("social-graph workload: load 200k profiles, serve zipfian reads\n");
    run(
        "write-optimized: tiered, uniform filters",
        engine(MergeLayout::Tiered, FilterAllocation::Uniform),
    )?;
    run(
        "read-optimized: leveled + Monkey filters",
        engine(MergeLayout::Leveled, FilterAllocation::Monkey),
    )?;
    run(
        "balanced: lazy leveling (Dostoevsky)",
        engine(MergeLayout::LazyLeveled, FilterAllocation::Monkey),
    )?;
    println!("\nwrite-optimized ingests cheaper; read-optimized serves cheaper —");
    println!("the read/write tradeoff of tutorial Module I.2.");
    Ok(())
}
