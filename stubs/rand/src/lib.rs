//! Offline shim for the `rand 0.8` API surface this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this path crate. The generator is xoshiro256++
//! seeded via splitmix64 — deterministic for a given seed, which is all
//! the workload generator and tests rely on (they never depend on the
//! exact stream matching upstream `rand`).

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample within `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via splitmix64. Deterministic and fast; not
    /// cryptographic (neither is upstream `StdRng`'s contract here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: this shim has a single generator.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }
}
