//! Offline shim for the `proptest` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `proptest` to this path crate. It keeps the same test shape —
//! `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {...} }`
//! with strategies built from ranges, `any::<T>()`, tuples, `Just`,
//! `prop_oneof!`, `prop_map`, and `collection::vec` — and runs each case
//! on a deterministic per-case RNG. Shrinking is not implemented: a
//! failing case panics with the case number so it can be replayed (the
//! generator is fully deterministic, so case N always reproduces).

pub mod test_runner {
    /// Per-run configuration. Only `cases` is consulted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator; one per test case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for case `case` (same case ⇒ same stream, always).
        pub fn deterministic(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5DEECE66D,
            }
        }

        /// Next 64 uniformly-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f` (bounded retries).
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        /// Type-erases the strategy for heterogeneous composition
        /// (`prop_oneof!` arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Strategy yielding a clone of one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Weighted choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Union from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Full-domain strategies produced by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod arbitrary {
    use std::marker::PhantomData;

    /// `any::<T>()`: the full-domain strategy for `T`.
    pub fn any<T>() -> crate::strategy::Any<T> {
        crate::strategy::Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec`]; built from `usize` ranges or a constant.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests: each `fn` runs once per generated case.
///
/// Failures panic with the case ordinal; generation is deterministic, so a
/// failing case reproduces on every run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(__case as u64);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Property-test assertion (panics, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion (panics, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion (panics, like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (or unweighted) choice among strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prop` meta-module.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Put(u16, u8),
        Flush,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
            1 => Just(Op::Flush),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.25f64..0.75, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_map_produce_both_arms(ops in vec(arb_op(), 64..65)) {
            // with weight 3:1 over 64 draws, both arms all but surely appear
            prop_assert!(ops.iter().any(|o| matches!(o, Op::Put(_, _))));
            prop_assert_eq!(ops.len(), 64);
        }

        #[test]
        fn assume_skips_cases(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = vec(any::<u64>(), 5..20);
        let a = s.generate(&mut TestRng::deterministic(9));
        let b = s.generate(&mut TestRng::deterministic(9));
        assert_eq!(a, b);
    }
}
