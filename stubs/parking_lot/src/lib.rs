//! Offline shim for the `parking_lot` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `parking_lot` to this path crate. It wraps `std::sync`
//! primitives and strips lock poisoning (parking_lot locks do not poison):
//! a panic while a lock is held does not turn every later access into an
//! error, which matches the semantics the engine was written against.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` cannot fail.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
