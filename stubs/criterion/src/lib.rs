//! Offline shim for the `criterion` API surface the bench targets use.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `criterion` to this path crate. It keeps bench code compiling
//! and runnable — each benchmark runs a short timed loop and prints a
//! mean per-iteration time — without criterion's statistics, reports, or
//! plotting. Numbers it prints are indicative only.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized in [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs; larger batches.
    SmallInput,
    /// Large per-iteration inputs; one input per measurement.
    LargeInput,
    /// Explicit number of inputs per batch.
    NumIterations(u64),
}

impl BatchSize {
    fn iters(self) -> u64 {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::NumIterations(n) => n.max(1),
        }
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark closure; runs the measured routine.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher { samples, elapsed: Duration::ZERO, iters: 0 }
    }

    /// Times `routine`, keeping its output live via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // one warmup pass, then the timed loop
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.samples;
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_batch = size.iters();
        let batches = (self.samples / per_batch).max(1);
        for _ in 0..batches {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.elapsed += start.elapsed();
            self.iters += per_batch;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name}: no iterations recorded");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / self.iters as u128;
        println!("{name}: {} iters, mean {} ns/iter", self.iters, per_iter);
    }
}

/// Entry point handed to `criterion_group!` targets.
pub struct Criterion {
    samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 100 }
    }
}

impl Criterion {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), samples: None }
    }
}

/// Group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(1) as u64);
        self
    }

    /// Accepts a throughput annotation (not reported by this shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.samples.unwrap_or(self.criterion.samples);
        let mut b = Bencher::new(samples);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a bench group function calling each target with a `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0u64;
        let mut c = Criterion::default();
        c.sample_size(10).bench_function("count", |b| b.iter(|| runs += 1));
        assert!(runs >= 10);
    }

    #[test]
    fn iter_batched_feeds_setup_outputs() {
        let mut c = Criterion::default();
        let mut total = 0u64;
        let mut group = c.benchmark_group("g");
        group.sample_size(16).bench_function("sum", |b| {
            b.iter_batched(|| 3u64, |x| total += x, BatchSize::SmallInput)
        });
        group.finish();
        assert!(total > 0 && total % 3 == 0);
    }
}
