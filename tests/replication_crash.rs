//! Failover crash sweep: kill the primary at every I/O ordinal, promote
//! the replica, and prove the replication contract.
//!
//! Topology per case: a one-shard primary on a [`FaultDevice`] wired to
//! ship every committed batch to a one-shard replica on a clean device,
//! with `ack_quorum = 1` — so a client `Ok` means the batch was applied
//! **and synced on the replica** before the ack left the primary. The
//! sweep schedules a crash at each primary-device I/O ordinal of a
//! deterministic workload, then promotes the replica and verifies:
//!
//! * every quorum-acked write (op `Ok`) survives the failover — the
//!   promoted server reads exactly the acknowledged state;
//! * an attempted-but-unacked write is never *half*-visible: each key
//!   reads one of its legal states (last acked, or one of the unacked
//!   attempts that may have raced ahead), and scans agree with gets;
//! * the promoted server accepts new writes (it really is a primary).
//!
//! The maintenance mode follows `LSM_BACKGROUND` (the sweep runs in both
//! modes under `scripts/verify.sh`), and `LSM_SEED` reseeds the fault
//! device and the workload; both are printed so any failure reproduces.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use lsm_core::{Db, LsmConfig};
use lsm_server::harness::start_cluster;
use lsm_server::protocol::{Request, Response};
use lsm_server::{
    promote_replica, Client, PrimaryReplication, ReplicationRole, Server, ServerConfig,
    TestCluster,
};
use lsm_storage::{DeviceProfile, FaultDevice, FaultKind, MemDevice, StorageDevice};

const SCRIPT_OPS: usize = 48;

fn sweep_seed() -> u64 {
    std::env::var("LSM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA11_0E52)
}

/// Engine config for both nodes; the maintenance mode comes from
/// `LSM_BACKGROUND` via `small_for_tests`, so one binary sweeps both.
fn node_cfg() -> LsmConfig {
    // 1 KiB buffer: the ~23-key hot set overflows the memtable even
    // though inserts replace in place, so the sweep crosses flush and
    // manifest I/O on the primary, not just the WAL path
    LsmConfig {
        wal: true,
        buffer_bytes: 1 << 10,
        ..LsmConfig::small_for_tests()
    }
}

fn fault_device(seed: u64) -> Arc<FaultDevice> {
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    Arc::new(FaultDevice::new(mem, seed))
}

fn erased(dev: &Arc<FaultDevice>) -> Arc<dyn StorageDevice> {
    Arc::clone(dev) as Arc<dyn StorageDevice>
}

/// Legal post-failover states per key: the last quorum-acked state must
/// be readable; attempted-unacked writes may or may not have reached the
/// replica before the crash.
#[derive(Default)]
struct Shadow {
    acked: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    maybe: BTreeMap<Vec<u8>, BTreeSet<Option<Vec<u8>>>>,
}

impl Shadow {
    fn attempt(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        self.maybe.entry(key.to_vec()).or_default().insert(value);
    }

    fn ack(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        self.acked.insert(key.to_vec(), value);
        self.maybe.remove(key);
    }

    fn allowed(&self, key: &[u8]) -> BTreeSet<Option<Vec<u8>>> {
        let mut states = BTreeSet::new();
        states.insert(self.acked.get(key).cloned().unwrap_or(None));
        if let Some(m) = self.maybe.get(key) {
            states.extend(m.iter().cloned());
        }
        states
    }

    fn keys(&self) -> BTreeSet<Vec<u8>> {
        self.acked.keys().chain(self.maybe.keys()).cloned().collect()
    }
}

/// One sequential client op against the primary. `Ok` is the quorum ack;
/// anything else — a typed error, `ReplicaLag`, or a dead connection —
/// leaves the op attempted-but-unacked.
fn apply_op(c: &mut Client, shadow: &mut Shadow, key: Vec<u8>, value: Option<Vec<u8>>) {
    shadow.attempt(&key, value.clone());
    let req = match &value {
        Some(v) => Request::Put {
            key: key.clone(),
            value: v.clone(),
        },
        None => Request::Delete { key: key.clone() },
    };
    if matches!(c.call(&req), Ok(Response::Ok)) {
        shadow.ack(&key, value);
    }
}

/// Deterministic script over a hot keyspace: varying value sizes and a
/// delete every 7th op, reseeded by `LSM_SEED`.
fn scripted_workload(c: &mut Client, shadow: &mut Shadow, seed: u64) {
    for i in 0..SCRIPT_OPS {
        let slot = (i.wrapping_mul(17).wrapping_add(seed as usize)) % 23;
        let key = format!("key{slot:03}").into_bytes();
        if i % 7 == 3 {
            apply_op(c, shadow, key, None);
        } else {
            let len = 16 + (i * 13 + (seed % 11) as usize) % 90;
            let value = vec![b'a' + (i % 26) as u8; len];
            apply_op(c, shadow, key, Some(value));
        }
    }
}

/// Starts the one-shard primary over `dev`, shipping to `replica_addr`
/// with quorum 1. `None` if the device is already dead at open.
fn start_primary(dev: &Arc<FaultDevice>, replica_addr: std::net::SocketAddr) -> Option<Server> {
    let db = Db::open(erased(dev), node_cfg()).ok()?;
    let server_cfg = ServerConfig {
        role: ReplicationRole::Primary(PrimaryReplication {
            replicas: vec![replica_addr],
            ack_quorum: 1,
            ack_timeout_ms: 2_000,
            drain_timeout_ms: 1_000,
        }),
        ..ServerConfig::default()
    };
    Server::start(vec![db], server_cfg).ok()
}

fn start_replica() -> TestCluster {
    let server_cfg = ServerConfig {
        role: ReplicationRole::Replica,
        ..ServerConfig::default()
    };
    start_cluster(1, node_cfg(), server_cfg)
}

/// Promotes the replica and verifies every key reads a legal state, the
/// scan agrees, and the promoted node accepts writes.
fn promote_and_verify(replica: &mut TestCluster, shadow: &Shadow, context: &str) {
    drop(replica.server.take().expect("replica running").abort());
    let promoted = promote_replica(&replica.devices, &replica.cfg, ServerConfig::default())
        .unwrap_or_else(|e| panic!("{context}: promotion failed: {e}"));
    let mut c = Client::connect(promoted.server.addr()).expect("connect promoted");

    let mut expected_scan: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for key in shadow.keys() {
        let got = c.get(&key).unwrap_or_else(|e| {
            panic!("{context}: get {:?} failed: {e}", String::from_utf8_lossy(&key))
        });
        let allowed = shadow.allowed(&key);
        assert!(
            allowed.contains(&got),
            "{context}: key {:?} read {:?}, but only {} states are legal \
             (acked state lost or unacked write half-visible)",
            String::from_utf8_lossy(&key),
            got.as_ref().map(|v| v.len()),
            allowed.len(),
        );
        if let Some(v) = got {
            expected_scan.push((key, v));
        }
    }
    let scanned = c
        .scan(b"key", b"kez", u32::MAX)
        .unwrap_or_else(|e| panic!("{context}: scan failed: {e}"));
    assert_eq!(scanned, expected_scan, "{context}: scan disagrees with point gets");

    // a promoted replica is a primary: the write path must be open
    c.put(b"key-sentinel", b"promoted").unwrap_or_else(|e| {
        panic!("{context}: promoted server refused a write: {e}")
    });
    assert_eq!(c.get(b"key-sentinel").unwrap(), Some(b"promoted".to_vec()));
    drop(c);
    promoted
        .server
        .shutdown()
        .unwrap_or_else(|e| panic!("{context}: promoted shutdown failed: {e}"));
}

/// Fault-free run; its primary-device I/O count bounds the sweep range.
fn clean_run_total(seed: u64) -> u64 {
    let mut replica = start_replica();
    let fault = fault_device(seed);
    let server = start_primary(&fault, replica.addr()).expect("clean primary start");
    let mut c = Client::connect(server.addr()).expect("connect primary");
    let mut shadow = Shadow::default();
    scripted_workload(&mut c, &mut shadow, seed);
    drop(c);
    assert!(
        shadow.maybe.is_empty(),
        "fault-free run left {} unacked ops",
        shadow.maybe.len()
    );
    drop(server.abort());
    promote_and_verify(&mut replica, &shadow, "fault-free failover");
    fault.ops_performed()
}

/// One case: crash the primary device at ordinal `at`, finish the
/// workload against the dying server, kill it, promote the replica,
/// verify. Returns whether the fault actually fired.
fn crash_case(seed: u64, at: u64) -> bool {
    let mut replica = start_replica();
    let fault = fault_device(seed ^ at);
    fault.schedule(at, FaultKind::Crash);

    let mut shadow = Shadow::default();
    if let Some(server) = start_primary(&fault, replica.addr()) {
        let mut c = Client::connect(server.addr()).expect("connect primary");
        scripted_workload(&mut c, &mut shadow, seed);
        drop(c);
        drop(server.abort());
    }
    let fired = fault.pending_faults().is_empty();
    promote_and_verify(&mut replica, &shadow, &format!("crash at ordinal {at}"));
    fired
}

/// The failover sweep: a crash at every primary-device I/O ordinal, a
/// promotion and full verification after each.
#[test]
fn failover_preserves_quorum_acked_writes_at_every_crash_point() {
    let seed = sweep_seed();
    let total = clean_run_total(seed);
    eprintln!(
        "replication crash sweep: seed={seed:#x} background={:?} ordinals={total}",
        node_cfg().background
    );
    assert!(total > 40, "workload too small to exercise failover ({total} I/Os)");
    let mut fired = 0u64;
    for at in 0..total {
        if crash_case(seed, at) {
            fired += 1;
        }
    }
    eprintln!("replication crash sweep: {fired}/{total} crash points fired");
    // threaded-mode worker timing can shift ordinals so a scheduled
    // fault never fires; those cases degrade to clean failovers (still
    // verified), but a sweep where most miss proves nothing
    assert!(
        fired * 2 >= total,
        "only {fired}/{total} crash points fired; sweep is mostly vacuous"
    );
}
