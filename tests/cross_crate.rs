//! Cross-crate integration tests: the umbrella crate's public API, the
//! workload generator driving the engine, and the analytical models
//! agreeing with measured engine behaviour on direction.

use lsm_design_space::core::{BackgroundMode, Db, LsmConfig, MergeLayout};
use lsm_design_space::model::{CostModel, LsmDesign, MergePolicy};
use lsm_design_space::workload::{Operation, Trace, WorkloadGenerator, WorkloadSpec, YcsbWorkload};

fn drive(db: &Db, ops: impl IntoIterator<Item = Operation>) {
    for op in ops {
        match op {
            Operation::Put { key, value } => db.put(key, value).unwrap(),
            Operation::Get { key } => {
                db.get(&key).unwrap();
            }
            Operation::Scan { start, limit } => {
                let mut end = start.clone();
                end.extend_from_slice(b"\xff\xff");
                db.scan(start..end, limit).unwrap();
            }
            Operation::Delete { key } => db.delete(key).unwrap(),
            Operation::ReadModifyWrite { key, value } => {
                db.get(&key).unwrap();
                db.put(key, value).unwrap();
            }
        }
    }
}

#[test]
fn umbrella_crate_quickstart_flow() {
    let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
    db.put(b"k".to_vec(), b"v".to_vec()).unwrap();
    assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
}

#[test]
fn every_ycsb_preset_runs_against_the_engine() {
    for preset in YcsbWorkload::ALL {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        // load phase
        let load = WorkloadGenerator::new(WorkloadSpec {
            key_space: 2000,
            mix: lsm_design_space::workload::OpMix::write_only(),
            value_len: 32,
            seed: 1,
            ..WorkloadSpec::default()
        })
        .take(2000);
        drive(&db, load);
        // run phase
        let run = WorkloadGenerator::new(preset.spec(2000, 2)).take(3000);
        drive(&db, run);
        let s = db.stats().snapshot();
        assert!(s.puts + s.gets + s.scans >= 3000, "preset {}", preset.label());
    }
}

#[test]
fn identical_traces_give_identical_io_on_identical_configs() {
    let trace = Trace::record(
        WorkloadSpec {
            key_space: 3000,
            mix: lsm_design_space::workload::OpMix {
                insert: 0.5,
                update: 0.1,
                read: 0.3,
                scan: 0.05,
                delete: 0.05,
                rmw: 0.0,
            },
            value_len: 48,
            seed: 99,
            ..WorkloadSpec::default()
        },
        8000,
    );
    let run = || {
        // determinism is an `Inline`-mode guarantee: with threaded
        // maintenance, flush timing (and hence I/O counts) depends on
        // scheduling
        let cfg = LsmConfig {
            background: BackgroundMode::Inline,
            ..LsmConfig::small_for_tests()
        };
        let db = Db::open_in_memory(cfg).unwrap();
        drive(&db, trace.clone());
        (
            db.io_stats().total_read_blocks(),
            db.io_stats().total_written_blocks(),
            db.stats().snapshot().compactions,
        )
    };
    assert_eq!(run(), run(), "engine must be deterministic");
}

#[test]
fn model_and_engine_agree_on_write_cost_direction() {
    // the model says tiering writes less than leveling; verify the engine
    let measure = |layout: MergeLayout| {
        let cfg = LsmConfig {
            layout,
            wal: false,
            cache_bytes: 0,
            // deterministic shapes: worker timing decides which merges
            // complete, which would blur the leveled/tiered comparison
            background: BackgroundMode::Inline,
            ..LsmConfig::small_for_tests()
        };
        let db = Db::open_in_memory(cfg).unwrap();
        for i in 0..20_000u32 {
            let id = (i as u64 * 2654435761 % 20_000) as u32;
            db.put(format!("user{id:010}").into_bytes(), vec![7u8; 48]).unwrap();
        }
        db.io_stats().total_written_blocks()
    };
    let measured_leveled = measure(MergeLayout::Leveled);
    let measured_tiered = measure(MergeLayout::Tiered);

    let model = |policy: MergePolicy| {
        CostModel::new(
            LsmDesign {
                policy,
                size_ratio: 4,
                buffer_entries: 64,
                bits_per_key: 10.0,
                monkey: false,
            },
            5000,
            8,
        )
        .write_cost()
    };
    let model_leveled = model(MergePolicy::Leveling);
    let model_tiered = model(MergePolicy::Tiering);

    assert!(model_tiered < model_leveled, "model direction");
    assert!(
        measured_tiered < measured_leveled,
        "measured direction: tiered {measured_tiered} vs leveled {measured_leveled}"
    );
}

#[test]
fn model_and_engine_agree_on_lookup_cost_direction() {
    // the model says more runs (tiering) = more zero-result probes when
    // filters are off; verify with the engine
    let measure = |layout: MergeLayout| {
        let cfg = LsmConfig {
            layout,
            filter: lsm_design_space::core::FilterKind::None,
            wal: false,
            cache_bytes: 0,
            // deterministic shapes: the run count each probe touches is
            // exactly what the cost model predicts only when maintenance
            // runs inline
            background: BackgroundMode::Inline,
            ..LsmConfig::small_for_tests()
        };
        let db = Db::open_in_memory(cfg).unwrap();
        for i in 0..20_000u32 {
            let id = (i as u64 * 2654435761 % 20_000) as u32;
            db.put(format!("user{id:010}").into_bytes(), vec![7u8; 48]).unwrap();
        }
        let io0 = db.io_stats().total_read_blocks();
        for i in 0..500u32 {
            let probe = format!("user{:010}x", i * 7 % 20_000);
            db.get(probe.as_bytes()).unwrap();
        }
        db.io_stats().total_read_blocks() - io0
    };
    let leveled = measure(MergeLayout::Leveled);
    let tiered = measure(MergeLayout::Tiered);
    assert!(
        tiered > leveled,
        "tiered zero-result reads {tiered} must exceed leveled {leveled}"
    );
}

#[test]
fn filters_crate_composes_with_engine_tables() {
    // build an engine with each advanced filter and make sure the stats
    // show the filters actually pruning
    for filter in [
        lsm_design_space::core::FilterKind::Xor,
        lsm_design_space::core::FilterKind::Ribbon,
    ] {
        let cfg = LsmConfig {
            filter,
            wal: false,
            ..LsmConfig::small_for_tests()
        };
        let db = Db::open_in_memory(cfg).unwrap();
        for i in 0..3000u32 {
            db.put(format!("user{i:010}").into_bytes(), vec![1u8; 32]).unwrap();
        }
        for i in 0..500u32 {
            let probe = format!("user{:010}x", i * 5);
            db.get(probe.as_bytes()).unwrap();
        }
        assert!(
            db.stats().snapshot().filter_prunes > 200,
            "{filter:?} never pruned"
        );
    }
}
