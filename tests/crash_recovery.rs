//! Crash-recovery integration tests.
//!
//! These tests drive the engine through a [`FaultDevice`] that injects
//! deterministic, scripted faults — whole-device crashes, torn (partial)
//! block writes, bit flips on read, and transient retryable errors — and
//! check the durability contract end to end:
//!
//! * **No acknowledged write is ever lost.** A write is *acknowledged*
//!   once `put`/`delete` **and** the following `sync` both return `Ok`.
//!   After a crash at any I/O ordinal, reopening the database must
//!   surface every acknowledged write.
//! * **Unacknowledged writes are ambiguous, not corrupt.** A write whose
//!   op or sync failed may or may not survive (standard torn-tail
//!   semantics); either outcome is legal, but the reopened database must
//!   stay internally consistent (`scan` agrees with point `get`s).
//! * **Corrupted input never panics.** Bad checksums, dangling value-log
//!   pointers, and stale or half-written manifests surface as
//!   `StorageError::Corruption` (and bump the `corruption_detected`
//!   counter), never as a panic or a silently empty database.
//!
//! The crash protocol mirrors a real process death: the `Db` handle is
//! dropped *while the device is still dead*, so destructors (WAL sync,
//! obsolete-table garbage collection) fail harmlessly instead of mutating
//! the post-crash disk image. Only then is the device healed and the
//! database reopened.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use lsm_core::config::KvSeparation;
use lsm_core::manifest::{find_manifest, write_manifest, ManifestState};
use lsm_core::{Db, LsmConfig};
use lsm_storage::{
    DeviceProfile, FaultDevice, FaultKind, FileId, MemDevice, RetryDevice, RetryPolicy,
    StorageDevice, StorageError,
};

use proptest::prelude::*;

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

/// Seed for the scripted sweeps; each case folds in its ordinal so
/// bit-flip positions vary across cases while staying reproducible.
const SWEEP_SEED: u64 = 0xC0FF_EE00;

/// Number of operations in the scripted workload. Sized so the workload
/// crosses several flushes, at least one compaction, and multiple WAL
/// rotations under the small config below.
const SCRIPT_OPS: usize = 110;

/// Small-geometry config: 512-byte blocks and a 2 KiB write buffer force
/// frequent flushes so a crash sweep hits WAL appends, flush writes,
/// compaction writes, and manifest rewrites without a huge workload.
fn small_cfg() -> LsmConfig {
    LsmConfig {
        buffer_bytes: 2 << 10,
        // The sweep schedules faults at exact I/O ordinals, which only
        // line up when maintenance runs inline on the writer's stack.
        background: lsm_core::BackgroundMode::Inline,
        ..LsmConfig::small_for_tests()
    }
}

/// Same geometry with key-value separation on, so the sweep also crosses
/// value-log appends and pointer resolution.
fn kv_cfg() -> LsmConfig {
    LsmConfig {
        kv_separation: Some(KvSeparation { min_value_bytes: 48 }),
        ..small_cfg()
    }
}

/// Fresh in-memory device (matching the config's 512-byte blocks) behind
/// a fault injector.
fn fault_device(seed: u64) -> Arc<FaultDevice> {
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    Arc::new(FaultDevice::new(mem, seed))
}

/// Upcasts for `Db::open`, which takes the erased device type.
fn erased(dev: &Arc<FaultDevice>) -> Arc<dyn StorageDevice> {
    Arc::clone(dev) as Arc<dyn StorageDevice>
}

/// Model of what the database may legally contain after a crash.
///
/// `acked` holds the last acknowledged state per key (`Some(v)` = live
/// value, `None` = acknowledged delete). `maybe` holds the states of
/// writes that were *attempted* but never acknowledged; any of them — or
/// the acked base state — may surface after recovery. An acknowledgment
/// clears the key's `maybe` set: with a single crash point, every failed
/// attempt strictly follows the last successful one, so an earlier
/// unacked state can never shadow a later acked one.
#[derive(Default)]
struct Shadow {
    acked: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    maybe: BTreeMap<Vec<u8>, BTreeSet<Option<Vec<u8>>>>,
}

impl Shadow {
    fn attempt(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        self.maybe.entry(key.to_vec()).or_default().insert(value);
    }

    fn ack(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        self.acked.insert(key.to_vec(), value);
        self.maybe.remove(key);
    }

    /// Legal post-recovery states for `key`. A key that was never acked
    /// defaults to absent (`None`).
    fn allowed(&self, key: &[u8]) -> BTreeSet<Option<Vec<u8>>> {
        let mut states = BTreeSet::new();
        states.insert(self.acked.get(key).cloned().unwrap_or(None));
        if let Some(m) = self.maybe.get(key) {
            states.extend(m.iter().cloned());
        }
        states
    }

    /// Every key the workload ever touched.
    fn keys(&self) -> BTreeSet<Vec<u8>> {
        self.acked.keys().chain(self.maybe.keys()).cloned().collect()
    }
}

/// Applies one write (`Some` = put, `None` = delete) and records the
/// outcome in the shadow. The attempt is recorded *before* the op runs:
/// if the device dies mid-write the state is ambiguous either way.
fn apply_op(db: &Db, shadow: &mut Shadow, key: Vec<u8>, value: Option<Vec<u8>>) {
    shadow.attempt(&key, value.clone());
    let op_ok = match &value {
        Some(v) => db.put(key.clone(), v.clone()).is_ok(),
        None => db.delete(key.clone()).is_ok(),
    };
    // Acknowledged ⟺ the op succeeded AND the WAL tail reached the device.
    if op_ok && db.sync().is_ok() {
        shadow.ack(&key, value);
    }
}

/// Deterministic mixed workload: 23 hot keys, varying value sizes,
/// periodic deletes. Every op is individually synced so the
/// acknowledged/unacknowledged boundary is exact.
fn scripted_workload(db: &Db, shadow: &mut Shadow, ops: usize) {
    for i in 0..ops {
        let key = format!("key{:03}", (i * 17) % 23).into_bytes();
        if i % 7 == 3 {
            apply_op(db, shadow, key, None);
        } else {
            let len = 16 + (i * 13) % 90;
            let value = vec![b'a' + (i % 26) as u8; len];
            apply_op(db, shadow, key, Some(value));
        }
    }
}

/// Checks the reopened database against the shadow: every touched key
/// must read one of its legal states, and a full scan must agree exactly
/// with the point reads.
fn verify(db: &Db, shadow: &Shadow, context: &str) {
    let mut expected_scan: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for key in shadow.keys() {
        let got = db
            .get(&key)
            .unwrap_or_else(|e| panic!("{context}: get {:?} failed: {e}", String::from_utf8_lossy(&key)));
        let allowed = shadow.allowed(&key);
        assert!(
            allowed.contains(&got),
            "{context}: key {:?} read {:?}, but only {} states are legal \
             (acked {:?}, {} unacked attempts)",
            String::from_utf8_lossy(&key),
            got.as_ref().map(|v| v.len()),
            allowed.len(),
            shadow.acked.get(&key).map(|v| v.as_ref().map(|v| v.len())),
            shadow.maybe.get(&key).map_or(0, |m| m.len()),
        );
        if let Some(v) = got {
            expected_scan.push((key, v));
        }
    }
    let scanned = db
        .scan(b"key".to_vec()..b"kez".to_vec(), usize::MAX)
        .unwrap_or_else(|e| panic!("{context}: scan failed: {e}"));
    assert_eq!(scanned, expected_scan, "{context}: scan disagrees with point gets");
}

/// Runs the scripted workload fault-free and returns how many I/O
/// ordinals it consumes; the crash sweeps fault every one of them.
fn clean_run_total(cfg: &LsmConfig, ops: usize) -> u64 {
    let fault = fault_device(SWEEP_SEED);
    let db = Db::open(erased(&fault), cfg.clone()).expect("clean open");
    let mut shadow = Shadow::default();
    scripted_workload(&db, &mut shadow, ops);
    drop(db);
    // Sanity: with no faults, every op must have been acknowledged.
    assert!(shadow.maybe.is_empty(), "fault-free run left unacked ops");
    fault.ops_performed()
}

/// One crash case: schedule `kind` at I/O ordinal `at`, run the scripted
/// workload (tolerating typed errors), drop the handle while the device
/// is dead, heal, reopen, and verify the shadow contract.
fn crash_case(cfg: &LsmConfig, at: u64, kind: FaultKind, ops: usize) {
    let fault = fault_device(SWEEP_SEED ^ at);
    fault.schedule(at, kind.clone());

    let mut shadow = Shadow::default();
    match Db::open(erased(&fault), cfg.clone()) {
        Ok(db) => {
            scripted_workload(&db, &mut shadow, ops);
            // Process death: destructors run against the dead device.
            drop(db);
        }
        // The fault fired inside open itself — a typed error, never a
        // panic, is the whole contract here.
        Err(_) => {}
    }
    assert!(
        fault.pending_faults().is_empty(),
        "fault at ordinal {at} never fired (only {} I/Os ran); case is vacuous",
        fault.ops_performed(),
    );

    fault.heal();
    let db = Db::open(erased(&fault), cfg.clone())
        .unwrap_or_else(|e| panic!("reopen after {kind:?} at ordinal {at} failed: {e}"));
    verify(&db, &shadow, &format!("{kind:?} at ordinal {at}"));
}

// ---------------------------------------------------------------------
// Crash sweeps: a fault at every I/O point
// ---------------------------------------------------------------------

/// The tentpole sweep: crash the device at *every* append-or-read ordinal
/// the workload performs — WAL appends, memtable flushes, compaction
/// reads/writes, and manifest rewrites all included — and prove that no
/// acknowledged write is lost and recovery never panics.
#[test]
fn crash_at_every_io_point_loses_no_acked_write() {
    let cfg = small_cfg();
    let total = clean_run_total(&cfg, SCRIPT_OPS);
    assert!(total > 100, "workload too small to exercise recovery ({total} I/Os)");
    for at in 0..total {
        crash_case(&cfg, at, FaultKind::Crash, SCRIPT_OPS);
    }
}

/// Same sweep with key-value separation enabled, so crashes also land
/// between a value-log append and the WAL record that references it.
#[test]
fn crash_sweep_with_kv_separation() {
    let cfg = kv_cfg();
    let total = clean_run_total(&cfg, SCRIPT_OPS);
    for at in 0..total {
        crash_case(&cfg, at, FaultKind::Crash, SCRIPT_OPS);
    }
}

/// Torn-write sweep: the append at the fault point persists only a prefix
/// of its blocks before the device dies. Recovery must treat the torn
/// tail as a clean end-of-log, not corruption.
#[test]
fn torn_write_at_every_other_io_point_recovers() {
    let cfg = small_cfg();
    let total = clean_run_total(&cfg, SCRIPT_OPS);
    for at in (0..total).step_by(2) {
        crash_case(&cfg, at, FaultKind::TornWrite { keep_blocks: at % 3 }, SCRIPT_OPS);
    }
}

/// A torn WAL tail is ordinary crash behavior: recovery stops at the tear
/// silently — the `corruption_detected` counter must stay at zero — and
/// every write acknowledged before the tear survives.
#[test]
fn torn_wal_tail_is_silent_and_loses_nothing_acked() {
    let fault = fault_device(3);
    let cfg = small_cfg();
    let db = Db::open(erased(&fault), cfg.clone()).unwrap();
    db.put(b"alpha".to_vec(), b"one".to_vec()).unwrap();
    db.sync().unwrap();
    db.put(b"beta".to_vec(), b"two".to_vec()).unwrap();
    db.sync().unwrap();

    // The next WAL append tears: zero blocks survive, then the device dies.
    fault.schedule(fault.ops_performed(), FaultKind::TornWrite { keep_blocks: 0 });
    let _ = db.put(b"gamma".to_vec(), b"three".to_vec());
    let _ = db.sync();
    drop(db);

    fault.heal();
    let db = Db::open(erased(&fault), cfg).unwrap();
    assert_eq!(db.get(b"alpha").unwrap(), Some(b"one".to_vec()));
    assert_eq!(db.get(b"beta").unwrap(), Some(b"two".to_vec()));
    assert_eq!(db.get(b"gamma").unwrap(), None, "torn write must not surface");
    assert_eq!(
        db.io_stats().corruption_detected,
        0,
        "a torn tail is not corruption and must not be counted as such"
    );
}

// ---------------------------------------------------------------------
// Read-path corruption
// ---------------------------------------------------------------------

/// A bit flip in a data block read fails the block checksum: the read
/// surfaces `StorageError::Corruption`, bumps `corruption_detected`, and
/// the next (clean) read of the same key succeeds.
#[test]
fn bit_flip_on_read_is_detected_and_counted() {
    let fault = fault_device(7);
    // No block cache: every get goes to the device, so the scheduled
    // flip is guaranteed to land on a real read.
    let cfg = LsmConfig {
        cache_bytes: 0,
        ..small_cfg()
    };
    let db = Db::open(erased(&fault), cfg).unwrap();
    for i in 0..40usize {
        db.put(format!("key{i:03}").into_bytes(), vec![b'v'; 64 + i]).unwrap();
    }
    db.sync().unwrap();
    db.flush().unwrap(); // move everything into an SSTable

    let before = db.io_stats().corruption_detected;
    fault.schedule(fault.ops_performed(), FaultKind::BitFlip);
    match db.get(b"key007") {
        Err(StorageError::Corruption(msg)) => {
            assert!(!msg.is_empty(), "corruption error should say what failed")
        }
        other => panic!("flipped block read should fail with Corruption, got {other:?}"),
    }
    assert!(
        db.io_stats().corruption_detected > before,
        "detected corruption must be counted in IoStats"
    );

    // The fault was consumed; the same key now reads back intact.
    assert_eq!(db.get(b"key007").unwrap(), Some(vec![b'v'; 64 + 7]));
}

/// A value-log pointer whose target file is gone (e.g. the log was
/// deleted by an over-eager GC or lost to corruption) is a typed
/// corruption error on read — not a panic, and not a silent `None`.
#[test]
fn dangling_vlog_pointer_is_typed_corruption() {
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    let cfg = kv_cfg();
    let db = Db::open(Arc::clone(&mem), cfg.clone()).unwrap();
    db.put(b"big".to_vec(), vec![b'x'; 300]).unwrap(); // separated: ≥ 48 bytes
    db.put(b"small".to_vec(), b"inline".to_vec()).unwrap(); // inline: < 48 bytes
    db.sync().unwrap();
    db.flush().unwrap(); // the pointer now lives in an SSTable

    let (_, state) = find_manifest(&mem).unwrap().expect("manifest exists after flush");
    let vlog = FileId(state.vlog);
    drop(db);
    mem.delete(vlog).unwrap(); // the log the pointer targets vanishes

    let db = Db::open(Arc::clone(&mem), cfg).unwrap();
    match db.get(b"big") {
        Err(StorageError::Corruption(msg)) => {
            assert!(msg.contains("dangles"), "unexpected message: {msg}")
        }
        other => panic!("dangling pointer should be Corruption, got {other:?}"),
    }
    // Inline values are unaffected by the missing log.
    assert_eq!(db.get(b"small").unwrap(), Some(b"inline".to_vec()));
}

// ---------------------------------------------------------------------
// Manifest recovery
// ---------------------------------------------------------------------

fn bogus_manifest() -> ManifestState {
    ManifestState {
        // References a table file that was never written.
        levels: vec![vec![vec![999_999]]],
        wal: 0,
        wal_prev: 0,
        vlog: 0,
        next_seqno: 9,
        applied_seq: 0,
    }
}

/// A newer manifest that references missing files — the footprint of a
/// crash mid-rewrite — is rejected, counted as corruption, and recovery
/// falls back to the older intact manifest with all data readable.
#[test]
fn stale_newer_manifest_falls_back_to_older_snapshot() {
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    let cfg = small_cfg();
    let db = Db::open(Arc::clone(&mem), cfg.clone()).unwrap();
    for i in 0..30usize {
        db.put(format!("key{i:03}").into_bytes(), vec![b'd'; 20 + i]).unwrap();
    }
    db.sync().unwrap();
    db.flush().unwrap();
    drop(db);

    // Simulate a half-finished manifest rewrite: a newer manifest exists
    // but references a table that never made it to the device. `previous:
    // None` leaves the good manifest in place, as a real crash would.
    write_manifest(&mem, &bogus_manifest(), None).unwrap();

    let before = mem.stats().snapshot().corruption_detected;
    let db = Db::open(Arc::clone(&mem), cfg).unwrap();
    for i in 0..30usize {
        assert_eq!(
            db.get(format!("key{i:03}").as_bytes()).unwrap(),
            Some(vec![b'd'; 20 + i]),
            "key{i:03} lost after manifest fallback"
        );
    }
    assert!(
        mem.stats().snapshot().corruption_detected > before,
        "rejecting a bad manifest candidate must be counted"
    );
}

/// When every manifest candidate is unusable, open fails with a typed
/// corruption error. Silently starting an empty database would turn a
/// recoverable corruption into permanent data loss.
#[test]
fn all_manifests_bad_is_a_typed_error_not_an_empty_db() {
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    write_manifest(&mem, &bogus_manifest(), None).unwrap();
    match Db::open(Arc::clone(&mem), small_cfg()) {
        Err(StorageError::Corruption(msg)) => {
            assert!(msg.contains("no usable manifest"), "unexpected message: {msg}")
        }
        Ok(_) => panic!("open silently ignored an unusable manifest"),
        Err(e) => panic!("wrong error kind: {e}"),
    }
}

// ---------------------------------------------------------------------
// Transient errors
// ---------------------------------------------------------------------

/// Transient device errors (EINTR-style) are absorbed by the retry layer:
/// the workload sees only `Ok`, and the retries show up in `IoStats`.
#[test]
fn transient_errors_are_retried_transparently() {
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    let fault = Arc::new(FaultDevice::new(mem, 11));
    // Spaced further apart than the retry budget (3), so no op ever sees
    // two transients in a row more than it can absorb.
    let scheduled = [2u64, 6, 10, 15, 21, 40, 77];
    for at in scheduled {
        fault.schedule(at, FaultKind::Transient);
    }
    let retry: Arc<dyn StorageDevice> = Arc::new(RetryDevice::new(
        Arc::clone(&fault) as Arc<dyn StorageDevice>,
        RetryPolicy::default(),
    ));

    let db = Db::open(retry, small_cfg()).unwrap();
    for i in 0..60usize {
        db.put(format!("key{i:03}").into_bytes(), vec![b't'; 30 + i]).unwrap();
        db.sync().unwrap();
    }
    db.flush().unwrap();
    for i in 0..60usize {
        assert_eq!(
            db.get(format!("key{i:03}").as_bytes()).unwrap(),
            Some(vec![b't'; 30 + i])
        );
    }
    assert!(
        fault.pending_faults().is_empty(),
        "workload too small: not every scheduled transient fired"
    );
    let stats = db.io_stats();
    assert!(
        stats.retries >= scheduled.len() as u64,
        "expected at least {} retries, saw {}",
        scheduled.len(),
        stats.retries
    );
}

// ---------------------------------------------------------------------
// Property test: random workloads, random crash points
// ---------------------------------------------------------------------

/// splitmix64 — local PRNG for workload generation, independent of the
/// proptest case stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random mixed workload: ~30 keys, random put/delete mix and value
/// sizes, synced per op. Same seed ⇒ same ops.
fn random_workload(db: &Db, shadow: &mut Shadow, seed: u64, ops: usize) {
    let mut rng = seed;
    for _ in 0..ops {
        let key = format!("key{:03}", splitmix(&mut rng) % 31).into_bytes();
        if splitmix(&mut rng) % 5 == 0 {
            apply_op(db, shadow, key, None);
        } else {
            let len = 8 + (splitmix(&mut rng) % 120) as usize;
            let fill = b'a' + (splitmix(&mut rng) % 26) as u8;
            apply_op(db, shadow, key, Some(vec![fill; len]));
        }
    }
}

fn random_crash_case(seed: u64, crash_at: u64, kv: bool) {
    let cfg = if kv { kv_cfg() } else { small_cfg() };
    let fault = fault_device(seed);
    fault.schedule(crash_at, FaultKind::Crash);

    let mut shadow = Shadow::default();
    match Db::open(erased(&fault), cfg.clone()) {
        Ok(db) => {
            random_workload(&db, &mut shadow, seed, 100);
            drop(db);
        }
        Err(_) => {}
    }
    // `crash_at` may exceed the run's I/O count — then the case degrades
    // to a fault-free roundtrip, which must also verify.
    fault.heal();
    let db = Db::open(erased(&fault), cfg)
        .unwrap_or_else(|e| panic!("reopen (seed {seed}, crash {crash_at}) failed: {e}"));
    verify(&db, &shadow, &format!("random seed {seed} crash {crash_at}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_workload_with_random_crash_point_recovers(
        seed in 0u64..1_000_000,
        crash_at in 0u64..900,
    ) {
        random_crash_case(seed, crash_at, false);
    }

    #[test]
    fn random_kv_separated_workload_with_crash_recovers(
        seed in 0u64..1_000_000,
        crash_at in 0u64..900,
    ) {
        random_crash_case(seed, crash_at, true);
    }
}
