//! Crash recovery while background maintenance is in flight (`Threaded`
//! mode).
//!
//! The inline sweep in `crash_recovery.rs` faults every I/O ordinal of a
//! deterministic run. This sweep repeats the exercise with flush and
//! compaction running on worker threads, so the crash lands at arbitrary
//! points *inside* concurrent maintenance: between a table write and its
//! manifest install, mid-merge, between the WAL rotation and the flush
//! that retires it. The contract is unchanged:
//!
//! * no acknowledged write (op `Ok` **and** the following `sync` `Ok`) is
//!   ever lost, and
//! * no acknowledged delete is resurrected — the reopened database reads
//!   exactly one of each key's legal states, and scans agree with gets.
//!
//! Unlike the inline sweep, the I/O schedule is not reproducible: worker
//! timing moves ordinals between runs, so a scheduled fault may never
//! fire. Those cases degrade to clean roundtrips (still verified); the
//! sweep asserts that most cases do fire.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use lsm_core::manifest::find_manifest;
use lsm_core::sstable::meta::decode_footer;
use lsm_core::{BackgroundMode, Db, LsmConfig};
use lsm_storage::{DeviceProfile, FaultDevice, FaultKind, IoCategory, MemDevice, StorageDevice};

const SWEEP_SEED: u64 = 0xBAD5_EED5;
const SCRIPT_OPS: usize = 260;

/// Small-geometry config with threaded maintenance: 512-byte blocks and a
/// 2 KiB buffer keep flush/compaction jobs almost always in flight.
fn threaded_cfg() -> LsmConfig {
    LsmConfig {
        buffer_bytes: 2 << 10,
        background: BackgroundMode::Threaded,
        background_workers: 2,
        ..LsmConfig::small_for_tests()
    }
}

/// Recovery runs `Inline`: the sweep is about surviving a crash *during*
/// concurrent maintenance, and a deterministic reopen keeps any failure
/// reproducible from the printed ordinal.
fn inline_cfg() -> LsmConfig {
    LsmConfig {
        background: BackgroundMode::Inline,
        ..threaded_cfg()
    }
}

fn fault_device(seed: u64) -> Arc<FaultDevice> {
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    Arc::new(FaultDevice::new(mem, seed))
}

fn erased(dev: &Arc<FaultDevice>) -> Arc<dyn StorageDevice> {
    Arc::clone(dev) as Arc<dyn StorageDevice>
}

/// Legal post-crash states per key: the last acknowledged state, plus any
/// attempted-but-unacknowledged writes (see `crash_recovery.rs`).
#[derive(Default)]
struct Shadow {
    acked: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    maybe: BTreeMap<Vec<u8>, BTreeSet<Option<Vec<u8>>>>,
}

impl Shadow {
    fn attempt(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        self.maybe.entry(key.to_vec()).or_default().insert(value);
    }

    fn ack(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        self.acked.insert(key.to_vec(), value);
        self.maybe.remove(key);
    }

    fn allowed(&self, key: &[u8]) -> BTreeSet<Option<Vec<u8>>> {
        let mut states = BTreeSet::new();
        states.insert(self.acked.get(key).cloned().unwrap_or(None));
        if let Some(m) = self.maybe.get(key) {
            states.extend(m.iter().cloned());
        }
        states
    }

    fn keys(&self) -> BTreeSet<Vec<u8>> {
        self.acked.keys().chain(self.maybe.keys()).cloned().collect()
    }
}

fn apply_op(db: &Db, shadow: &mut Shadow, key: Vec<u8>, value: Option<Vec<u8>>) {
    shadow.attempt(&key, value.clone());
    let op_ok = match &value {
        Some(v) => db.put(key.clone(), v.clone()).is_ok(),
        None => db.delete(key.clone()).is_ok(),
    };
    if op_ok && db.sync().is_ok() {
        shadow.ack(&key, value);
    }
}

/// Same deterministic op script as the inline sweep: 23 hot keys, varying
/// value sizes, a delete every 7th op, each op individually synced.
fn scripted_workload(db: &Db, shadow: &mut Shadow) {
    for i in 0..SCRIPT_OPS {
        let key = format!("key{:03}", (i * 17) % 23).into_bytes();
        if i % 7 == 3 {
            apply_op(db, shadow, key, None);
        } else {
            let len = 16 + (i * 13) % 90;
            let value = vec![b'a' + (i % 26) as u8; len];
            apply_op(db, shadow, key, Some(value));
        }
    }
}

fn verify(db: &Db, shadow: &Shadow, context: &str) {
    let mut expected_scan: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for key in shadow.keys() {
        let got = db.get(&key).unwrap_or_else(|e| {
            panic!("{context}: get {:?} failed: {e}", String::from_utf8_lossy(&key))
        });
        let allowed = shadow.allowed(&key);
        assert!(
            allowed.contains(&got),
            "{context}: key {:?} read {:?}, but only {} states are legal",
            String::from_utf8_lossy(&key),
            got.as_ref().map(|v| v.len()),
            allowed.len(),
        );
        if let Some(v) = got {
            expected_scan.push((key, v));
        }
    }
    let scanned = db
        .scan(b"key".to_vec()..b"kez".to_vec(), usize::MAX)
        .unwrap_or_else(|e| panic!("{context}: scan failed: {e}"));
    assert_eq!(scanned, expected_scan, "{context}: scan disagrees with point gets");
}

/// Fault-free threaded run; its I/O count bounds the sweep range.
fn clean_run_total() -> u64 {
    let fault = fault_device(SWEEP_SEED);
    let db = Db::open(erased(&fault), threaded_cfg()).expect("clean open");
    let mut shadow = Shadow::default();
    scripted_workload(&db, &mut shadow);
    db.wait_background_idle();
    drop(db);
    assert!(shadow.maybe.is_empty(), "fault-free run left unacked ops");
    fault.ops_performed()
}

/// One case: crash at ordinal `at`, let in-flight workers observe the
/// dead device, drop the handle while dead (process death), heal, reopen,
/// verify. Returns whether the fault actually fired.
fn crash_case(at: u64) -> bool {
    let fault = fault_device(SWEEP_SEED ^ at);
    fault.schedule(at, FaultKind::Crash);

    let mut shadow = Shadow::default();
    match Db::open(erased(&fault), threaded_cfg()) {
        Ok(db) => {
            scripted_workload(&db, &mut shadow);
            // bounded: the idle wait bails out once a job has failed
            db.wait_background_idle();
            drop(db);
        }
        Err(_) => {}
    }
    let fired = fault.pending_faults().is_empty();

    fault.heal();
    let db = Db::open(erased(&fault), inline_cfg())
        .unwrap_or_else(|e| panic!("reopen after crash at ordinal {at} failed: {e}"));
    verify(&db, &shadow, &format!("crash at ordinal {at} (threaded)"));
    fired
}

/// `threaded_cfg` with sub-compactions enabled, so merges fan out across
/// the worker pool and a crash can land between any two shard writes.
fn parallel_cfg() -> LsmConfig {
    LsmConfig {
        max_subcompactions: 4,
        ..threaded_cfg()
    }
}

/// Deterministic reopen, still sharding (Inline runs shards serially).
fn parallel_inline_cfg() -> LsmConfig {
    LsmConfig {
        background: BackgroundMode::Inline,
        ..parallel_cfg()
    }
}

/// After recovery every file that carries a valid table footer must be
/// referenced by the manifest — a half-installed parallel compaction's
/// shard outputs must have been deleted by the orphan sweep on open.
fn assert_no_orphan_tables(dev: &Arc<dyn StorageDevice>, context: &str) {
    let (manifest_id, state) = find_manifest(dev)
        .unwrap_or_else(|e| panic!("{context}: manifest scan failed: {e}"))
        .unwrap_or_else(|| panic!("{context}: no manifest after recovery"));
    let mut referenced: BTreeSet<u64> = state
        .levels
        .iter()
        .flatten()
        .flatten()
        .copied()
        .collect();
    referenced.insert(manifest_id.0);
    for f in dev.live_files() {
        if referenced.contains(&f.0) {
            continue;
        }
        let n = dev.len_blocks(f).unwrap();
        if n == 0 {
            continue;
        }
        let last = dev.read(f, n - 1, 1, IoCategory::Misc).unwrap();
        if let Some((meta_start, meta_len)) = decode_footer(&last) {
            // same sanity bounds the orphan sweep applies: a real table's
            // footer points inside the file
            assert!(
                meta_start >= n || meta_len == 0,
                "{context}: file {} has a valid table footer but is not in the manifest — \
                 orphaned sub-compaction output survived recovery",
                f.0
            );
        }
    }
}

fn parallel_clean_run_total() -> u64 {
    let fault = fault_device(SWEEP_SEED);
    let db = Db::open(erased(&fault), parallel_cfg()).expect("clean open");
    let mut shadow = Shadow::default();
    scripted_workload(&db, &mut shadow);
    db.wait_background_idle();
    drop(db);
    assert!(shadow.maybe.is_empty(), "fault-free run left unacked ops");
    fault.ops_performed()
}

fn parallel_crash_case(at: u64) -> bool {
    let fault = fault_device(SWEEP_SEED ^ at);
    fault.schedule(at, FaultKind::Crash);

    let mut shadow = Shadow::default();
    if let Ok(db) = Db::open(erased(&fault), parallel_cfg()) {
        scripted_workload(&db, &mut shadow);
        db.wait_background_idle();
        drop(db);
    }
    let fired = fault.pending_faults().is_empty();

    fault.heal();
    let dev = erased(&fault);
    let db = Db::open(Arc::clone(&dev), parallel_inline_cfg())
        .unwrap_or_else(|e| panic!("reopen after crash at ordinal {at} failed: {e}"));
    verify(&db, &shadow, &format!("crash at ordinal {at} (parallel)"));
    drop(db);
    assert_no_orphan_tables(&dev, &format!("crash at ordinal {at} (parallel)"));
    fired
}

/// The parallel-compaction crash sweep: every I/O ordinal of a threaded
/// run with `max_subcompactions = 4`. Recovery must never observe a
/// half-installed compaction (install is atomic: one manifest write), and
/// shard outputs orphaned by the crash must be gone after reopen.
#[test]
fn crash_at_every_io_point_during_parallel_compaction() {
    let total = parallel_clean_run_total();
    assert!(total > 100, "workload too small to exercise recovery ({total} I/Os)");
    let mut fired = 0u64;
    for at in 0..total {
        if parallel_crash_case(at) {
            fired += 1;
        }
    }
    eprintln!("parallel sweep: {fired}/{total} crash points fired");
    assert!(
        fired * 2 >= total,
        "only {fired}/{total} crash points fired; sweep is mostly vacuous"
    );
}

#[test]
fn crash_at_every_io_point_during_background_maintenance() {
    let total = clean_run_total();
    assert!(total > 100, "workload too small to exercise recovery ({total} I/Os)");
    let mut fired = 0u64;
    for at in 0..total {
        if crash_case(at) {
            fired += 1;
        }
    }
    eprintln!("sweep: {fired}/{total} crash points fired");
    // worker timing shifts ordinals between runs, so some scheduled
    // faults never fire — but a sweep where most miss proves nothing
    assert!(
        fired * 2 >= total,
        "only {fired}/{total} crash points fired; sweep is mostly vacuous"
    );
}
