//! Retune crash sweep: kill the engine at every I/O ordinal of a run in
//! which the self-tuner actuates a mid-flight reconfiguration (bloom
//! bits reallocation plus a merge-policy switch), then recover and prove
//! the durability contract survived the retune.
//!
//! The scripted run is a miniature phase change: a write-heavy burst
//! (steers the tuner toward a tiered layout and a re-budgeted filter
//! allocation), more writes so new tables are built *under the retuned
//! config* and compaction runs under the new layout, then a read-heavy
//! phase that triggers a second, read-optimized decision. Every write is
//! individually synced, so the acked/unacked boundary is exact.
//!
//! The dynamic overlay is deliberately volatile — a crash reboots the
//! engine on its boot config — so the sweep also proves the footer
//! contract: tables built with retuned filter parameters stay readable
//! by an engine whose *config* says otherwise, because readers trust the
//! per-table footer, never the config.
//!
//! The maintenance mode follows `LSM_BACKGROUND` (the sweep runs in both
//! modes under `scripts/verify.sh`) and `LSM_SEED` reseeds the fault
//! device. A separate Inline-pinned test proves the decision sequence is
//! deterministic: two identical runs emit byte-identical
//! `retune`/`retune_observed` event JSON.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use lsm_core::{BackgroundMode, Db, EventKind, LsmConfig};
use lsm_storage::{DeviceProfile, FaultDevice, FaultKind, MemDevice, StorageDevice};
use lsm_tuner::{Tuner, TunerConfig};

fn sweep_seed() -> u64 {
    std::env::var("LSM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x2E7_0CE5)
}

/// Engine config; the maintenance mode comes from `LSM_BACKGROUND` via
/// `small_for_tests`. The 1 KiB buffer forces flushes every ~15 writes,
/// so the retuned filter parameters and layout actually govern table
/// builds and compactions inside the scripted window.
fn node_cfg() -> LsmConfig {
    LsmConfig {
        wal: true,
        buffer_bytes: 1 << 10,
        ..LsmConfig::small_for_tests()
    }
}

/// A responsive tuner: tight memory budget (keeps modeled bits/key in a
/// realistic range), short cooldown, and a low traffic floor so the
/// small scripted phases register.
fn tuner_for(db: &Db) -> Tuner {
    let cfg = TunerConfig {
        min_gain_milli: 20,
        cooldown_ticks: 1,
        min_ops_per_tick: 50,
        seed: 0,
        ..TunerConfig::for_db(db, 80, 20 << 10)
    };
    Tuner::new(db.clone(), cfg)
}

fn fault_device(seed: u64) -> Arc<FaultDevice> {
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    Arc::new(FaultDevice::new(mem, seed))
}

fn erased(dev: &Arc<FaultDevice>) -> Arc<dyn StorageDevice> {
    Arc::clone(dev) as Arc<dyn StorageDevice>
}

// ---------------------------------------------------------------------
// Shadow model (crash_recovery.rs semantics: acked writes must survive,
// unacked writes are ambiguous, scan must agree with gets)
// ---------------------------------------------------------------------

#[derive(Default)]
struct Shadow {
    acked: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    maybe: BTreeMap<Vec<u8>, BTreeSet<Option<Vec<u8>>>>,
}

impl Shadow {
    fn attempt(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        self.maybe.entry(key.to_vec()).or_default().insert(value);
    }

    fn ack(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        self.acked.insert(key.to_vec(), value);
        self.maybe.remove(key);
    }

    fn allowed(&self, key: &[u8]) -> BTreeSet<Option<Vec<u8>>> {
        let mut states = BTreeSet::new();
        states.insert(self.acked.get(key).cloned().unwrap_or(None));
        if let Some(m) = self.maybe.get(key) {
            states.extend(m.iter().cloned());
        }
        states
    }

    fn keys(&self) -> BTreeSet<Vec<u8>> {
        self.acked.keys().chain(self.maybe.keys()).cloned().collect()
    }
}

fn apply_op(db: &Db, shadow: &mut Shadow, key: Vec<u8>, value: Option<Vec<u8>>) {
    shadow.attempt(&key, value.clone());
    let op_ok = match &value {
        Some(v) => db.put(key.clone(), v.clone()).is_ok(),
        None => db.delete(key.clone()).is_ok(),
    };
    if op_ok && db.sync().is_ok() {
        shadow.ack(&key, value);
    }
}

// ---------------------------------------------------------------------
// The scripted phase change
// ---------------------------------------------------------------------

fn hot_key(i: usize) -> Vec<u8> {
    format!("key{:03}", (i * 17) % 23).into_bytes()
}

fn write_phase(db: &Db, shadow: &mut Shadow, start: usize, ops: usize) {
    for i in start..start + ops {
        let key = hot_key(i);
        if i % 9 == 4 {
            apply_op(db, shadow, key, None);
        } else {
            let len = 16 + (i * 13) % 74;
            apply_op(db, shadow, key, Some(vec![b'a' + (i % 26) as u8; len]));
        }
    }
}

/// Point reads over the hot set plus guaranteed-absent siblings (the
/// empty-read fraction is what makes filter memory pay off in the
/// model). Errors are tolerated: on a dead device the phase just reads
/// nothing.
fn read_phase(db: &Db, ops: usize) {
    for i in 0..ops {
        let _ = db.get(&hot_key(i));
        let mut absent = hot_key(i);
        absent.push(b'!');
        let _ = db.get(&absent);
    }
}

/// Write-heavy → (retune) → writes under the new config → read-heavy →
/// (second retune) → tail writes. Ticks sit at the phase boundaries.
/// Returns the tuner so callers can inspect the decision trail.
fn scripted_run(db: &Db, shadow: &mut Shadow) -> Tuner {
    let mut tuner = tuner_for(db);
    write_phase(db, shadow, 0, 90);
    tuner.tick(); // write-heavy decision: layout + bloom budget
    write_phase(db, shadow, 90, 60);
    tuner.tick(); // cooldown burn / audit window
    read_phase(db, 80);
    tuner.tick(); // read-heavy decision
    write_phase(db, shadow, 150, 30);
    tuner.tick(); // audit of the second decision
    tuner
}

// ---------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------

fn verify(db: &Db, shadow: &Shadow, context: &str) {
    let mut expected_scan: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for key in shadow.keys() {
        let got = db.get(&key).unwrap_or_else(|e| {
            panic!("{context}: get {:?} failed: {e}", String::from_utf8_lossy(&key))
        });
        let allowed = shadow.allowed(&key);
        assert!(
            allowed.contains(&got),
            "{context}: key {:?} read {:?}, but only {} states are legal",
            String::from_utf8_lossy(&key),
            got.as_ref().map(|v| v.len()),
            allowed.len(),
        );
        if let Some(v) = got {
            expected_scan.push((key, v));
        }
    }
    let scanned = db
        .scan(b"key".to_vec()..b"kez".to_vec(), usize::MAX)
        .unwrap_or_else(|e| panic!("{context}: scan failed: {e}"));
    assert_eq!(scanned, expected_scan, "{context}: scan disagrees with point gets");
}

/// Fault-free run; sanity-checks that the script actually provokes a
/// retune carrying both a policy switch and a bloom reallocation, then
/// returns the I/O ordinal count that bounds the sweep.
fn clean_run_total(seed: u64) -> u64 {
    let fault = fault_device(seed);
    let db = Db::open(erased(&fault), node_cfg()).expect("clean open");
    let mut shadow = Shadow::default();
    let tuner = scripted_run(&db, &mut shadow);
    assert!(shadow.maybe.is_empty(), "fault-free run left unacked ops");
    assert!(
        tuner.decisions() >= 1,
        "script never provoked a retune; the sweep would not cross one"
    );
    let knobs: BTreeSet<&str> = db
        .drain_events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Retune { knob, .. } => Some(knob),
            _ => None,
        })
        .collect();
    assert!(
        knobs.contains("layout") && knobs.contains("bloom_bits"),
        "retune must carry a policy switch and a bloom reallocation, got {knobs:?}"
    );
    db.wait_background_idle();
    verify(&db, &shadow, "fault-free");
    drop(db);
    fault.ops_performed()
}

/// One case: crash at ordinal `at` somewhere across the retune, drop the
/// handle while dead (process death), heal, reopen on the *boot* config
/// (the dynamic overlay is volatile by design), verify. Returns whether
/// the fault fired.
fn crash_case(seed: u64, at: u64) -> bool {
    let fault = fault_device(seed ^ at);
    fault.schedule(at, FaultKind::Crash);
    let mut shadow = Shadow::default();
    if let Ok(db) = Db::open(erased(&fault), node_cfg()) {
        let _tuner = scripted_run(&db, &mut shadow);
        db.wait_background_idle();
        drop(db);
    }
    let fired = fault.pending_faults().is_empty();
    fault.heal();
    let db = Db::open(erased(&fault), node_cfg())
        .unwrap_or_else(|e| panic!("reopen after crash at ordinal {at} failed: {e}"));
    assert_eq!(
        db.dynamic_overrides().generation,
        0,
        "dynamic overrides must not survive a crash (ordinal {at})"
    );
    // Tables built under retuned filter params must stay readable on the
    // boot config: verify reads everything through the footer contract.
    verify(&db, &shadow, &format!("crash at ordinal {at}"));
    // The recovered engine accepts a fresh tuner and keeps writing.
    let mut tuner = tuner_for(&db);
    db.put(b"post-crash".to_vec(), b"alive".to_vec()).expect("put after recovery");
    db.sync().expect("sync after recovery");
    tuner.tick();
    assert_eq!(db.get(b"post-crash").unwrap(), Some(b"alive".to_vec()));
    fired
}

// ---------------------------------------------------------------------
// Sweeps
// ---------------------------------------------------------------------

#[test]
fn crash_at_every_io_point_across_a_retune() {
    let seed = sweep_seed();
    let mode = BackgroundMode::from_env();
    eprintln!("retune crash sweep: LSM_SEED={seed} mode={}", mode.label());
    let total = clean_run_total(seed);
    assert!(total > 100, "workload too small to exercise recovery ({total} I/Os)");
    let mut fired = 0u64;
    for at in 0..total {
        if crash_case(seed, at) {
            fired += 1;
        }
    }
    eprintln!("retune sweep: {fired}/{total} crash points fired (LSM_SEED={seed})");
    // Threaded worker timing can shift ordinals so a scheduled fault
    // never fires; those cases degrade to clean roundtrips (still
    // verified), but a mostly-vacuous sweep proves nothing.
    assert!(
        fired * 2 >= total,
        "only {fired}/{total} crash points fired; sweep is mostly vacuous (LSM_SEED={seed})"
    );
}

/// Two identical Inline runs must produce byte-identical retune event
/// sequences — the tuner consults no wall clock and no thread timing, so
/// its entire decision trail is a function of (workload, seed).
#[test]
fn inline_retune_decisions_are_byte_identical_across_runs() {
    let run = || {
        let cfg = LsmConfig {
            background: BackgroundMode::Inline,
            ..node_cfg()
        };
        let dev: Arc<dyn StorageDevice> =
            Arc::new(MemDevice::new(512, DeviceProfile::free()));
        let db = Db::open(dev, cfg).unwrap();
        let mut shadow = Shadow::default();
        let tuner = scripted_run(&db, &mut shadow);
        let events: Vec<String> = db
            .drain_events()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Retune { .. } | EventKind::RetuneObserved { .. }
                )
            })
            .map(|e| e.to_json_line())
            .collect();
        (tuner.decisions(), events)
    };
    let (decisions_a, events_a) = run();
    let (decisions_b, events_b) = run();
    assert!(decisions_a >= 1, "script must retune at least once");
    assert_eq!(decisions_a, decisions_b, "decision counts diverged");
    assert_eq!(events_a, events_b, "retune event streams diverged");
    // The scripted phase change exercises both actuation families and
    // at least one observed-gain audit lands.
    assert!(
        events_a.iter().any(|j| j.contains("\"knob\":\"layout\"")),
        "no policy switch in {events_a:?}"
    );
    assert!(
        events_a.iter().any(|j| j.contains("\"knob\":\"bloom_bits\"")),
        "no bloom reallocation in {events_a:?}"
    );
    assert!(
        events_a.iter().any(|j| j.contains("retune_observed")),
        "no observed-gain audit in {events_a:?}"
    );
}
