//! Live-split crash sweep: kill the cluster at every I/O ordinal of the
//! donor, the recipient, and the cluster-metadata device during an
//! online shard split, then recover and prove the migration contract.
//!
//! Topology per case: a one-shard elastic server whose shard sits on a
//! [`FaultDevice`], with the shard-map manifest on its own fault device
//! and the split recipient minted by the device factory onto a third.
//! The scripted client runs half its workload, the test triggers a live
//! split in the middle of the hot range, and the rest of the workload
//! lands while (or after) the migration runs. A crash is scheduled at
//! each I/O ordinal of one device per case — including every ordinal of
//! the metadata device, which sweeps the map-flip commit point itself.
//!
//! After the kill, the sweep heals the devices and recovers exactly the
//! way a restarted deployment would: read the newest parseable shard map
//! from the metadata device, open the shards it names, and serve through
//! a range-routed [`ShardSet`]. It then verifies:
//!
//! * every acked write survives, whichever side of the flip recovery
//!   landed on — an ack before the flip implies donor durability *and*
//!   tap/snapshot transfer before the recipient synced; an ack after it
//!   implies recipient durability;
//! * no half-visible range: each key reads one legal state (last acked,
//!   or an attempted-unacked value that raced ahead), the recovered map
//!   is a gap-free partition, and a full scan agrees with point gets —
//!   stale donor copies of moved ranges must stay invisible;
//! * the recovered shards accept new writes.
//!
//! The maintenance mode follows `LSM_BACKGROUND` (the sweep runs in both
//! modes under `scripts/verify.sh`), and `LSM_SEED` reseeds the fault
//! devices and the workload; both are printed so failures reproduce.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use lsm_core::{Db, LsmConfig};
use lsm_server::harness::ShardDeviceRegistry;
use lsm_server::protocol::{Request, Response};
use lsm_server::{
    find_cluster_meta, Client, ElasticOptions, Server, ServerConfig, ShardMap, ShardSet,
};
use lsm_storage::{DeviceProfile, FaultDevice, FaultKind, MemDevice, StorageDevice};

const SCRIPT_OPS: usize = 44;
const SPLIT_BOUNDARY: &[u8] = b"key011";

fn sweep_seed() -> u64 {
    std::env::var("LSM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5B11_7E57)
}

/// Engine config; the maintenance mode comes from `LSM_BACKGROUND` via
/// `small_for_tests`, so one binary sweeps both modes.
fn node_cfg() -> LsmConfig {
    // 1 KiB buffer: the ~23-key hot set overflows the memtable, so the
    // sweep crosses flush and manifest I/O as well as the WAL path
    LsmConfig {
        wal: true,
        buffer_bytes: 1 << 10,
        ..LsmConfig::small_for_tests()
    }
}

fn fault_device(seed: u64) -> Arc<FaultDevice> {
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    Arc::new(FaultDevice::new(mem, seed))
}

fn erased(dev: &Arc<FaultDevice>) -> Arc<dyn StorageDevice> {
    Arc::clone(dev) as Arc<dyn StorageDevice>
}

/// Which device a case crashes, and at which I/O ordinal.
#[derive(Clone, Copy, Debug)]
enum CrashSite {
    None,
    Donor(u64),
    Recipient(u64),
    Meta(u64),
}

/// The per-case device set: donor + meta up front, the recipient minted
/// lazily by the factory when the split runs.
struct Fixture {
    donor: Arc<FaultDevice>,
    meta: Arc<FaultDevice>,
    recipient: Arc<Mutex<Option<Arc<FaultDevice>>>>,
    registry: ShardDeviceRegistry,
}

impl Fixture {
    fn new(seed: u64, site: CrashSite) -> Fixture {
        let donor = fault_device(seed);
        let meta = fault_device(seed.rotate_left(17));
        if let CrashSite::Donor(at) = site {
            donor.schedule(at, FaultKind::Crash);
        }
        if let CrashSite::Meta(at) = site {
            meta.schedule(at, FaultKind::Crash);
        }
        let registry: ShardDeviceRegistry = Arc::new(Mutex::new(Default::default()));
        registry.lock().unwrap().insert(0, erased(&donor));
        Fixture {
            donor,
            meta,
            recipient: Arc::new(Mutex::new(None)),
            registry,
        }
    }

    /// The elastic device factory: mints the recipient's fault device,
    /// arming it when this case crashes the recipient.
    fn factory(&self, seed: u64, site: CrashSite) -> lsm_server::ShardDeviceFactory {
        let slot = Arc::clone(&self.recipient);
        let registry = Arc::clone(&self.registry);
        Box::new(move |shard_id| {
            let dev = fault_device(seed.rotate_right(9) ^ shard_id);
            if let CrashSite::Recipient(at) = site {
                dev.schedule(at, FaultKind::Crash);
            }
            *slot.lock().unwrap() = Some(Arc::clone(&dev));
            registry.lock().unwrap().insert(shard_id, erased(&dev));
            erased(&dev)
        })
    }

    fn heal_all(&self) {
        self.donor.heal();
        self.meta.heal();
        if let Some(r) = self.recipient.lock().unwrap().as_ref() {
            r.heal();
        }
    }

    /// True when the scheduled fault actually fired on the crash site.
    fn fired(&self, site: CrashSite) -> bool {
        match site {
            CrashSite::None => true,
            CrashSite::Donor(_) => self.donor.pending_faults().is_empty(),
            CrashSite::Meta(_) => self.meta.pending_faults().is_empty(),
            CrashSite::Recipient(_) => self
                .recipient
                .lock()
                .unwrap()
                .as_ref()
                .is_some_and(|r| r.pending_faults().is_empty()),
        }
    }
}

/// Legal post-recovery states per key: the last acked state must be
/// readable; attempted-unacked writes may or may not have landed.
#[derive(Default)]
struct Shadow {
    acked: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    maybe: BTreeMap<Vec<u8>, BTreeSet<Option<Vec<u8>>>>,
}

impl Shadow {
    fn attempt(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        self.maybe.entry(key.to_vec()).or_default().insert(value);
    }

    fn ack(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        self.acked.insert(key.to_vec(), value);
        self.maybe.remove(key);
    }

    fn allowed(&self, key: &[u8]) -> BTreeSet<Option<Vec<u8>>> {
        let mut states = BTreeSet::new();
        states.insert(self.acked.get(key).cloned().unwrap_or(None));
        if let Some(m) = self.maybe.get(key) {
            states.extend(m.iter().cloned());
        }
        states
    }

    fn keys(&self) -> BTreeSet<Vec<u8>> {
        self.acked.keys().chain(self.maybe.keys()).cloned().collect()
    }
}

/// One sequential client op. `Ok` is the durability ack; a typed error,
/// `Busy`, `ShuttingDown`, or a dead connection leaves it attempted.
fn apply_op(c: &mut Client, shadow: &mut Shadow, key: Vec<u8>, value: Option<Vec<u8>>) {
    shadow.attempt(&key, value.clone());
    let req = match &value {
        Some(v) => Request::Put {
            key: key.clone(),
            value: v.clone(),
        },
        None => Request::Delete { key: key.clone() },
    };
    if matches!(c.call(&req), Ok(Response::Ok)) {
        shadow.ack(&key, value);
    }
}

/// Deterministic script over a 23-key hot set straddling the split
/// boundary: varying value sizes, a delete every 7th op.
fn scripted_ops(c: &mut Client, shadow: &mut Shadow, seed: u64, ops: std::ops::Range<usize>) {
    for i in ops {
        let slot = (i.wrapping_mul(17).wrapping_add(seed as usize)) % 23;
        let key = format!("key{slot:03}").into_bytes();
        if i % 7 == 3 {
            apply_op(c, shadow, key, None);
        } else {
            let len = 16 + (i * 13 + (seed % 11) as usize) % 90;
            let value = vec![b'a' + (i % 26) as u8; len];
            apply_op(c, shadow, key, Some(value));
        }
    }
}

/// One case: start a one-shard elastic server on the fixture, run half
/// the workload, trigger a live split at `SPLIT_BOUNDARY`, run the rest,
/// kill everything, recover from the durable state, verify. Returns
/// whether the scheduled fault fired.
fn crash_case(seed: u64, site: CrashSite) -> bool {
    let fx = Fixture::new(seed, site);
    let mut shadow = Shadow::default();

    // start: donor open or the initial meta write may already crash
    let started = Db::open(erased(&fx.donor), node_cfg()).ok().and_then(|db| {
        Server::start_elastic(
            vec![db],
            ShardMap::uniform(1),
            ElasticOptions {
                meta_dev: erased(&fx.meta),
                factory: fx.factory(seed, site),
                policy: None,
            },
            ServerConfig::default(),
        )
        .ok()
    });
    if let Some(server) = started {
        let mut c = Client::connect(server.addr()).expect("connect elastic server");
        scripted_ops(&mut c, &mut shadow, seed, 0..SCRIPT_OPS / 2);
        // the live split; a crash anywhere inside is this sweep's point
        let _ = server.split_shard(0, Some(SPLIT_BOUNDARY.to_vec()));
        scripted_ops(&mut c, &mut shadow, seed, SCRIPT_OPS / 2..SCRIPT_OPS);
        drop(c);
        drop(server.abort());
    }
    let fired = fx.fired(site);
    verify_recovery(&fx, &shadow, &format!("{site:?}"));
    fired
}

/// Heals the devices and recovers the way a restarted deployment would,
/// then checks the whole migration contract against the shadow.
fn verify_recovery(fx: &Fixture, shadow: &Shadow, context: &str) {
    fx.heal_all();
    let meta = erased(&fx.meta);
    let Some((_fid, map)) = find_cluster_meta(&meta)
        .unwrap_or_else(|e| panic!("{context}: meta device unreadable after heal: {e}"))
    else {
        // the crash beat the very first meta write: the server never
        // started, so nothing can have been acked
        assert!(
            shadow.acked.is_empty(),
            "{context}: {} acked writes but no durable shard map",
            shadow.acked.len()
        );
        return;
    };
    map.check_partition()
        .unwrap_or_else(|e| panic!("{context}: recovered map is not a partition: {e}"));
    let registry = fx.registry.lock().unwrap();
    let dbs: Vec<Db> = map
        .entries
        .iter()
        .map(|e| {
            let dev = registry
                .get(&e.shard_id)
                .unwrap_or_else(|| panic!("{context}: map names unknown shard {}", e.shard_id));
            Db::open(Arc::clone(dev), node_cfg())
                .unwrap_or_else(|err| panic!("{context}: shard {} reopen failed: {err}", e.shard_id))
        })
        .collect();
    let set = ShardSet::with_map(dbs, map);

    let mut expected_scan: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for key in shadow.keys() {
        let got = set.get(&key).unwrap_or_else(|e| {
            panic!("{context}: get {:?} failed: {e}", String::from_utf8_lossy(&key))
        });
        let allowed = shadow.allowed(&key);
        assert!(
            allowed.contains(&got),
            "{context}: key {:?} read {:?}, but only {} states are legal \
             (acked write lost, or a moved range is half-visible)",
            String::from_utf8_lossy(&key),
            got.as_ref().map(Vec::len),
            allowed.len(),
        );
        if let Some(v) = got {
            expected_scan.push((key, v));
        }
    }
    // scan == gets: the range router must stitch the recovered shards
    // into one view, hiding any stale donor copy of a moved range
    let scanned = set
        .scan(b"key", b"kez", usize::MAX)
        .unwrap_or_else(|e| panic!("{context}: recovered scan failed: {e}"));
    assert_eq!(
        scanned, expected_scan,
        "{context}: recovered scan disagrees with point gets"
    );

    // recovered shards accept writes (liveness after migration + crash)
    let owner = set.shard_index(b"key-sentinel");
    set.db(owner)
        .put(b"key-sentinel".to_vec(), b"recovered".to_vec())
        .unwrap_or_else(|e| panic!("{context}: recovered shard refused a write: {e}"));
    assert_eq!(
        set.get(b"key-sentinel").unwrap(),
        Some(b"recovered".to_vec())
    );
}

/// Fault-free run: everything acks, the split lands, and the per-device
/// I/O totals bound the three sweeps.
fn clean_run(seed: u64) -> (u64, u64, u64) {
    let fx = Fixture::new(seed, CrashSite::None);
    let mut shadow = Shadow::default();
    let db = Db::open(erased(&fx.donor), node_cfg()).expect("clean donor open");
    let server = Server::start_elastic(
        vec![db],
        ShardMap::uniform(1),
        ElasticOptions {
            meta_dev: erased(&fx.meta),
            factory: fx.factory(seed, CrashSite::None),
            policy: None,
        },
        ServerConfig::default(),
    )
    .expect("clean elastic start");
    let mut c = Client::connect(server.addr()).expect("connect");
    scripted_ops(&mut c, &mut shadow, seed, 0..SCRIPT_OPS / 2);
    let new_id = server
        .split_shard(0, Some(SPLIT_BOUNDARY.to_vec()))
        .expect("clean split");
    assert_eq!(new_id, 1);
    scripted_ops(&mut c, &mut shadow, seed, SCRIPT_OPS / 2..SCRIPT_OPS);
    assert!(
        shadow.maybe.is_empty(),
        "fault-free run left {} unacked ops",
        shadow.maybe.len()
    );
    let map = server.shard_map().expect("elastic server has a map");
    assert_eq!(map.len(), 2, "clean split must be serving two shards");
    drop(c);
    drop(server.abort());
    let recipient_ops = fx
        .recipient
        .lock()
        .unwrap()
        .as_ref()
        .expect("clean split minted a recipient")
        .ops_performed();
    verify_recovery(&fx, &shadow, "fault-free split");
    (fx.donor.ops_performed(), recipient_ops, fx.meta.ops_performed())
}

/// The migration crash sweep: every I/O ordinal of all three devices.
#[test]
fn live_split_survives_a_crash_at_every_io_ordinal() {
    let seed = sweep_seed();
    let (donor_total, recipient_total, meta_total) = clean_run(seed);
    eprintln!(
        "migration crash sweep: seed={seed:#x} background={:?} \
         ordinals: donor={donor_total} recipient={recipient_total} meta={meta_total}",
        node_cfg().background
    );
    assert!(
        donor_total > 40 && recipient_total > 10 && meta_total >= 2,
        "workload too small to exercise the migration \
         ({donor_total}/{recipient_total}/{meta_total} I/Os)"
    );
    let mut fired = 0u64;
    let mut total = 0u64;
    for at in 0..donor_total {
        total += 1;
        if crash_case(seed, CrashSite::Donor(at)) {
            fired += 1;
        }
    }
    for at in 0..recipient_total {
        total += 1;
        if crash_case(seed, CrashSite::Recipient(at)) {
            fired += 1;
        }
    }
    for at in 0..meta_total {
        total += 1;
        if crash_case(seed, CrashSite::Meta(at)) {
            fired += 1;
        }
    }
    eprintln!("migration crash sweep: {fired}/{total} crash points fired");
    // threaded-mode timing can shift ordinals past the end of a run so a
    // scheduled fault never fires; those cases degrade to clean-split
    // recoveries (still verified), but a mostly-missing sweep proves
    // nothing
    assert!(
        fired * 2 >= total,
        "only {fired}/{total} crash points fired; sweep is mostly vacuous"
    );
}
