//! Transaction-commit crash sweep: kill the engine at every I/O ordinal
//! of a run that commits a sequence of multi-key optimistic
//! transactions, then recover and prove commit atomicity.
//!
//! Each scripted transaction writes a **disjoint key-set** (its own
//! `t<NN>-k<M>` keys) plus one **shared cursor key** it reads and
//! overwrites with its own ordinal. Transactions run sequentially and
//! each acked commit is followed by an acked `sync`, so the committed
//! history is a strict prefix of the script. After the crash and reopen
//! the sweep asserts:
//!
//! * **prefix**: the recovered state is exactly the replay of the first
//!   `j` transactions for some `j` — the cursor key names `j`, every
//!   transaction `≤ j` is **fully** visible and every transaction `> j`
//!   left **zero trace** (the atomic WAL group is all-or-nothing; a torn
//!   tail group must vanish wholesale, never a partial write-set);
//! * **durability**: `j` covers at least every acked commit (commit `Ok`
//!   **and** the following `sync` `Ok`);
//! * **consistency**: a full scan agrees with point gets.
//!
//! The maintenance mode follows `LSM_BACKGROUND` (the sweep runs in both
//! modes under `scripts/verify.sh`), and `LSM_SEED` reseeds the fault
//! device; both are printed so failures reproduce.

use std::sync::Arc;

use lsm_core::{Db, LsmConfig, TxnError};
use lsm_storage::{DeviceProfile, FaultDevice, FaultKind, MemDevice, StorageDevice};

/// Scripted transactions per run.
const TXNS: usize = 28;
/// Exclusive keys written by each transaction.
const KEYS_PER_TXN: usize = 4;
const CURSOR: &[u8] = b"txn-cursor";

fn sweep_seed() -> u64 {
    std::env::var("LSM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7C5B_0A11)
}

/// Engine config; the maintenance mode comes from `LSM_BACKGROUND` via
/// `small_for_tests`, so one binary sweeps both modes. The 1 KiB buffer
/// makes the scripted write volume cross memtable rotations, so crash
/// ordinals land inside flush and manifest I/O, not just the WAL.
fn node_cfg() -> LsmConfig {
    LsmConfig {
        wal: true,
        buffer_bytes: 1 << 10,
        ..LsmConfig::small_for_tests()
    }
}

fn fault_device(seed: u64) -> Arc<FaultDevice> {
    let mem: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
    Arc::new(FaultDevice::new(mem, seed))
}

fn erased(dev: &Arc<FaultDevice>) -> Arc<dyn StorageDevice> {
    Arc::clone(dev) as Arc<dyn StorageDevice>
}

fn txn_key(t: usize, m: usize) -> Vec<u8> {
    format!("t{t:02}-k{m}").into_bytes()
}

fn txn_value(t: usize, m: usize) -> Vec<u8> {
    // varying lengths so commits straddle block boundaries
    let len = 12 + (t * 7 + m * 13) % 70;
    let mut v = format!("v{t:02}-{m}-").into_bytes();
    v.resize(len, b'a' + ((t + m) % 26) as u8);
    v
}

/// Runs the scripted transactions until the device dies (or the script
/// ends). Returns the number of **acked** commits: commit `Ok` and the
/// following `sync` `Ok`.
fn scripted_txns(db: &Db) -> usize {
    let mut acked = 0;
    for t in 1..=TXNS {
        let mut txn = match db.begin_txn() {
            Ok(txn) => txn,
            Err(_) => break,
        };
        // read-modify-write of the shared cursor; single-threaded, so
        // validation always passes on a live device
        match txn.get(CURSOR) {
            Ok(cur) => {
                let prev: usize = cur
                    .and_then(|v| String::from_utf8(v).ok())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                assert_eq!(prev, t - 1, "cursor must walk the prefix in order");
            }
            Err(_) => break,
        }
        txn.put(CURSOR.to_vec(), t.to_string().into_bytes());
        for m in 0..KEYS_PER_TXN {
            txn.put(txn_key(t, m), txn_value(t, m));
        }
        match txn.commit() {
            Ok(stamp) => assert!(stamp > 0, "committed txn must draw a stamp"),
            Err(TxnError::Conflict(c)) => {
                panic!("sequential txns cannot conflict: {c:?}")
            }
            Err(TxnError::Storage(_)) => break,
        }
        if db.sync().is_ok() {
            acked = t;
        } else {
            break;
        }
    }
    acked
}

/// Post-recovery check: state == replay of the first `j` txns, `j ≥
/// acked`, all-or-nothing per transaction, scan agrees with gets.
fn verify(db: &Db, acked: usize, context: &str) {
    let cursor = db.get(CURSOR).unwrap_or_else(|e| panic!("{context}: cursor get failed: {e}"));
    let j: usize = match cursor {
        Some(v) => String::from_utf8(v)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("{context}: cursor corrupt")),
        None => 0,
    };
    assert!(
        j >= acked,
        "{context}: acked commit lost — cursor names txn {j}, but {acked} commits were acked"
    );
    assert!(j <= TXNS, "{context}: cursor {j} past the script");
    let mut expected_scan: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    if j > 0 {
        expected_scan.push((CURSOR.to_vec(), j.to_string().into_bytes()));
    }
    for t in 1..=TXNS {
        for m in 0..KEYS_PER_TXN {
            let got = db
                .get(&txn_key(t, m))
                .unwrap_or_else(|e| panic!("{context}: get t{t}-k{m} failed: {e}"));
            if t <= j {
                assert_eq!(
                    got,
                    Some(txn_value(t, m)),
                    "{context}: txn {t} committed (cursor {j}) but key {m} is missing or \
                     wrong — partial write-set"
                );
                expected_scan.push((txn_key(t, m), txn_value(t, m)));
            } else {
                assert_eq!(
                    got,
                    None,
                    "{context}: txn {t} did not commit (cursor {j}) but key {m} survived — \
                     torn group leaked"
                );
            }
        }
    }
    expected_scan.sort();
    let scanned = db
        .scan(b"t".to_vec()..b"u".to_vec(), usize::MAX)
        .unwrap_or_else(|e| panic!("{context}: scan failed: {e}"));
    assert_eq!(scanned, expected_scan, "{context}: scan disagrees with point gets");
}

/// Fault-free run; its I/O count bounds the sweep range.
fn clean_run_total(seed: u64) -> u64 {
    let fault = fault_device(seed);
    let db = Db::open(erased(&fault), node_cfg()).expect("clean open");
    let acked = scripted_txns(&db);
    assert_eq!(acked, TXNS, "fault-free run must ack every commit");
    db.wait_background_idle();
    verify(&db, acked, "fault-free");
    drop(db);
    fault.ops_performed()
}

/// One case: crash at ordinal `at`, drop the handle while dead (process
/// death), heal, reopen, verify. Returns whether the fault fired.
fn crash_case(seed: u64, at: u64) -> bool {
    let fault = fault_device(seed ^ at);
    fault.schedule(at, FaultKind::Crash);
    let mut acked = 0;
    if let Ok(db) = Db::open(erased(&fault), node_cfg()) {
        acked = scripted_txns(&db);
        db.wait_background_idle();
        drop(db);
    }
    let fired = fault.pending_faults().is_empty();
    fault.heal();
    let db = Db::open(erased(&fault), node_cfg())
        .unwrap_or_else(|e| panic!("reopen after crash at ordinal {at} failed: {e}"));
    verify(&db, acked, &format!("crash at ordinal {at}"));
    // recovered engine keeps committing transactions
    let mut txn = db.begin_txn().expect("begin after recovery");
    txn.put(b"post-crash".to_vec(), b"alive".to_vec());
    txn.commit().expect("commit after recovery");
    assert_eq!(db.get(b"post-crash").unwrap(), Some(b"alive".to_vec()));
    fired
}

#[test]
fn crash_at_every_io_point_during_txn_commits() {
    let seed = sweep_seed();
    let mode = lsm_core::BackgroundMode::from_env();
    eprintln!("txn crash sweep: LSM_SEED={seed} mode={}", mode.label());
    let total = clean_run_total(seed);
    assert!(total > 100, "workload too small to exercise recovery ({total} I/Os)");
    let mut fired = 0u64;
    for at in 0..total {
        if crash_case(seed, at) {
            fired += 1;
        }
    }
    eprintln!("txn sweep: {fired}/{total} crash points fired (LSM_SEED={seed})");
    // threaded worker timing can shift ordinals so a scheduled fault
    // never fires; those cases degrade to clean roundtrips (still
    // verified), but a mostly-vacuous sweep proves nothing
    assert!(
        fired * 2 >= total,
        "only {fired}/{total} crash points fired; sweep is mostly vacuous (LSM_SEED={seed})"
    );
}
